//! Kill-the-primary failover rigs for the sharded, replicated server.
//!
//! The deployment under test is two sharded servers: a *primary* serving
//! client traffic and shipping every committed write batch to a *backup*
//! over `REPL_BATCH` frames, each applied behind the backup's own
//! durability boundary. The rigs prove the replication contract from the
//! only angle that matters — what a client was told:
//!
//! - **Primary killed, backup promoted** ([`run_failover`]): live PUT
//!   load runs against the primary while a durability-boundary tap on
//!   the primary's pools picks the kill moment mid-commit. The rig then
//!   severs the replication stream (the primary "dies"), promotes the
//!   backup with a `PROMOTE` frame, and replays the acked wire log
//!   through the oracle's reference model. In sync ack mode every
//!   acknowledged write must be served byte-exact by the promoted
//!   backup; in async mode the backup must hold a consistent subset
//!   (never a foreign key or a torn value).
//! - **Backup crashed at a boundary** ([`backup_crash_rig`]): same load,
//!   but the tap sits on the *backup's* pools and captures
//!   drop-unpersisted crash images of every backup shard. Each image is
//!   recovered through the full stack (pmdk reopen, lane-quiescence and
//!   heap-walk oracles, engine reopen rebuilding the generation index)
//!   and must still hold every write that was synchronously acked before
//!   the images were taken — routed to the right shard by an
//!   independently rebuilt consistent-hash ring.
//!
//! Recovery GETs double as a temporal-safety check: a rebuilt or
//! promoted shard whose generation index produced false positives would
//! turn them into `GET` errors, which every rig treats as failure.
//!
//! The sync rig returns `Result` rather than panicking so the suite can
//! also prove the rig's *power*: [`lost_replication_batch_is_caught`]
//! drops one shipped batch via the fault-injection hook and requires the
//! verification to fail. CI runs the same drop through the
//! `SPP_REPL_DROP_BATCH` environment hook as a must-stay-red step.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use spp::pm::{CrashImage, CrashSpec, PmPool, PoolConfig};
use spp::pmdk::ObjPool;
use spp::server::{
    fresh_server_pool, Client, ClientError, IoMode, KvEngine, PolicyKind, ReplAckMode, ReplConfig,
    Ring, Server, ServerConfig,
};

/// The failover contract must hold under both I/O front ends.
const IO_MODES: [IoMode; 2] = [IoMode::Threads, IoMode::Epoll];

/// Shards per server. Two is the smallest count where routing, per-shard
/// replication streams, and per-shard crash images can all diverge.
const SHARDS: u32 = 2;
const CLIENTS: u32 = 2;
const OPS_PER_CLIENT: u64 = 200;
const VALUE_PAD: usize = 48;

fn key_of(conn: u32, seq: u64) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..4].copy_from_slice(&conn.to_be_bytes());
    k[4..12].copy_from_slice(&seq.to_be_bytes());
    k
}

fn value_of(conn: u32, seq: u64) -> Vec<u8> {
    let mut v = format!("v-{conn}-{seq}-").into_bytes();
    v.resize(VALUE_PAD, b'.');
    v
}

/// A key outside every client's key space, written through the promoted
/// backup to prove it serves normal traffic after taking over.
fn probe_key() -> [u8; 16] {
    key_of(77, 77)
}

const PROBE_VALUE: &[u8] = b"post-promote-probe";

/// One pool + engine per shard, served behind a consistent-hash ring.
fn start_sharded(
    kind: PolicyKind,
    io: IoMode,
    tracked: bool,
    repl: Option<ReplConfig>,
) -> (Vec<Arc<ObjPool>>, Server) {
    let mut pools = Vec::new();
    let mut engines = Vec::new();
    for _ in 0..SHARDS {
        let pool = fresh_server_pool(24 << 20, 4, tracked).unwrap();
        engines.push(Arc::new(
            KvEngine::create(Arc::clone(&pool), kind, 512).unwrap(),
        ));
        pools.push(pool);
    }
    let server = Server::start_multi(
        engines,
        ("127.0.0.1", 0),
        ServerConfig {
            workers: 3,
            max_conns: 8,
            queue_depth: 32,
            io,
            repl,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (pools, server)
}

/// Drive PUT load from [`CLIENTS`] connections against `addr`, logging
/// each ack as `(conn, seq)` in wire order. Threads wind down when
/// `stop` flips (the rig's kill moment) or the ops budget runs out.
fn drive_load(
    addr: std::net::SocketAddr,
    acked: &Arc<Mutex<Vec<(u32, u64)>>>,
    stop: &Arc<AtomicBool>,
) {
    let threads: Vec<_> = (0..CLIENTS)
        .map(|cid| {
            let acked = Arc::clone(acked);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                for seq in 0..OPS_PER_CLIENT {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match c.put(&key_of(cid, seq), &value_of(cid, seq)) {
                        Ok(()) => acked.lock().unwrap().push((cid, seq)),
                        Err(ClientError::Busy) => continue,
                        // Acceptable only while the rig winds down.
                        Err(_) if stop.load(Ordering::SeqCst) => break,
                        Err(e) => panic!("client {cid}: PUT failed mid-load: {e}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

/// Replay an acked wire log into the oracle's reference model. PUT acks
/// arrive in per-connection order and every connection owns a disjoint
/// key range, so log order is a valid linearization per key.
fn model_of(acked: &[(u32, u64)]) -> spp::oracle::Model {
    let mut model = spp::oracle::Model::new();
    for &(cid, seq) in acked {
        model.kv_put(key_of(cid, seq), value_of(cid, seq));
    }
    model
}

/// The primary-kill rig. Returns `Err` when the promoted backup breaks
/// the replication contract — kept as a `Result` (not a panic) so the
/// dropped-batch test can assert the rig *catches* an injected hole.
///
/// `target` is the primary durability boundary (counted across shards)
/// at which the kill triggers; `u64::MAX` lets the workload complete so
/// every op is acked (the dropped-batch test wants maximal coverage).
fn run_failover(
    kind: PolicyKind,
    io: IoMode,
    ack_mode: ReplAckMode,
    target: u64,
    drop_batch: Option<u64>,
) -> Result<(), String> {
    let (_backup_pools, backup) = start_sharded(kind, io, false, None);
    let (primary_pools, primary) = start_sharded(
        kind,
        io,
        true,
        Some(ReplConfig {
            backup: backup.local_addr(),
            ack_mode,
            drop_batch,
        }),
    );

    let acked: Arc<Mutex<Vec<(u32, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));

    // The kill moment: one boundary counter shared by every primary
    // shard, so the trigger lands mid-commit on whichever shard crosses
    // the target — held until at least one PUT was acked on the wire.
    let boundaries = Arc::new(AtomicU64::new(0));
    for pool in &primary_pools {
        let acked = Arc::clone(&acked);
        let stop = Arc::clone(&stop);
        let boundaries = Arc::clone(&boundaries);
        pool.pm().set_boundary_tap(Box::new(move |_, _| {
            if boundaries.fetch_add(1, Ordering::Relaxed) + 1 < target
                || stop.load(Ordering::SeqCst)
                || acked.lock().unwrap().is_empty()
            {
                return;
            }
            stop.store(true, Ordering::SeqCst);
        }));
    }

    drive_load(primary.local_addr(), &acked, &stop);
    for pool in &primary_pools {
        pool.pm().clear_boundary_tap();
    }

    // Every entry was acked on the wire before the kill; in sync mode
    // each of them was REPL_ACKed (durable on the backup) strictly
    // before its client ack, so the full log is the proof obligation.
    let log = acked.lock().unwrap().clone();
    assert!(!log.is_empty(), "rig killed the primary before any ack");
    let stats = primary.repl_stats().expect("replication was configured");
    assert!(stats.shipped > 0, "no batch was ever replicated: {stats:?}");
    if drop_batch.is_some() {
        assert!(
            stats.dropped >= 1,
            "fault injection never fired: {stats:?} (log has {} acks)",
            log.len()
        );
    }

    // The primary dies: the replication stream is severed first so its
    // shutdown drain cannot ship anything more, exactly like a process
    // kill between a backup ack and the next batch.
    primary.debug_cut_replication();
    primary.shutdown();

    // Promote the backup over the wire and prove it serves new traffic.
    let mut c = Client::connect_retry(backup.local_addr(), Duration::from_secs(5)).unwrap();
    c.promote().expect("PROMOTE frame failed");
    assert!(backup.is_promoted(), "PROMOTE did not flip the server");
    c.put(&probe_key(), PROBE_VALUE)
        .expect("promoted backup refused a write");

    let verdict = verify_promoted(kind, ack_mode, &backup, &mut c, &log);
    if verdict.is_ok() {
        eprintln!(
            "failover {} {io} {ack_mode}: {} acked writes verified on promoted backup \
             ({} batches shipped)",
            kind.label(),
            log.len(),
            stats.shipped
        );
    }
    drop(c);
    backup.shutdown();
    verdict
}

/// The post-promotion proof obligations, over real sockets plus an
/// engine-level sweep. Any GET error — including a temporal-safety
/// false positive from the backup's generation index — fails the rig.
fn verify_promoted(
    kind: PolicyKind,
    ack_mode: ReplAckMode,
    backup: &Server,
    c: &mut Client,
    log: &[(u32, u64)],
) -> Result<(), String> {
    let model = model_of(log);
    let mut out = Vec::new();

    if ack_mode == ReplAckMode::Sync {
        // Positive predictions: every synchronously-acked write must be
        // served byte-exact by the promoted backup.
        for (k, want) in &model.kv {
            out.clear();
            let hit = c
                .get(k, &mut out)
                .map_err(|e| format!("{}: GET on promoted backup errored: {e}", kind.label()))?;
            if !hit {
                return Err(format!(
                    "{}: synchronously-acked PUT {k:?} missing after failover",
                    kind.label()
                ));
            }
            if &out != want {
                return Err(format!(
                    "{}: promoted backup serves divergent bytes for {k:?}",
                    kind.label()
                ));
            }
        }
    }

    // Negative predictions: keys outside the trace's key space miss on
    // the promoted backup (and must not error).
    for miss in [key_of(CLIENTS + 7, 0), key_of(0, OPS_PER_CLIENT + 3)] {
        out.clear();
        let hit = c
            .get(&miss, &mut out)
            .map_err(|e| format!("{}: negative GET errored: {e}", kind.label()))?;
        if hit {
            return Err(format!(
                "{}: promoted backup hit a key the model never saw",
                kind.label()
            ));
        }
    }

    // Completeness sweep, shard by shard: everything the backup holds is
    // either the probe, a modelled write with its exact bytes, or an
    // in-flight write from the run that was replicated but whose client
    // ack the kill outran — never a foreign key, a torn value, or a key
    // parked on a shard the ring does not route it to.
    let ring = backup.ring();
    let mut problems: Vec<String> = Vec::new();
    for (shard, engine) in backup.engines().into_iter().enumerate() {
        engine
            .for_each(|k, v| {
                if *k == probe_key() {
                    if v != PROBE_VALUE {
                        problems.push("probe key holds divergent bytes".into());
                    }
                    return Ok(());
                }
                if ring.shard_of(k) != shard as u32 {
                    problems.push(format!(
                        "key {k:?} found on shard {shard}, ring routes it to {}",
                        ring.shard_of(k)
                    ));
                    return Ok(());
                }
                let cid = u32::from_be_bytes(k[..4].try_into().unwrap());
                let seq = u64::from_be_bytes(k[4..12].try_into().unwrap());
                if cid >= CLIENTS || seq >= OPS_PER_CLIENT {
                    problems.push(format!("foreign key ({cid},{seq}) on the backup"));
                } else if v != value_of(cid, seq) {
                    problems.push(format!("torn value for ({cid},{seq}) on the backup"));
                }
                Ok(())
            })
            .map_err(|e| format!("{}: backup shard {shard} sweep: {e}", kind.label()))?;
    }
    if let Some(p) = problems.into_iter().next() {
        return Err(format!("{}: {p}", kind.label()));
    }
    Ok(())
}

/// The backup-side crash rig: sync replication, durability-boundary tap
/// on the *backup's* pools; at the target boundary it snapshots the
/// acked log and captures a drop-unpersisted crash image of every
/// backup shard. Recovery of those images must serve every write from
/// the snapshot — each REPL_ACK (and hence each client ack) happened
/// only after the backup's own commit fence, so the snapshot is durable
/// in the images by construction.
fn backup_crash_rig(kind: PolicyKind, io: IoMode, target: u64) {
    let (backup_pools, backup) = start_sharded(kind, io, true, None);
    let (_primary_pools, primary) = start_sharded(
        kind,
        io,
        false,
        Some(ReplConfig {
            backup: backup.local_addr(),
            ack_mode: ReplAckMode::Sync,
            drop_batch: None,
        }),
    );

    let acked: Arc<Mutex<Vec<(u32, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    type Capture = (Vec<(u32, u64)>, Vec<CrashImage>);
    let captured: Arc<Mutex<Option<Capture>>> = Arc::new(Mutex::new(None));

    let boundaries = Arc::new(AtomicU64::new(0));
    // Exactly one tap performs the capture: the winner images every
    // backup shard, so a concurrent boundary on the other shard must not
    // start a second capture (or deadlock waiting on the first).
    let capturing = Arc::new(AtomicBool::new(false));
    for pool in &backup_pools {
        let acked = Arc::clone(&acked);
        let stop = Arc::clone(&stop);
        let boundaries = Arc::clone(&boundaries);
        let capturing = Arc::clone(&capturing);
        let captured = Arc::clone(&captured);
        let pools = backup_pools.clone();
        pool.pm().set_boundary_tap(Box::new(move |_, _| {
            if boundaries.fetch_add(1, Ordering::Relaxed) + 1 < target
                || stop.load(Ordering::SeqCst)
                || capturing.swap(true, Ordering::SeqCst)
            {
                return;
            }
            // Order matters: snapshot the acked log FIRST. Everything in
            // it was backup-fenced before its REPL_ACK, which preceded
            // its client ack, so it is durable in the images taken next.
            let snapshot = acked.lock().unwrap().clone();
            if snapshot.is_empty() {
                // Hold the crash until the contract is exercised.
                capturing.store(false, Ordering::SeqCst);
                return;
            }
            let images = pools
                .iter()
                .map(|p| p.pm().crash_image(CrashSpec::DropUnpersisted))
                .collect();
            *captured.lock().unwrap() = Some((snapshot, images));
            stop.store(true, Ordering::SeqCst);
        }));
    }

    drive_load(primary.local_addr(), &acked, &stop);
    for pool in &backup_pools {
        pool.pm().clear_boundary_tap();
    }
    primary.shutdown();
    backup.shutdown();

    let (snapshot, images) = captured.lock().unwrap().take().unwrap_or_else(|| {
        // The workload outran the target boundary; fall back to clean
        // post-shutdown images so the test still proves recovery.
        let snapshot = acked.lock().unwrap().clone();
        let images = backup_pools
            .iter()
            .map(|p| p.pm().crash_image(CrashSpec::KeepAll))
            .collect();
        (snapshot, images)
    });
    assert!(!snapshot.is_empty(), "rig crashed before any ack ({io})");

    // Recover every backup shard through the full stack.
    let mut engines = Vec::new();
    for (shard, image) in images.into_iter().enumerate() {
        let pm = Arc::new(PmPool::from_image(image, PoolConfig::new(0)));
        let pool = Arc::new(ObjPool::open(pm).expect("pmdk recovery failed on crash image"));
        for (i, s) in pool.lane_statuses().unwrap().into_iter().enumerate() {
            assert!(
                s.is_quiescent(),
                "shard {shard} lane {i} not quiescent after recovery: {s:?}"
            );
        }
        pool.walk_heap().expect("heap not walkable after recovery");
        engines.push(KvEngine::open(pool, kind).expect("engine reopen failed"));
    }

    // An independently rebuilt ring must route every modelled key to a
    // shard image that serves it byte-exact. Each GET also exercises the
    // freshly rebuilt generation index: a temporal-safety false positive
    // would surface as an error here.
    let model = model_of(&snapshot);
    let ring = Ring::new(SHARDS);
    let mut out = Vec::new();
    for (k, want) in &model.kv {
        out.clear();
        let hit = engines[ring.shard_of(k) as usize]
            .get(k, &mut out)
            .expect("GET after backup recovery errored (temporal false positive?)");
        assert!(
            hit,
            "{}: synchronously-acked PUT {k:?} missing from the recovered backup ({io})",
            kind.label()
        );
        assert_eq!(&out, want, "recovered backup diverges from the model");
    }

    // Misses stay misses on every recovered shard — the rebuilt index
    // must not invent hits or trip temporal violations on absent keys.
    for miss in [key_of(CLIENTS + 7, 0), key_of(0, OPS_PER_CLIENT + 3)] {
        for engine in &engines {
            out.clear();
            assert!(
                !engine.get(&miss, &mut out).expect("negative GET errored"),
                "recovered backup hit a key the model never saw"
            );
        }
    }

    // Whatever else the images hold is an in-flight replicated write
    // from the run on its ring-owned shard, with its exact bytes.
    for (shard, engine) in engines.iter().enumerate() {
        engine
            .for_each(|k, v| {
                assert_eq!(
                    ring.shard_of(k),
                    shard as u32,
                    "recovered key {k:?} sits on the wrong shard"
                );
                let cid = u32::from_be_bytes(k[..4].try_into().unwrap());
                let seq = u64::from_be_bytes(k[4..12].try_into().unwrap());
                assert!(
                    cid < CLIENTS && seq < OPS_PER_CLIENT,
                    "recovered foreign key ({cid},{seq})"
                );
                assert_eq!(v, value_of(cid, seq), "recovered torn value");
                Ok(())
            })
            .unwrap();
    }
    eprintln!(
        "backup-crash {} {io}: {} acked writes verified across {} recovered shard images",
        kind.label(),
        snapshot.len(),
        engines.len()
    );
}

/// CI's must-stay-red hook: when `SPP_REPL_DROP_BATCH` is set, the sync
/// rigs run with that batch dropped and are *expected to fail*.
fn env_drop() -> Option<u64> {
    std::env::var("SPP_REPL_DROP_BATCH").ok()?.parse().ok()
}

/// Nightly's sweep hook: `SPP_FAILOVER_TARGET` moves the kill boundary
/// so repeated runs crash at different points of the commit stream.
fn kill_target(default: u64) -> u64 {
    std::env::var("SPP_FAILOVER_TARGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[test]
fn sync_failover_preserves_acked_writes_pmdk() {
    for io in IO_MODES {
        run_failover(
            PolicyKind::Pmdk,
            io,
            ReplAckMode::Sync,
            kill_target(2501),
            env_drop(),
        )
        .unwrap_or_else(|e| panic!("({io}) {e}"));
    }
}

#[test]
fn sync_failover_preserves_acked_writes_spp() {
    for io in IO_MODES {
        run_failover(
            PolicyKind::Spp,
            io,
            ReplAckMode::Sync,
            kill_target(2501),
            env_drop(),
        )
        .unwrap_or_else(|e| panic!("({io}) {e}"));
    }
}

#[test]
fn sync_failover_preserves_acked_writes_safepm() {
    for io in IO_MODES {
        run_failover(
            PolicyKind::SafePm,
            io,
            ReplAckMode::Sync,
            kill_target(2501),
            env_drop(),
        )
        .unwrap_or_else(|e| panic!("({io}) {e}"));
    }
}

/// Async acks trade the inclusion guarantee for latency; what survives
/// promotion must still be *consistent* — a subset of the run's writes
/// with exact bytes, on ring-owned shards, never a foreign record.
#[test]
fn async_failover_promotes_a_consistent_prefix() {
    for io in IO_MODES {
        run_failover(
            PolicyKind::Spp,
            io,
            ReplAckMode::Async,
            kill_target(2501),
            None,
        )
        .unwrap_or_else(|e| panic!("({io}) {e}"));
    }
}

#[test]
fn backup_crash_at_boundary_preserves_synced_acks_pmdk() {
    for io in IO_MODES {
        backup_crash_rig(PolicyKind::Pmdk, io, kill_target(2501));
    }
}

#[test]
fn backup_crash_at_boundary_preserves_synced_acks_spp() {
    for io in IO_MODES {
        backup_crash_rig(PolicyKind::Spp, io, kill_target(2501));
    }
}

#[test]
fn backup_crash_at_boundary_preserves_synced_acks_safepm() {
    for io in IO_MODES {
        backup_crash_rig(PolicyKind::SafePm, io, kill_target(2501));
    }
}

/// The rig must have teeth: silently dropping one replicated batch (the
/// fault-injection hook pretends it was acked) has to make the sync
/// verification fail. `u64::MAX` keeps the primary alive to the end so
/// every op is acked and the hole cannot hide among un-acked writes.
#[test]
fn lost_replication_batch_is_caught() {
    let res = run_failover(
        PolicyKind::Spp,
        IoMode::Threads,
        ReplAckMode::Sync,
        u64::MAX,
        Some(2),
    );
    let err = res.expect_err("rig failed to catch a dropped replication batch");
    assert!(
        err.contains("missing after failover"),
        "unexpected rig verdict: {err}"
    );
}
