//! SPP+T temporal-safety probes at exact generation boundaries, under
//! all four policies: free → stale deref (use-after-free), double free,
//! free → same-class alloc → stale deref (ABA slot reuse), and
//! realloc-stale in both directions.
//!
//! The realloc probes grow 33 → 48 and shrink 48 → 33: both sizes round
//! to the same 64-byte class, so the pmdk allocator resizes *in place*
//! — the stale pointer still aims at live, correctly-sized payload, and
//! only the generation bump (SPP+T) or an always-move policy (SafePM)
//! can tell the two lifetimes apart. Each scenario checks the observed
//! reaction against the guarantee-matrix cell for its family, including
//! the mechanism string (`generation-tag` for every SPP temporal
//! catch).

use std::sync::Arc;

use spp::core::{MemoryPolicy, PmdkPolicy, SppError, SppPolicy, TagConfig};
use spp::pm::{PmPool, PoolConfig};
use spp::pmdk::{ObjPool, PoolOpts};
use spp::ripe::{expected_cell, Cell, Family, MemcheckPolicy, Protection};
use spp::safepm::SafePmPolicy;

/// Fill byte of the original (soon-stale) object.
const OLD_FILL: u8 = 0xA5;
/// Fill byte of the object that re-occupies the slot in the ABA probe.
const NEW_FILL: u8 = 0x5A;

fn fresh_pool() -> Arc<ObjPool> {
    let pm = Arc::new(PmPool::new(PoolConfig::new(1 << 20)));
    Arc::new(ObjPool::create(pm, PoolOpts::small()).unwrap())
}

/// What a one-byte stale load (or illegal free) actually did.
#[derive(Debug)]
enum Observed {
    Hit(u8),
    Caught(&'static str),
    Fault,
    Rejected,
}

fn probe<P: MemoryPolicy>(policy: &P, ptr: u64) -> Observed {
    let mut b = [0u8; 1];
    match policy.load(ptr, &mut b) {
        Ok(()) => Observed::Hit(b[0]),
        Err(
            SppError::OverflowDetected { mechanism, .. }
            | SppError::TemporalViolation { mechanism, .. },
        ) => Observed::Caught(mechanism),
        Err(SppError::Fault { .. }) => Observed::Fault,
        Err(e) => panic!("stale probe raised unexpected error: {e}"),
    }
}

/// Check an observation against the matrix cell for `family`; a silent
/// hit must additionally read `hit_byte`.
fn conform(obs: &Observed, family: Family, protection: Protection, hit_byte: u8) {
    let want = expected_cell(family, protection);
    match (obs, want) {
        (Observed::Hit(b), Cell::Hit) => {
            assert_eq!(*b, hit_byte, "{protection:?}/{family:?}: wrong hit byte");
        }
        (Observed::Fault, Cell::Fault) | (Observed::Rejected, Cell::Rejected) => {}
        (Observed::Caught(m), Cell::Caught) => {
            assert_eq!(
                Some(*m),
                protection.mechanism_for(family),
                "{protection:?}/{family:?}: wrong mechanism"
            );
        }
        _ => panic!("{protection:?}/{family:?}: observed {obs:?}, matrix expects {want:?}"),
    }
}

/// Free, then load byte 0 through the dangling pointer.
fn uaf_stale_deref<P: MemoryPolicy>(policy: &P, protection: Protection) {
    let obj = policy.zalloc(64).unwrap();
    let ptr = policy.direct(obj);
    policy.store(ptr, &[OLD_FILL; 64]).unwrap();
    policy.free(obj).unwrap();
    // Frees are header-only (the free lists are volatile), so a silent
    // stale read still sees the dead object's fill.
    conform(&probe(policy, ptr), Family::UafRead, protection, OLD_FILL);
}

/// Free the same oid twice; the second free is the probe.
fn double_free<P: MemoryPolicy>(policy: &P, protection: Protection) {
    let obj = policy.zalloc(64).unwrap();
    policy.free(obj).unwrap();
    let obs = match policy.free(obj) {
        Ok(()) => Observed::Hit(0),
        Err(
            SppError::OverflowDetected { mechanism, .. }
            | SppError::TemporalViolation { mechanism, .. },
        ) => Observed::Caught(mechanism),
        Err(SppError::Fault { .. }) => Observed::Fault,
        Err(_) => Observed::Rejected,
    };
    conform(&obs, Family::DoubleFree, protection, 0);
}

/// Free, re-allocate the same size (LIFO reuse hands back the same
/// block), then load through the pre-free pointer.
fn aba_stale_deref<P: MemoryPolicy>(policy: &P, protection: Protection) {
    let first = policy.zalloc(96).unwrap();
    let stale = policy.direct(first);
    policy.free(first).unwrap();
    let victim = policy.zalloc(96).unwrap();
    assert_eq!(
        victim.off, first.off,
        "{protection:?}: LIFO reuse must hand back the freed block"
    );
    policy
        .store(policy.direct(victim), &[NEW_FILL; 96])
        .unwrap();
    // A silent hit lands in the *new* owner's bytes.
    conform(
        &probe(policy, stale),
        Family::AbaReuse,
        protection,
        NEW_FILL,
    );
}

/// Realloc within one size class (in place for every policy but SafePM,
/// which always moves), then load through the pre-realloc pointer.
fn realloc_stale_deref<P: MemoryPolicy>(policy: &P, protection: Protection, old: u64, new: u64) {
    // The oid must live in PM for realloc's atomic republish.
    let dir = policy.zalloc(policy.oid_kind().on_media_size()).unwrap();
    let dir_ptr = policy.direct(dir);
    let obj = policy.alloc_into_ptr(dir_ptr, old).unwrap();
    let stale = policy.direct(obj);
    policy.store(stale, &vec![OLD_FILL; old as usize]).unwrap();
    let noid = policy.realloc_from_ptr(dir_ptr, obj, new).unwrap();
    if !matches!(protection, Protection::SafePm) {
        assert_eq!(
            noid.off, obj.off,
            "{protection:?}: same-class realloc must stay in place"
        );
    }
    conform(
        &probe(policy, stale),
        Family::ReallocStale,
        protection,
        OLD_FILL,
    );
}

/// Every temporal boundary scenario under one policy, each on a fresh
/// pool so block offsets (and LIFO reuse) are deterministic.
fn check_policy<P: MemoryPolicy, F: Fn() -> P>(mk: F, protection: Protection) {
    uaf_stale_deref(&mk(), protection);
    double_free(&mk(), protection);
    aba_stale_deref(&mk(), protection);
    // Grow and shrink within the 64-byte class: 33 and 48 both round up
    // to 64, so neither direction moves the block.
    realloc_stale_deref(&mk(), protection, 33, 48);
    realloc_stale_deref(&mk(), protection, 48, 33);
}

#[test]
fn temporal_boundary_pmdk() {
    check_policy(|| PmdkPolicy::new(fresh_pool()), Protection::Pmdk);
}

#[test]
fn temporal_boundary_memcheck() {
    check_policy(|| MemcheckPolicy::new(fresh_pool()), Protection::Memcheck);
}

#[test]
fn temporal_boundary_safepm() {
    check_policy(
        || SafePmPolicy::create(fresh_pool()).unwrap(),
        Protection::SafePm,
    );
}

#[test]
fn temporal_boundary_spp() {
    check_policy(
        || SppPolicy::new(fresh_pool(), TagConfig::default()).unwrap(),
        Protection::Spp,
    );
}
