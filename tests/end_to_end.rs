//! Workspace-level integration tests: the full stack (device → pool →
//! policy → data structure / workload) exercised across crate boundaries.

use std::sync::Arc;

use spp::core::{MemoryPolicy, PmdkPolicy, SppError, SppPolicy, TagConfig};
use spp::indices::{CTree, HashMapTx, Index, RbTree};
use spp::kvstore::workload::make_key;
use spp::kvstore::KvStore;
use spp::phoenix::{run as run_phoenix, App, PhoenixConfig};
use spp::pm::{CrashSpec, Mode, PmPool, PoolConfig};
use spp::pmdk::{ObjPool, OidKind, PoolOpts};
use spp::safepm::SafePmPolicy;

fn pool(bytes: u64, mode: Mode) -> Arc<ObjPool> {
    let pm = Arc::new(PmPool::new(PoolConfig::new(bytes).mode(mode)));
    Arc::new(ObjPool::create(pm, PoolOpts::new().lanes(4)).unwrap())
}

#[test]
fn full_stack_index_restart_under_spp() {
    // Build an index, persist the meta oid in the root, crash, reopen,
    // verify contents and protection — all through public APIs.
    let pm = Arc::new(PmPool::new(PoolConfig::new(16 << 20).mode(Mode::Tracked)));
    let pool1 = Arc::new(ObjPool::create(Arc::clone(&pm), PoolOpts::small()).unwrap());
    let spp = Arc::new(SppPolicy::new(Arc::clone(&pool1), TagConfig::default()).unwrap());
    let tree = RbTree::create(Arc::clone(&spp)).unwrap();
    for k in 0..200u64 {
        tree.insert(k, k * 7).unwrap();
    }
    let root = pool1.root(64).unwrap();
    pool1
        .publish_oid(spp::pmdk::OidDest::spp(root.off), tree.meta())
        .unwrap();

    let img = pm.crash_image(CrashSpec::DropUnpersisted);
    let pm2 = Arc::new(PmPool::from_image(img, PoolConfig::new(0)));
    let pool2 = Arc::new(ObjPool::open(pm2).unwrap());
    let spp2 = Arc::new(SppPolicy::new(Arc::clone(&pool2), TagConfig::default()).unwrap());
    let root2 = pool2.root(64).unwrap();
    let meta = pool2.oid_read(root2.off, OidKind::Spp).unwrap();
    let tree2 = RbTree::open(Arc::clone(&spp2), meta).unwrap();
    tree2.check_invariants().unwrap();
    for k in 0..200u64 {
        assert_eq!(tree2.get(k).unwrap(), Some(k * 7));
    }
    assert_eq!(tree2.count().unwrap(), 200);
}

#[test]
fn three_policies_agree_on_index_contents() {
    let keys: Vec<u64> = (0..500).map(|i| i * 2654435761 % 100_000).collect();
    let run = |get: &dyn Fn(u64) -> Option<u64>| -> Vec<Option<u64>> {
        keys.iter().map(|&k| get(k)).collect()
    };
    let pmdk = Arc::new(PmdkPolicy::new(pool(64 << 20, Mode::Fast)));
    let spp = Arc::new(SppPolicy::new(pool(64 << 20, Mode::Fast), TagConfig::default()).unwrap());
    let safepm = Arc::new(SafePmPolicy::create(pool(64 << 20, Mode::Fast)).unwrap());
    let t1 = CTree::create(pmdk).unwrap();
    let t2 = CTree::create(spp).unwrap();
    let t3 = CTree::create(safepm).unwrap();
    for &k in &keys {
        t1.insert(k, k + 1).unwrap();
        t2.insert(k, k + 1).unwrap();
        t3.insert(k, k + 1).unwrap();
    }
    let a = run(&|k| t1.get(k).unwrap());
    let b = run(&|k| t2.get(k).unwrap());
    let c = run(&|k| t3.get(k).unwrap());
    assert_eq!(a, b);
    assert_eq!(a, c);
}

#[test]
fn kv_store_and_index_share_one_pool() {
    // Multiple data structures over one pool and one policy.
    let spp = Arc::new(SppPolicy::new(pool(64 << 20, Mode::Fast), TagConfig::default()).unwrap());
    let kv = KvStore::create(Arc::clone(&spp), 1024).unwrap();
    let map = HashMapTx::create(Arc::clone(&spp)).unwrap();
    for i in 0..300u64 {
        kv.put(&make_key(i), &i.to_le_bytes()).unwrap();
        map.insert(i, i).unwrap();
    }
    let mut out = Vec::new();
    assert!(kv.get(&make_key(123), &mut out).unwrap());
    assert_eq!(out, 123u64.to_le_bytes());
    assert_eq!(map.get(123).unwrap(), Some(123));
    assert_eq!(kv.count().unwrap(), 300);
    assert_eq!(map.count().unwrap(), 300);
}

#[test]
fn phoenix_checksums_identical_across_variants() {
    let cfg = PhoenixConfig {
        threads: 2,
        scale: 1,
        seed: 99,
    };
    for app in [App::Histogram, App::LinearRegression, App::WordCount] {
        let low = |_| {
            let pm = Arc::new(PmPool::new(PoolConfig::new(32 << 20).base(0x10000)));
            Arc::new(ObjPool::create(pm, PoolOpts::small()).unwrap())
        };
        let a = run_phoenix(app, &Arc::new(PmdkPolicy::new(low(()))), &cfg).unwrap();
        let b = run_phoenix(
            app,
            &Arc::new(SppPolicy::new(low(()), TagConfig::phoenix()).unwrap()),
            &cfg,
        )
        .unwrap();
        assert_eq!(a, b, "{}", app.label());
    }
}

#[test]
fn protection_is_end_to_end() {
    // An overflow created through one crate (kvstore node internals is
    // opaque; use the policy surface) is caught regardless of which crate
    // triggered it.
    let spp = Arc::new(SppPolicy::new(pool(16 << 20, Mode::Fast), TagConfig::default()).unwrap());
    let a = spp.zalloc(100).unwrap();
    let b = spp.zalloc(100).unwrap();
    // Simulated "index bug": walks off object a onto object b.
    let pa = spp.direct(a);
    let delta = (b.off - a.off) as i64;
    let err = spp.store_u64(spp.gep(pa, delta), 0xEE_u64).unwrap_err();
    assert!(matches!(err, SppError::OverflowDetected { .. }));
}
