//! The acked-write durability contract, proven end-to-end: a TCP server
//! under live multi-connection load is "killed" by pm crash-injection at a
//! flush/fence boundary, the surviving device image is reopened through
//! full pmdk recovery, and **every PUT that was acked on the wire before
//! the crash must be readable with its exact value**.
//!
//! Soundness of the check: the acked-writes log is snapshotted *before*
//! the crash image is captured. A PUT is acked only after its transaction
//! commit flushed and fenced, and durability is monotonic, so every entry
//! in the snapshot was durable when the image was taken — the snapshot is
//! a conservative subset of what must survive. Un-acked writes may or may
//! not appear (a concurrent transaction may be mid-flight); recovery must
//! still leave the heap structurally sound either way, which the inline
//! lane-quiescence and heap-walk oracles enforce.
//!
//! Every rig runs under **both** I/O front ends: the blocking
//! thread-per-connection mode and the sharded epoll reactors. Which
//! threads read the sockets must not change what survives a crash.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use spp::pm::{CrashImage, CrashSpec, PmPool, PoolConfig};
use spp::pmdk::ObjPool;
use spp::server::{
    fresh_server_pool, Client, ClientError, IoMode, KvEngine, PolicyKind, Reply, Request, Server,
    ServerConfig, WriteOp, WriteReply,
};

/// The durability contract must hold under both I/O front ends.
const IO_MODES: [IoMode; 2] = [IoMode::Threads, IoMode::Epoll];

const CLIENTS: u32 = 2;
const OPS_PER_CLIENT: u64 = 250;
const VALUE_PAD: usize = 48;
/// Ops per `MULTI` batch in the group-commit rig.
const BATCH: u64 = 4;

fn key_of(conn: u32, seq: u64) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..4].copy_from_slice(&conn.to_be_bytes());
    k[4..12].copy_from_slice(&seq.to_be_bytes());
    k
}

fn value_of(conn: u32, seq: u64) -> Vec<u8> {
    let mut v = format!("v-{conn}-{seq}-").into_bytes();
    v.resize(v.len() + VALUE_PAD, b'.');
    v
}

/// What the boundary tap captures at the injected crash: the acked log as
/// of *before* the image, then the durable image itself.
struct Captured {
    acked: Vec<(u32, u64)>,
    image: CrashImage,
}

/// Drive live load over TCP, capture a crash image at the `target`-th
/// durability boundary after load start, and return it with the
/// acked-before-capture log. Falls back to a quiescent `KeepAll` image if
/// the workload finishes before the boundary is reached.
fn crash_under_load(kind: PolicyKind, io: IoMode, target: u64) -> Captured {
    let pool = fresh_server_pool(32 << 20, 8, true).unwrap();
    let engine = Arc::new(KvEngine::create(Arc::clone(&pool), kind, 512).unwrap());
    let server = Server::start(
        Arc::clone(&engine),
        ("127.0.0.1", 0),
        ServerConfig {
            workers: 3,
            max_conns: 8,
            queue_depth: 32,
            io,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let acked: Arc<Mutex<Vec<(u32, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let captured: Arc<Mutex<Option<Captured>>> = Arc::new(Mutex::new(None));
    let stop = Arc::new(AtomicBool::new(false));

    // Install the tap only now, so boundary counts refer to client-driven
    // activity, not pool/engine setup.
    {
        let acked = Arc::clone(&acked);
        let captured = Arc::clone(&captured);
        let stop = Arc::clone(&stop);
        let boundaries = AtomicU64::new(0);
        pool.pm().set_boundary_tap(Box::new(move |pm, _| {
            if boundaries.fetch_add(1, Ordering::Relaxed) + 1 < target
                || stop.load(Ordering::SeqCst)
            {
                return;
            }
            // Order matters: snapshot the acked log FIRST. Everything in
            // the snapshot was flushed+fenced before its ack, so it is
            // durable in the image captured next.
            let snapshot = acked.lock().unwrap().clone();
            if snapshot.is_empty() {
                // A single transaction can span many boundaries; hold the
                // crash until at least one PUT has been acked on the wire
                // so the contract is actually exercised.
                return;
            }
            let image = pm.crash_image(CrashSpec::DropUnpersisted);
            *captured.lock().unwrap() = Some(Captured {
                acked: snapshot,
                image,
            });
            stop.store(true, Ordering::SeqCst);
        }));
    }

    let client_threads: Vec<_> = (0..CLIENTS)
        .map(|cid| {
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                for seq in 0..OPS_PER_CLIENT {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match c.put(&key_of(cid, seq), &value_of(cid, seq)) {
                        Ok(()) => acked.lock().unwrap().push((cid, seq)),
                        Err(ClientError::Busy) => continue,
                        // Acceptable only while the rig winds down.
                        Err(_) if stop.load(Ordering::SeqCst) => break,
                        Err(e) => panic!("client {cid}: PUT failed mid-load: {e}"),
                    }
                }
            })
        })
        .collect();
    for t in client_threads {
        t.join().unwrap();
    }
    pool.pm().clear_boundary_tap();
    server.shutdown();

    let taken = captured.lock().unwrap().take();
    match taken {
        Some(c) => c,
        None => {
            // The workload outran the target boundary; fall back to a
            // clean post-shutdown image so the test still proves the
            // recovery path.
            let snapshot = acked.lock().unwrap().clone();
            Captured {
                acked: snapshot,
                image: pool.pm().crash_image(CrashSpec::KeepAll),
            }
        }
    }
}

/// Group-commit variant of the rig: clients ship `MULTI` batches of
/// [`BATCH`] PUTs, which the server commits under one shared durability
/// boundary; a batch's members are logged as acked only when the whole
/// batch acked. The crash lands at a live boundary exactly as in
/// [`crash_under_load`].
fn crash_under_batched_load(kind: PolicyKind, io: IoMode, target: u64) -> Captured {
    let pool = fresh_server_pool(32 << 20, 8, true).unwrap();
    let engine = Arc::new(KvEngine::create(Arc::clone(&pool), kind, 512).unwrap());
    let server = Server::start(
        Arc::clone(&engine),
        ("127.0.0.1", 0),
        ServerConfig {
            workers: 3,
            max_conns: 8,
            queue_depth: 32,
            io,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let acked: Arc<Mutex<Vec<(u32, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let captured: Arc<Mutex<Option<Captured>>> = Arc::new(Mutex::new(None));
    let stop = Arc::new(AtomicBool::new(false));

    {
        let acked = Arc::clone(&acked);
        let captured = Arc::clone(&captured);
        let stop = Arc::clone(&stop);
        let boundaries = AtomicU64::new(0);
        pool.pm().set_boundary_tap(Box::new(move |pm, _| {
            if boundaries.fetch_add(1, Ordering::Relaxed) + 1 < target
                || stop.load(Ordering::SeqCst)
            {
                return;
            }
            let snapshot = acked.lock().unwrap().clone();
            if snapshot.is_empty() {
                return;
            }
            let image = pm.crash_image(CrashSpec::DropUnpersisted);
            *captured.lock().unwrap() = Some(Captured {
                acked: snapshot,
                image,
            });
            stop.store(true, Ordering::SeqCst);
        }));
    }

    let client_threads: Vec<_> = (0..CLIENTS)
        .map(|cid| {
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                for b in 0..OPS_PER_CLIENT / BATCH {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let keys: Vec<[u8; 16]> =
                        (0..BATCH).map(|i| key_of(cid, b * BATCH + i)).collect();
                    let values: Vec<Vec<u8>> =
                        (0..BATCH).map(|i| value_of(cid, b * BATCH + i)).collect();
                    let reqs: Vec<Request<'_>> = keys
                        .iter()
                        .zip(&values)
                        .map(|(key, value)| Request::Put { key, value })
                        .collect();
                    match c.multi(&reqs) {
                        Ok(replies) => {
                            assert!(
                                replies.iter().all(|r| *r == Reply::Ok),
                                "client {cid}: unexpected MULTI replies {replies:?}"
                            );
                            let mut g = acked.lock().unwrap();
                            for i in 0..BATCH {
                                g.push((cid, b * BATCH + i));
                            }
                        }
                        // The whole batch was rejected under backpressure;
                        // nothing of it was acked, skip it.
                        Err(ClientError::Busy) => continue,
                        Err(_) if stop.load(Ordering::SeqCst) => break,
                        Err(e) => panic!("client {cid}: MULTI failed mid-load: {e}"),
                    }
                }
            })
        })
        .collect();
    for t in client_threads {
        t.join().unwrap();
    }
    pool.pm().clear_boundary_tap();
    server.shutdown();

    let taken = captured.lock().unwrap().take();
    match taken {
        Some(c) => c,
        None => {
            let snapshot = acked.lock().unwrap().clone();
            Captured {
                acked: snapshot,
                image: pool.pm().crash_image(CrashSpec::KeepAll),
            }
        }
    }
}

/// The group-commit atomicity half of the contract: every batch in the
/// recovered store is whole. A batch commits as one transaction under one
/// shared boundary, so a crash must never split it — members recovered per
/// batch is exactly 0 (batch absent) or [`BATCH`].
fn verify_batch_atomicity(kind: PolicyKind, cap: &Captured) {
    let pm = Arc::new(PmPool::from_image(cap.image.clone(), PoolConfig::new(0)));
    let pool = Arc::new(ObjPool::open(pm).expect("pmdk recovery failed on crash image"));
    let engine = KvEngine::open(pool, kind).expect("engine reopen failed");
    let mut per_batch: std::collections::HashMap<(u32, u64), u64> =
        std::collections::HashMap::new();
    engine
        .for_each(|k, _| {
            let cid = u32::from_be_bytes(k[..4].try_into().unwrap());
            let seq = u64::from_be_bytes(k[4..12].try_into().unwrap());
            *per_batch.entry((cid, seq / BATCH)).or_insert(0) += 1;
            Ok(())
        })
        .unwrap();
    for ((cid, b), n) in per_batch {
        assert_eq!(
            n,
            BATCH,
            "{}: batch ({cid},{b}) recovered {n}/{BATCH} members — a crash split a group-committed batch",
            kind.label()
        );
    }
}

/// Reopen the image through full recovery and run the oracle stack: lane
/// quiescence, heap walk, then exact readback of every acked write.
fn recover_and_verify(kind: PolicyKind, cap: &Captured) {
    let pm = Arc::new(PmPool::from_image(cap.image.clone(), PoolConfig::new(0)));
    let pool = Arc::new(ObjPool::open(pm).expect("pmdk recovery failed on crash image"));

    // Structural oracles (the torture rig's invariants, inline): recovery
    // must leave every lane quiescent and the heap cleanly walkable.
    for (i, s) in pool.lane_statuses().unwrap().into_iter().enumerate() {
        assert!(
            s.is_quiescent(),
            "lane {i} not quiescent after recovery: {s:?}"
        );
    }
    pool.walk_heap().expect("heap not walkable after recovery");

    let engine = KvEngine::open(Arc::clone(&pool), kind).expect("engine reopen failed");

    // The contract: every acked PUT is present with its exact value.
    let mut out = Vec::new();
    for &(cid, seq) in &cap.acked {
        out.clear();
        let hit = engine
            .get(&key_of(cid, seq), &mut out)
            .expect("GET after recovery errored");
        assert!(
            hit,
            "{}: acked PUT ({cid},{seq}) missing after crash-restart",
            kind.label()
        );
        assert_eq!(
            out,
            value_of(cid, seq),
            "{}: acked PUT ({cid},{seq}) has wrong value after crash-restart",
            kind.label()
        );
    }

    // Completeness: whatever else survived must be a prefix write from the
    // run (an un-acked in-flight PUT), never a foreign or torn record.
    let acked_count = cap.acked.len() as u64;
    let mut seen = 0u64;
    engine
        .for_each(|k, v| {
            let cid = u32::from_be_bytes(k[..4].try_into().unwrap());
            let seq = u64::from_be_bytes(k[4..12].try_into().unwrap());
            assert!(
                cid < CLIENTS && seq < OPS_PER_CLIENT,
                "recovered foreign key ({cid},{seq})"
            );
            assert_eq!(
                v,
                value_of(cid, seq).as_slice(),
                "recovered torn value for ({cid},{seq})"
            );
            seen += 1;
            Ok(())
        })
        .unwrap();
    assert!(
        seen >= acked_count,
        "store holds {seen} entries but {acked_count} were acked"
    );
}

#[test]
fn acked_writes_survive_crash_restart_pmdk() {
    for io in IO_MODES {
        let cap = crash_under_load(PolicyKind::Pmdk, io, 60);
        assert!(!cap.acked.is_empty(), "rig crashed before any ack ({io})");
        recover_and_verify(PolicyKind::Pmdk, &cap);
    }
}

#[test]
fn acked_writes_survive_crash_restart_spp() {
    for io in IO_MODES {
        let cap = crash_under_load(PolicyKind::Spp, io, 137);
        assert!(!cap.acked.is_empty(), "rig crashed before any ack ({io})");
        recover_and_verify(PolicyKind::Spp, &cap);
    }
}

#[test]
fn acked_writes_survive_crash_restart_safepm() {
    for io in IO_MODES {
        let cap = crash_under_load(PolicyKind::SafePm, io, 401);
        assert!(!cap.acked.is_empty(), "rig crashed before any ack ({io})");
        recover_and_verify(PolicyKind::SafePm, &cap);
    }
}

/// Differential variant of the contract: the acked wire log is replayed
/// into the oracle harness's volatile reference model ([`spp::oracle`]),
/// and every post-recovery GET must match the model's prediction — both
/// positive (each modelled key hits with its exact bytes) and negative
/// (keys the model never saw must miss). Whatever else survived must be
/// an in-flight un-acked write from the run, never a foreign record.
#[test]
fn recovered_gets_match_reference_model_after_midload_crash() {
    let cap = crash_under_load(PolicyKind::Spp, IoMode::Epoll, 90);
    assert!(!cap.acked.is_empty(), "rig crashed before any ack");

    // Each ack is a committed KV put; acks are applied in wire order so
    // the model's last-write-wins semantics match the engine's.
    let mut model = spp::oracle::Model::new();
    for &(cid, seq) in &cap.acked {
        model.kv.insert(key_of(cid, seq), value_of(cid, seq));
    }

    let pm = Arc::new(PmPool::from_image(cap.image.clone(), PoolConfig::new(0)));
    let pool = Arc::new(ObjPool::open(pm).expect("pmdk recovery failed on crash image"));
    let engine = KvEngine::open(Arc::clone(&pool), PolicyKind::Spp).expect("engine reopen failed");

    // Positive predictions: every modelled entry hits, byte-exact.
    let mut out = Vec::new();
    for (k, want) in &model.kv {
        out.clear();
        let hit = engine.get(k, &mut out).expect("GET after recovery errored");
        assert!(hit, "model predicts a hit for key {k:?}, engine missed");
        assert_eq!(&out, want, "GET diverges from the reference model");
    }

    // Negative predictions: keys outside the trace's key space miss.
    for miss in [key_of(CLIENTS + 7, 0), key_of(0, OPS_PER_CLIENT + 3)] {
        out.clear();
        assert!(
            !engine.get(&miss, &mut out).expect("GET errored"),
            "engine hit a key the model never saw"
        );
    }

    // Everything else the engine holds must be an in-flight un-acked put
    // from the run, carrying its exact would-be value.
    engine
        .for_each(|k, v| {
            if let Some(want) = model.kv.get(k) {
                assert_eq!(v, want.as_slice(), "recovered value diverges from model");
            } else {
                let cid = u32::from_be_bytes(k[..4].try_into().unwrap());
                let seq = u64::from_be_bytes(k[4..12].try_into().unwrap());
                assert!(
                    cid < CLIENTS && seq < OPS_PER_CLIENT,
                    "recovered foreign key ({cid},{seq})"
                );
                assert_eq!(
                    v,
                    value_of(cid, seq).as_slice(),
                    "un-acked in-flight put recovered torn"
                );
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn group_commit_batches_survive_crash_whole_pmdk() {
    for io in IO_MODES {
        let cap = crash_under_batched_load(PolicyKind::Pmdk, io, 40);
        assert!(
            !cap.acked.is_empty(),
            "rig crashed before any batch ack ({io})"
        );
        recover_and_verify(PolicyKind::Pmdk, &cap);
        verify_batch_atomicity(PolicyKind::Pmdk, &cap);
    }
}

#[test]
fn group_commit_batches_survive_crash_whole_spp() {
    for io in IO_MODES {
        let cap = crash_under_batched_load(PolicyKind::Spp, io, 95);
        assert!(
            !cap.acked.is_empty(),
            "rig crashed before any batch ack ({io})"
        );
        recover_and_verify(PolicyKind::Spp, &cap);
        verify_batch_atomicity(PolicyKind::Spp, &cap);
    }
}

#[test]
fn group_commit_batches_survive_crash_whole_safepm() {
    for io in IO_MODES {
        let cap = crash_under_batched_load(PolicyKind::SafePm, io, 260);
        assert!(
            !cap.acked.is_empty(),
            "rig crashed before any batch ack ({io})"
        );
        recover_and_verify(PolicyKind::SafePm, &cap);
        verify_batch_atomicity(PolicyKind::SafePm, &cap);
    }
}

/// Deterministic all-or-nothing: capture a crash image at EVERY durability
/// boundary while one engine write batch commits, and reopen each image.
/// At every point the batch's fresh keys are all present or all absent,
/// the overwritten key holds exactly its old or new value (never torn),
/// and the overwrite flips together with the batch.
#[test]
fn batched_commit_all_or_nothing_at_every_boundary() {
    for kind in [PolicyKind::Pmdk, PolicyKind::Spp, PolicyKind::SafePm] {
        let pool = fresh_server_pool(8 << 20, 2, true).unwrap();
        let engine = Arc::new(KvEngine::create(Arc::clone(&pool), kind, 64).unwrap());
        // Pre-state the batch will overwrite, committed before the tap so
        // it must survive every image.
        let old = value_of(9, 0);
        let new = b"overwritten-by-batch".to_vec();
        engine.put(&key_of(9, 0), &old).unwrap();

        let images: Arc<Mutex<Vec<CrashImage>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let images = Arc::clone(&images);
            pool.pm().set_boundary_tap(Box::new(move |pm, _| {
                let mut g = images.lock().unwrap();
                // Bound memory; a batch commit crosses far fewer
                // boundaries than this.
                if g.len() < 64 {
                    g.push(pm.crash_image(CrashSpec::DropUnpersisted));
                }
            }));
        }
        let ops: Vec<WriteOp> = (0..BATCH)
            .map(|i| WriteOp::Put {
                key: key_of(8, i).to_vec(),
                value: value_of(8, i),
            })
            .chain([WriteOp::Put {
                key: key_of(9, 0).to_vec(),
                value: new.clone(),
            }])
            .collect();
        let replies = engine.apply_write_batch(&ops);
        assert!(
            replies.iter().all(|r| *r == WriteReply::Ok),
            "{}: batch failed: {replies:?}",
            kind.label()
        );
        pool.pm().clear_boundary_tap();

        let images = std::mem::take(&mut *images.lock().unwrap());
        assert!(!images.is_empty(), "no boundary crossed during the batch");
        for (i, image) in images.into_iter().enumerate() {
            let pm = Arc::new(PmPool::from_image(image, PoolConfig::new(0)));
            let p2 = Arc::new(ObjPool::open(pm).expect("pmdk recovery failed on boundary image"));
            let e2 = KvEngine::open(p2, kind).expect("engine reopen failed");
            let mut out = Vec::new();
            let mut present = 0u64;
            for s in 0..BATCH {
                out.clear();
                if e2.get(&key_of(8, s), &mut out).unwrap() {
                    present += 1;
                    assert_eq!(out, value_of(8, s), "boundary {i}: torn batch value");
                }
            }
            out.clear();
            assert!(
                e2.get(&key_of(9, 0), &mut out).unwrap(),
                "{}: pre-existing key lost at boundary {i}",
                kind.label()
            );
            if present == 0 {
                assert_eq!(
                    out,
                    old,
                    "{}: boundary {i}: overwrite applied without its batch",
                    kind.label()
                );
            } else {
                assert_eq!(
                    present,
                    BATCH,
                    "{}: boundary {i}: batch split {present}/{BATCH}",
                    kind.label()
                );
                assert_eq!(
                    out,
                    new,
                    "{}: boundary {i}: batch applied without its overwrite",
                    kind.label()
                );
            }
        }
    }
}

#[test]
fn late_crash_still_recovers_every_ack() {
    // A crash deep into the run: most writes acked, several transactions
    // already retired lanes many times over.
    let cap = crash_under_load(PolicyKind::Spp, IoMode::Epoll, 2_500);
    assert!(cap.acked.len() > 10, "expected a deep run before the crash");
    recover_and_verify(PolicyKind::Spp, &cap);
}
