//! The acked-write durability contract, proven end-to-end: a TCP server
//! under live multi-connection load is "killed" by pm crash-injection at a
//! flush/fence boundary, the surviving device image is reopened through
//! full pmdk recovery, and **every PUT that was acked on the wire before
//! the crash must be readable with its exact value**.
//!
//! Soundness of the check: the acked-writes log is snapshotted *before*
//! the crash image is captured. A PUT is acked only after its transaction
//! commit flushed and fenced, and durability is monotonic, so every entry
//! in the snapshot was durable when the image was taken — the snapshot is
//! a conservative subset of what must survive. Un-acked writes may or may
//! not appear (a concurrent transaction may be mid-flight); recovery must
//! still leave the heap structurally sound either way, which the inline
//! lane-quiescence and heap-walk oracles enforce.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use spp::pm::{CrashImage, CrashSpec, PmPool, PoolConfig};
use spp::pmdk::ObjPool;
use spp::server::{
    fresh_server_pool, Client, ClientError, KvEngine, PolicyKind, Server, ServerConfig,
};

const CLIENTS: u32 = 2;
const OPS_PER_CLIENT: u64 = 250;
const VALUE_PAD: usize = 48;

fn key_of(conn: u32, seq: u64) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..4].copy_from_slice(&conn.to_be_bytes());
    k[4..12].copy_from_slice(&seq.to_be_bytes());
    k
}

fn value_of(conn: u32, seq: u64) -> Vec<u8> {
    let mut v = format!("v-{conn}-{seq}-").into_bytes();
    v.resize(v.len() + VALUE_PAD, b'.');
    v
}

/// What the boundary tap captures at the injected crash: the acked log as
/// of *before* the image, then the durable image itself.
struct Captured {
    acked: Vec<(u32, u64)>,
    image: CrashImage,
}

/// Drive live load over TCP, capture a crash image at the `target`-th
/// durability boundary after load start, and return it with the
/// acked-before-capture log. Falls back to a quiescent `KeepAll` image if
/// the workload finishes before the boundary is reached.
fn crash_under_load(kind: PolicyKind, target: u64) -> Captured {
    let pool = fresh_server_pool(32 << 20, 8, true).unwrap();
    let engine = Arc::new(KvEngine::create(Arc::clone(&pool), kind, 512).unwrap());
    let server = Server::start(
        Arc::clone(&engine),
        ("127.0.0.1", 0),
        ServerConfig {
            workers: 3,
            max_conns: 8,
            queue_depth: 32,
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let acked: Arc<Mutex<Vec<(u32, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let captured: Arc<Mutex<Option<Captured>>> = Arc::new(Mutex::new(None));
    let stop = Arc::new(AtomicBool::new(false));

    // Install the tap only now, so boundary counts refer to client-driven
    // activity, not pool/engine setup.
    {
        let acked = Arc::clone(&acked);
        let captured = Arc::clone(&captured);
        let stop = Arc::clone(&stop);
        let boundaries = AtomicU64::new(0);
        pool.pm().set_boundary_tap(Box::new(move |pm, _| {
            if boundaries.fetch_add(1, Ordering::Relaxed) + 1 < target
                || stop.load(Ordering::SeqCst)
            {
                return;
            }
            // Order matters: snapshot the acked log FIRST. Everything in
            // the snapshot was flushed+fenced before its ack, so it is
            // durable in the image captured next.
            let snapshot = acked.lock().unwrap().clone();
            if snapshot.is_empty() {
                // A single transaction can span many boundaries; hold the
                // crash until at least one PUT has been acked on the wire
                // so the contract is actually exercised.
                return;
            }
            let image = pm.crash_image(CrashSpec::DropUnpersisted);
            *captured.lock().unwrap() = Some(Captured {
                acked: snapshot,
                image,
            });
            stop.store(true, Ordering::SeqCst);
        }));
    }

    let client_threads: Vec<_> = (0..CLIENTS)
        .map(|cid| {
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                for seq in 0..OPS_PER_CLIENT {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match c.put(&key_of(cid, seq), &value_of(cid, seq)) {
                        Ok(()) => acked.lock().unwrap().push((cid, seq)),
                        Err(ClientError::Busy) => continue,
                        // Acceptable only while the rig winds down.
                        Err(_) if stop.load(Ordering::SeqCst) => break,
                        Err(e) => panic!("client {cid}: PUT failed mid-load: {e}"),
                    }
                }
            })
        })
        .collect();
    for t in client_threads {
        t.join().unwrap();
    }
    pool.pm().clear_boundary_tap();
    server.shutdown();

    let taken = captured.lock().unwrap().take();
    match taken {
        Some(c) => c,
        None => {
            // The workload outran the target boundary; fall back to a
            // clean post-shutdown image so the test still proves the
            // recovery path.
            let snapshot = acked.lock().unwrap().clone();
            Captured {
                acked: snapshot,
                image: pool.pm().crash_image(CrashSpec::KeepAll),
            }
        }
    }
}

/// Reopen the image through full recovery and run the oracle stack: lane
/// quiescence, heap walk, then exact readback of every acked write.
fn recover_and_verify(kind: PolicyKind, cap: &Captured) {
    let pm = Arc::new(PmPool::from_image(cap.image.clone(), PoolConfig::new(0)));
    let pool = Arc::new(ObjPool::open(pm).expect("pmdk recovery failed on crash image"));

    // Structural oracles (the torture rig's invariants, inline): recovery
    // must leave every lane quiescent and the heap cleanly walkable.
    for (i, s) in pool.lane_statuses().unwrap().into_iter().enumerate() {
        assert!(
            s.is_quiescent(),
            "lane {i} not quiescent after recovery: {s:?}"
        );
    }
    pool.walk_heap().expect("heap not walkable after recovery");

    let engine = KvEngine::open(Arc::clone(&pool), kind).expect("engine reopen failed");

    // The contract: every acked PUT is present with its exact value.
    let mut out = Vec::new();
    for &(cid, seq) in &cap.acked {
        out.clear();
        let hit = engine
            .get(&key_of(cid, seq), &mut out)
            .expect("GET after recovery errored");
        assert!(
            hit,
            "{}: acked PUT ({cid},{seq}) missing after crash-restart",
            kind.label()
        );
        assert_eq!(
            out,
            value_of(cid, seq),
            "{}: acked PUT ({cid},{seq}) has wrong value after crash-restart",
            kind.label()
        );
    }

    // Completeness: whatever else survived must be a prefix write from the
    // run (an un-acked in-flight PUT), never a foreign or torn record.
    let acked_count = cap.acked.len() as u64;
    let mut seen = 0u64;
    engine
        .for_each(|k, v| {
            let cid = u32::from_be_bytes(k[..4].try_into().unwrap());
            let seq = u64::from_be_bytes(k[4..12].try_into().unwrap());
            assert!(
                cid < CLIENTS && seq < OPS_PER_CLIENT,
                "recovered foreign key ({cid},{seq})"
            );
            assert_eq!(
                v,
                value_of(cid, seq).as_slice(),
                "recovered torn value for ({cid},{seq})"
            );
            seen += 1;
            Ok(())
        })
        .unwrap();
    assert!(
        seen >= acked_count,
        "store holds {seen} entries but {acked_count} were acked"
    );
}

#[test]
fn acked_writes_survive_crash_restart_pmdk() {
    let cap = crash_under_load(PolicyKind::Pmdk, 60);
    assert!(!cap.acked.is_empty(), "rig crashed before any ack");
    recover_and_verify(PolicyKind::Pmdk, &cap);
}

#[test]
fn acked_writes_survive_crash_restart_spp() {
    let cap = crash_under_load(PolicyKind::Spp, 137);
    assert!(!cap.acked.is_empty(), "rig crashed before any ack");
    recover_and_verify(PolicyKind::Spp, &cap);
}

#[test]
fn acked_writes_survive_crash_restart_safepm() {
    let cap = crash_under_load(PolicyKind::SafePm, 401);
    assert!(!cap.acked.is_empty(), "rig crashed before any ack");
    recover_and_verify(PolicyKind::SafePm, &cap);
}

/// Differential variant of the contract: the acked wire log is replayed
/// into the oracle harness's volatile reference model ([`spp::oracle`]),
/// and every post-recovery GET must match the model's prediction — both
/// positive (each modelled key hits with its exact bytes) and negative
/// (keys the model never saw must miss). Whatever else survived must be
/// an in-flight un-acked write from the run, never a foreign record.
#[test]
fn recovered_gets_match_reference_model_after_midload_crash() {
    let cap = crash_under_load(PolicyKind::Spp, 90);
    assert!(!cap.acked.is_empty(), "rig crashed before any ack");

    // Each ack is a committed KV put; acks are applied in wire order so
    // the model's last-write-wins semantics match the engine's.
    let mut model = spp::oracle::Model::new();
    for &(cid, seq) in &cap.acked {
        model.kv.insert(key_of(cid, seq), value_of(cid, seq));
    }

    let pm = Arc::new(PmPool::from_image(cap.image.clone(), PoolConfig::new(0)));
    let pool = Arc::new(ObjPool::open(pm).expect("pmdk recovery failed on crash image"));
    let engine = KvEngine::open(Arc::clone(&pool), PolicyKind::Spp).expect("engine reopen failed");

    // Positive predictions: every modelled entry hits, byte-exact.
    let mut out = Vec::new();
    for (k, want) in &model.kv {
        out.clear();
        let hit = engine.get(k, &mut out).expect("GET after recovery errored");
        assert!(hit, "model predicts a hit for key {k:?}, engine missed");
        assert_eq!(&out, want, "GET diverges from the reference model");
    }

    // Negative predictions: keys outside the trace's key space miss.
    for miss in [key_of(CLIENTS + 7, 0), key_of(0, OPS_PER_CLIENT + 3)] {
        out.clear();
        assert!(
            !engine.get(&miss, &mut out).expect("GET errored"),
            "engine hit a key the model never saw"
        );
    }

    // Everything else the engine holds must be an in-flight un-acked put
    // from the run, carrying its exact would-be value.
    engine
        .for_each(|k, v| {
            if let Some(want) = model.kv.get(k) {
                assert_eq!(v, want.as_slice(), "recovered value diverges from model");
            } else {
                let cid = u32::from_be_bytes(k[..4].try_into().unwrap());
                let seq = u64::from_be_bytes(k[4..12].try_into().unwrap());
                assert!(
                    cid < CLIENTS && seq < OPS_PER_CLIENT,
                    "recovered foreign key ({cid},{seq})"
                );
                assert_eq!(
                    v,
                    value_of(cid, seq).as_slice(),
                    "un-acked in-flight put recovered torn"
                );
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn late_crash_still_recovers_every_ack() {
    // A crash deep into the run: most writes acked, several transactions
    // already retired lanes many times over.
    let cap = crash_under_load(PolicyKind::Spp, 2_500);
    assert!(cap.acked.len() > 10, "expected a deep run before the crash");
    recover_and_verify(PolicyKind::Spp, &cap);
}
