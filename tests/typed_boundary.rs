//! `spp_core::typed` deref paths at exact-boundary offsets, under all
//! four policies.
//!
//! A typed object's media layout is an 8-byte type-number header plus
//! the `PmType::SIZE` payload. Dereferencing through the policy's
//! pointer at the last byte (`total - 1`) must succeed everywhere; one
//! byte past the object (`total`) and a short jump into the allocator
//! slack (`total + 7`) are adjacent-same-chunk overflows that each
//! policy must land in its guarantee-matrix cell: caught by SafePM's
//! redzone and SPP's tag, silently hit by native PMDK and (chunk
//! granularity) by memcheck.

use std::sync::Arc;

use spp::core::{MemoryPolicy, PmdkPolicy, SppError, SppPolicy, TagConfig, TypedOid};
use spp::pm::{PmPool, PoolConfig};
use spp::pmdk::{ObjPool, PoolOpts};
use spp::ripe::{expected_cell, Cell, Family, MemcheckPolicy, Protection, CHUNK};
use spp::safepm::SafePmPolicy;

/// Payload bytes of the test record.
const PAYLOAD: u64 = 40;
/// The typed layer's type-number prefix.
const TYPE_HDR: u64 = 8;
/// Full on-media object size.
const TOTAL: u64 = TYPE_HDR + PAYLOAD;

fn fresh_pool() -> Arc<ObjPool> {
    let pm = Arc::new(PmPool::new(PoolConfig::new(1 << 20)));
    Arc::new(ObjPool::create(pm, PoolOpts::small()).unwrap())
}

/// What a one-byte probe load actually did.
#[derive(Debug)]
enum Observed {
    Hit(u8),
    Caught(&'static str),
    Fault,
}

fn probe<P: MemoryPolicy>(policy: &P, ptr: u64) -> Observed {
    let mut b = [0u8; 1];
    match policy.load(ptr, &mut b) {
        Ok(()) => Observed::Hit(b[0]),
        Err(SppError::OverflowDetected { mechanism, .. }) => Observed::Caught(mechanism),
        Err(SppError::Fault { .. }) => Observed::Fault,
        Err(e) => panic!("probe load raised unexpected error: {e}"),
    }
}

fn check_policy<P: MemoryPolicy>(policy: &P, protection: Protection) {
    let value = [0xA5u8; PAYLOAD as usize];
    let t = TypedOid::new(policy, &value).unwrap();
    // The legal deref path works.
    assert_eq!(t.read(policy).unwrap(), value, "{protection:?}: read");
    let ptr = policy.direct(t.oid());

    // total - 1: the object's last byte must Hit with the stored value.
    match probe(policy, policy.gep(ptr, (TOTAL - 1) as i64)) {
        Observed::Hit(b) => assert_eq!(b, 0xA5, "{protection:?}: last byte"),
        obs => panic!("{protection:?}: in-bounds probe at total-1 observed {obs:?}"),
    }

    // total and total + 7: adjacent-same-chunk overflows. Skip the
    // chunk-granular memcheck when the target byte crosses into the next
    // 4 KiB chunk (its verdict would depend on neighbouring objects).
    let base = policy.resolve(ptr, 1).unwrap();
    for delta in [TOTAL, TOTAL + 7] {
        if matches!(protection, Protection::Memcheck) && (base + delta) / CHUNK != base / CHUNK {
            continue;
        }
        let obs = probe(policy, policy.gep(ptr, delta as i64));
        let want = expected_cell(Family::AdjacentSameChunk, protection);
        match (&obs, want) {
            (Observed::Hit(_), Cell::Hit) | (Observed::Fault, Cell::Fault) => {}
            (Observed::Caught(m), Cell::Caught) => {
                assert_eq!(
                    Some(*m),
                    protection.mechanism(),
                    "{protection:?}: wrong mechanism at +{delta}"
                );
            }
            _ => panic!("{protection:?}: probe at +{delta} observed {obs:?}, expected {want:?}"),
        }
    }

    t.delete(policy).unwrap();
}

#[test]
fn typed_boundary_pmdk() {
    check_policy(&PmdkPolicy::new(fresh_pool()), Protection::Pmdk);
}

#[test]
fn typed_boundary_memcheck() {
    check_policy(&MemcheckPolicy::new(fresh_pool()), Protection::Memcheck);
}

#[test]
fn typed_boundary_safepm() {
    check_policy(
        &SafePmPolicy::create(fresh_pool()).unwrap(),
        Protection::SafePm,
    );
}

#[test]
fn typed_boundary_spp() {
    check_policy(
        &SppPolicy::new(fresh_pool(), TagConfig::default()).unwrap(),
        Protection::Spp,
    );
}
