//! §VI-E: whole-workload crash-consistency verification.
//!
//! Index workloads run against a tracked pool; the resulting event log is
//! fed to the pmemcheck rules checker and the pmreorder-style replayer.
//! Every reachable crash state must recover to a structurally consistent
//! index — with SPP's durable size field in play.

use std::sync::Arc;

use spp_core::{MemoryPolicy, SppPolicy, TagConfig};
use spp_indices::{CTree, HashMapTx, Index, RbTree};
use spp_pm::{CrashImage, Mode, PmPool, PoolConfig};
use spp_pmdk::{ObjPool, PmemOid, PoolOpts};
use spp_pmemcheck::{Checker, CrashPoints, Replayer};

const POOL: u64 = 1 << 20;

fn tracked_policy() -> Arc<SppPolicy> {
    let pm = Arc::new(PmPool::new(PoolConfig::new(POOL).mode(Mode::Tracked)));
    let pool = Arc::new(ObjPool::create(pm, PoolOpts::small()).unwrap());
    Arc::new(SppPolicy::new(pool, TagConfig::default()).unwrap())
}

/// Snapshot the durable baseline after setup and restart tracking, so the
/// exploration covers application activity, not device formatting.
fn baseline(policy: &SppPolicy) -> Vec<u8> {
    let pm = policy.pool().pm();
    let initial = pm.contents();
    pm.reset_tracking();
    initial
}

fn reopen(img: &CrashImage) -> Result<Arc<SppPolicy>, String> {
    let pm = Arc::new(PmPool::from_image(img.clone(), PoolConfig::new(0)));
    let pool = ObjPool::open(pm).map_err(|e| format!("pool recovery failed: {e}"))?;
    SppPolicy::new(Arc::new(pool), TagConfig::default())
        .map(Arc::new)
        .map_err(|e| format!("policy rejected recovered pool: {e}"))
}

/// Structural validation shared by the index exploration tests: the pool
/// recovers, and every candidate key resolves without a safety violation to
/// either the inserted value or absence.
fn validate_index<I, F>(
    img: &CrashImage,
    meta: PmemOid,
    keys: &[(u64, u64)],
    open: F,
) -> Result<(), String>
where
    I: Index<SppPolicy>,
    F: Fn(Arc<SppPolicy>, PmemOid) -> spp_core::Result<I>,
{
    let policy = reopen(img)?;
    let idx = open(policy, meta).map_err(|e| format!("index failed to reopen: {e}"))?;
    for &(k, v) in keys {
        match idx.get(k) {
            Ok(None) => {}
            Ok(Some(got)) if got == v => {}
            Ok(Some(got)) => return Err(format!("key {k}: got {got}, expected {v} or absent")),
            Err(e) => return Err(format!("key {k}: safety violation on recovered tree: {e}")),
        }
    }
    idx.count().map_err(|e| format!("count unreadable: {e}"))?;
    Ok(())
}

#[test]
fn ctree_workload_is_crash_consistent() {
    let policy = tracked_policy();
    let tree = CTree::create(Arc::clone(&policy)).unwrap();
    let initial = baseline(&policy);
    let keys: Vec<(u64, u64)> = (0..6u64).map(|k| (k * 17 + 3, k + 100)).collect();
    for &(k, v) in &keys {
        tree.insert(k, v).unwrap();
    }
    tree.remove(keys[1].0).unwrap();
    tree.remove(keys[4].0).unwrap();
    let meta = tree.meta();

    // Rule check: the workload flushed and fenced everything it wrote.
    let log = policy.pool().pm().event_log().unwrap();
    let report = Checker::new().analyze(&log);
    assert!(
        report.is_clean(),
        "pmemcheck errors: {:?}",
        &report.errors[..report.errors.len().min(3)]
    );

    // Crash-state exploration.
    let replayer = Replayer::with_initial(initial, log);
    let checked = replayer
        .explore(CrashPoints::Fences, |img| {
            validate_index(img, meta, &keys, CTree::open)
        })
        .unwrap_or_else(|e| panic!("crash-state violation: {e}"));
    assert!(checked > 100, "exploration too shallow: {checked} states");
}

#[test]
fn hashmap_workload_is_crash_consistent() {
    let policy = tracked_policy();
    let map = HashMapTx::with_buckets(Arc::clone(&policy), 16).unwrap();
    let initial = baseline(&policy);
    let keys: Vec<(u64, u64)> = (0..6u64).map(|k| (k, k * 2 + 1)).collect();
    for &(k, v) in &keys {
        map.insert(k, v).unwrap();
    }
    map.remove(2).unwrap();
    let meta = map.meta();

    let log = policy.pool().pm().event_log().unwrap();
    assert!(Checker::new().analyze(&log).is_clean());
    let replayer = Replayer::with_initial(initial, log);
    let checked = replayer
        .explore(CrashPoints::Fences, |img| {
            validate_index(img, meta, &keys, HashMapTx::open)
        })
        .unwrap_or_else(|e| panic!("crash-state violation: {e}"));
    assert!(checked > 50);
}

#[test]
fn rbtree_workload_preserves_invariants_across_crashes() {
    let policy = tracked_policy();
    let tree = RbTree::create(Arc::clone(&policy)).unwrap();
    let initial = baseline(&policy);
    let keys: Vec<(u64, u64)> = [5u64, 2, 8, 1, 9].iter().map(|&k| (k, k * 10)).collect();
    for &(k, v) in &keys {
        tree.insert(k, v).unwrap();
    }
    let meta = tree.meta();

    let log = policy.pool().pm().event_log().unwrap();
    let replayer = Replayer::with_initial(initial, log);
    replayer
        .explore(CrashPoints::Fences, |img| {
            let policy = reopen(img)?;
            let tree = RbTree::open(policy, meta).map_err(|e| format!("reopen: {e}"))?;
            // Full structural validation (colors, BST order, black height).
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                tree.check_invariants()
                    .map_err(|e| format!("walk failed: {e}"))
            }))
            .map_err(|_| "red-black invariant violated after recovery".to_string())??;
            Ok(())
        })
        .unwrap_or_else(|e| panic!("crash-state violation: {e}"));
}

#[test]
fn spp_size_field_is_consistent_in_every_crash_state() {
    // The §IV-F property end-to-end: explore a workload that stores oids in
    // PM and verify no crash state yields a valid oid whose size field
    // disagrees with the allocation.
    let policy = tracked_policy();
    let home = policy.zalloc(256).unwrap();
    let initial = baseline(&policy);
    let hp = policy.direct(home);
    // A few alloc_into / free_from / realloc cycles on oid slots.
    let a = policy.zalloc_into_ptr(hp, 100).unwrap();
    let slot2 = policy.gep(hp, 24);
    let _b = policy.zalloc_into_ptr(slot2, 200).unwrap();
    let a2 = policy.realloc_from_ptr(hp, a, 3000).unwrap();
    assert_eq!(a2.size, 3000);
    let home_off = home.off;

    let log = policy.pool().pm().event_log().unwrap();
    let replayer = Replayer::with_initial(initial, log);
    replayer
        .explore(CrashPoints::EveryEvent, |img| {
            let policy = reopen(img)?;
            for slot in [home_off, home_off + 24] {
                let ptr = policy.direct(PmemOid::new(policy.pool().uuid(), home_off, 256));
                let oid = policy
                    .load_oid(policy.gep(ptr, (slot - home_off) as i64))
                    .map_err(|e| format!("oid load: {e}"))?;
                if !oid.is_null() {
                    if oid.size == 0 {
                        return Err(format!("valid oid at {slot:#x} with zero size"));
                    }
                    // The tagged pointer derived from it must permit exactly
                    // `size` bytes.
                    let obj = policy.direct(oid);
                    policy
                        .load_u64(policy.gep(obj, oid.size as i64 - 8))
                        .map_err(|e| format!("last word unreadable: {e}"))?;
                    if policy.load_u64(policy.gep(obj, oid.size as i64)).is_ok() {
                        return Err("tag permits access past the object".into());
                    }
                }
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("size-field inconsistency: {e}"));
}
