//! pmreorder-style crash-state exploration over an event log.

use spp_pm::{CrashImage, EventLog, PmEvent};

/// Where to inject crashes during replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoints {
    /// After every event (exhaustive in program order).
    EveryEvent,
    /// After every fence plus at the end (the points where the durable set
    /// changes shape).
    Fences,
}

/// A consistency failure found during exploration.
#[derive(Debug, Clone)]
pub struct ExploreError {
    /// Index of the crash point in the event log (events consumed).
    pub prefix: usize,
    /// How many pending (unpersisted) stores were allowed to survive.
    pub survivors: usize,
    /// The validator's message.
    pub message: String,
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "inconsistent crash state at event {} with {} surviving pending stores: {}",
            self.prefix, self.survivors, self.message
        )
    }
}

impl std::error::Error for ExploreError {}

/// Replays an event log from an all-zero initial pool image, maintaining
/// the durable ("persisted") image and the ordered list of pending stores,
/// and materialising crash states at chosen points.
///
/// At each crash point it enumerates which pending (unfenced) stores the
/// cache may have written back: **exhaustively** (all `2^n` subsets, the
/// `ReorderFull` engine) when few stores are pending, falling back to
/// forward + backward accumulative orders plus singletons (the
/// `ReorderPartial` strategy) for larger sets. Exhaustive subsets are what
/// catch ordering bugs like "valid-flag durable before its data".
#[derive(Debug)]
pub struct Replayer {
    initial: Vec<u8>,
    events: Vec<PmEvent>,
}

#[derive(Debug, Clone)]
struct Pending {
    off: u64,
    new: Box<[u8]>,
    /// byte ranges not yet flushed
    unflushed: Vec<(u64, u64)>,
    /// fully flushed (awaiting fence)
    flushed: bool,
}

impl Replayer {
    /// Pending-store count up to which crash subsets are enumerated
    /// exhaustively.
    pub const EXHAUSTIVE_PENDING: usize = 10;

    /// Create a replayer for a pool of `pool_size` bytes whose entire
    /// history (from the zeroed state) is in `log`.
    pub fn new(pool_size: u64, log: EventLog) -> Self {
        Replayer {
            initial: vec![0u8; pool_size as usize],
            events: log.events().to_vec(),
        }
    }

    /// Create a replayer whose history starts from a known durable baseline
    /// (pair with [`spp_pm::PmPool::reset_tracking`] after pool setup).
    pub fn with_initial(initial: Vec<u8>, log: EventLog) -> Self {
        Replayer {
            initial,
            events: log.events().to_vec(),
        }
    }

    /// Number of events in the log.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Explore crash states; `validate` receives each candidate image and
    /// returns `Err(reason)` if the application-level invariants do not
    /// hold after recovery.
    ///
    /// Returns the first inconsistent state found, if any, plus the number
    /// of states checked.
    ///
    /// # Errors
    ///
    /// [`ExploreError`] describing the first inconsistent crash state.
    pub fn explore<F>(&self, points: CrashPoints, mut validate: F) -> Result<u64, Box<ExploreError>>
    where
        F: FnMut(&CrashImage) -> Result<(), String>,
    {
        let mut durable = self.initial.clone();
        let mut pending: Vec<Pending> = Vec::new();
        let mut checked = 0u64;

        let mut check_here = |prefix: usize,
                              durable: &[u8],
                              pending: &[Pending]|
         -> Result<u64, Box<ExploreError>> {
            let n = pending.len();
            let subsets: Vec<Vec<usize>> = if n <= Self::EXHAUSTIVE_PENDING {
                (0..(1usize << n))
                    .map(|mask| (0..n).filter(|i| mask & (1 << i) != 0).collect())
                    .collect()
            } else {
                let mut subs: Vec<Vec<usize>> = Vec::new();
                for k in 0..=n {
                    subs.push((0..k).collect()); // forward accumulative
                    subs.push((n - k..n).collect()); // backward accumulative
                }
                for i in 0..n {
                    subs.push(vec![i]); // singletons
                }
                subs.sort();
                subs.dedup();
                subs
            };
            let mut local = 0u64;
            for subset in subsets {
                let mut image = durable.to_vec();
                // Apply surviving stores in program order (overlaps resolve
                // as the cache would: later store wins).
                for &i in &subset {
                    let s = &pending[i];
                    image[s.off as usize..s.off as usize + s.new.len()].copy_from_slice(&s.new);
                }
                local += 1;
                if let Err(message) = validate(&CrashImage::from_bytes(image)) {
                    return Err(Box::new(ExploreError {
                        prefix,
                        survivors: subset.len(),
                        message,
                    }));
                }
            }
            Ok(local)
        };

        for (i, ev) in self.events.iter().enumerate() {
            match ev {
                PmEvent::Store { off, new, .. } => {
                    pending.push(Pending {
                        off: *off,
                        new: new.clone(),
                        unflushed: vec![(*off, *off + new.len() as u64)],
                        flushed: false,
                    });
                }
                PmEvent::Flush { off, len, .. } => {
                    for s in pending.iter_mut() {
                        subtract(&mut s.unflushed, *off, *off + *len);
                        if s.unflushed.is_empty() {
                            s.flushed = true;
                        }
                    }
                }
                PmEvent::Fence { .. } => {
                    // Flushed stores become durable *in program order*.
                    let mut rest = Vec::with_capacity(pending.len());
                    for s in pending.drain(..) {
                        if s.flushed {
                            durable[s.off as usize..s.off as usize + s.new.len()]
                                .copy_from_slice(&s.new);
                        } else {
                            rest.push(s);
                        }
                    }
                    pending = rest;
                    if points == CrashPoints::Fences {
                        checked += check_here(i + 1, &durable, &pending)?;
                    }
                }
                PmEvent::Mark { .. } => {}
            }
            if points == CrashPoints::EveryEvent {
                checked += check_here(i + 1, &durable, &pending)?;
            }
        }
        // Final state (program exit / crash at the very end).
        checked += check_here(self.events.len(), &durable, &pending)?;
        Ok(checked)
    }
}

fn subtract(ranges: &mut Vec<(u64, u64)>, lo: u64, hi: u64) {
    let mut out = Vec::with_capacity(ranges.len());
    for &(a, b) in ranges.iter() {
        if b <= lo || a >= hi {
            out.push((a, b));
        } else {
            if a < lo {
                out.push((a, lo));
            }
            if b > hi {
                out.push((hi, b));
            }
        }
    }
    *ranges = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_pm::{Mode, PmPool, PoolConfig};

    #[test]
    fn durable_prefix_semantics() {
        let pm = PmPool::new(PoolConfig::new(4096).mode(Mode::Tracked));
        pm.write(0, &[1]).unwrap();
        pm.persist(0, 1).unwrap();
        pm.write(8, &[2]).unwrap(); // never persisted
        let replayer = Replayer::new(pm.size(), pm.event_log().unwrap());
        let mut saw_pending_survivor = false;
        let checked = replayer
            .explore(CrashPoints::EveryEvent, |img| {
                // Invariant: byte 8 may be 0 or 2; byte 0 is 1 only after
                // its fence; never anything else.
                let b0 = img.bytes()[0];
                let b8 = img.bytes()[8];
                if b8 == 2 {
                    saw_pending_survivor = true;
                }
                if (b0 == 0 || b0 == 1) && (b8 == 0 || b8 == 2) {
                    Ok(())
                } else {
                    Err(format!("unexpected bytes {b0} {b8}"))
                }
            })
            .unwrap();
        assert!(checked > 3);
        assert!(
            saw_pending_survivor,
            "exploration never surfaced the pending store"
        );
    }

    #[test]
    fn detects_ordering_bugs() {
        // Classic bug: write data, write valid-flag, persist both with ONE
        // fence — the flag may become durable without the data.
        let pm = PmPool::new(PoolConfig::new(4096).mode(Mode::Tracked));
        pm.write(0, &[0xDD; 8]).unwrap(); // data
        pm.write(64, &[1]).unwrap(); // valid flag (different line!)
        pm.flush(0, 8).unwrap();
        pm.flush(64, 1).unwrap();
        pm.fence();
        let replayer = Replayer::new(pm.size(), pm.event_log().unwrap());
        let result = replayer.explore(CrashPoints::EveryEvent, |img| {
            let valid = img.bytes()[64] == 1;
            let data_ok = img.bytes()[0] == 0xDD;
            if valid && !data_ok {
                Err("valid flag set but data missing".into())
            } else {
                Ok(())
            }
        });
        let err = result.unwrap_err();
        assert!(err.message.contains("data missing"));
    }

    #[test]
    fn correct_ordering_passes() {
        // The fixed version: fence between data and flag.
        let pm = PmPool::new(PoolConfig::new(4096).mode(Mode::Tracked));
        pm.write(0, &[0xDD; 8]).unwrap();
        pm.persist(0, 8).unwrap();
        pm.write(64, &[1]).unwrap();
        pm.persist(64, 1).unwrap();
        let replayer = Replayer::new(pm.size(), pm.event_log().unwrap());
        replayer
            .explore(CrashPoints::EveryEvent, |img| {
                let valid = img.bytes()[64] == 1;
                let data_ok = img.bytes()[0] == 0xDD;
                if valid && !data_ok {
                    Err("valid flag set but data missing".into())
                } else {
                    Ok(())
                }
            })
            .unwrap();
    }
}
