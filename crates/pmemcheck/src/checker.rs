//! pmemcheck-style flush/fence rule checking.

use spp_pm::{EventLog, PmEvent};

/// A hard rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A store was never made durable (not flushed, or flushed but never
    /// fenced) by the end of the log — `pmemcheck`'s
    /// "stores not made persistent" error.
    StoreNotPersisted {
        /// Store sequence number.
        seq: u64,
        /// Pool offset.
        off: u64,
        /// Store length.
        len: u64,
        /// `"not flushed"` or `"flushed but not fenced"`.
        state: &'static str,
    },
}

/// A performance warning (not a correctness problem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// A flush covered no dirty bytes — wasted `CLWB`.
    RedundantFlush {
        /// Flush sequence number.
        seq: u64,
        /// Flushed range start.
        off: u64,
        /// Flushed range length.
        len: u64,
    },
}

/// Analysis outcome.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Hard violations (empty log = crash-consistent usage).
    pub errors: Vec<Violation>,
    /// Performance warnings.
    pub warnings: Vec<Warning>,
    /// Total stores analysed.
    pub stores: u64,
    /// Total flushes analysed.
    pub flushes: u64,
    /// Total fences analysed.
    pub fences: u64,
}

impl Report {
    /// Whether the log satisfied all rules.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

#[derive(Debug)]
struct PendingStore {
    seq: u64,
    off: u64,
    len: u64,
    /// byte ranges not yet covered by a flush
    unflushed: Vec<(u64, u64)>,
}

/// The rules checker.
#[derive(Debug, Default)]
pub struct Checker;

impl Checker {
    /// Create a checker.
    pub fn new() -> Self {
        Checker
    }

    /// Analyse a pool event log.
    pub fn analyze(&self, log: &EventLog) -> Report {
        let mut report = Report::default();
        let mut pending: Vec<PendingStore> = Vec::new();
        for ev in log.events() {
            match ev {
                PmEvent::Store { seq, off, new, .. } => {
                    report.stores += 1;
                    pending.push(PendingStore {
                        seq: *seq,
                        off: *off,
                        len: new.len() as u64,
                        unflushed: vec![(*off, *off + new.len() as u64)],
                    });
                }
                PmEvent::Flush { seq, off, len } => {
                    report.flushes += 1;
                    let lo = *off;
                    let hi = *off + *len;
                    let mut useful = false;
                    for s in pending.iter_mut() {
                        let before: u64 = s.unflushed.iter().map(|(a, b)| b - a).sum();
                        subtract(&mut s.unflushed, lo, hi);
                        let after: u64 = s.unflushed.iter().map(|(a, b)| b - a).sum();
                        if after < before {
                            useful = true;
                        }
                    }
                    if !useful {
                        report.warnings.push(Warning::RedundantFlush {
                            seq: *seq,
                            off: lo,
                            len: *len,
                        });
                    }
                }
                PmEvent::Fence { .. } => {
                    report.fences += 1;
                    // Fully flushed stores become durable; drop them.
                    pending.retain(|s| !s.unflushed.is_empty());
                }
                PmEvent::Mark { .. } => {}
            }
        }
        for s in &pending {
            let state = if s.unflushed.iter().map(|(a, b)| b - a).sum::<u64>() == s.len {
                "not flushed"
            } else {
                "flushed but not fenced"
            };
            report.errors.push(Violation::StoreNotPersisted {
                seq: s.seq,
                off: s.off,
                len: s.len,
                state,
            });
        }
        report
    }
}

fn subtract(ranges: &mut Vec<(u64, u64)>, lo: u64, hi: u64) {
    let mut out = Vec::with_capacity(ranges.len());
    for &(a, b) in ranges.iter() {
        if b <= lo || a >= hi {
            out.push((a, b));
        } else {
            if a < lo {
                out.push((a, lo));
            }
            if b > hi {
                out.push((hi, b));
            }
        }
    }
    *ranges = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_pm::{Mode, PmPool, PoolConfig};

    fn tracked() -> PmPool {
        PmPool::new(PoolConfig::new(4096).mode(Mode::Tracked))
    }

    #[test]
    fn clean_persist_pattern() {
        let pm = tracked();
        pm.write(0, &[1; 16]).unwrap();
        pm.persist(0, 16).unwrap();
        let report = Checker::new().analyze(&pm.event_log().unwrap());
        assert!(report.is_clean(), "{:?}", report.errors);
        assert_eq!(report.stores, 1);
    }

    #[test]
    fn missing_flush_detected() {
        let pm = tracked();
        pm.write(0, &[1; 8]).unwrap();
        let report = Checker::new().analyze(&pm.event_log().unwrap());
        assert_eq!(report.errors.len(), 1);
        assert!(matches!(
            report.errors[0],
            Violation::StoreNotPersisted {
                state: "not flushed",
                ..
            }
        ));
    }

    #[test]
    fn missing_fence_detected() {
        let pm = tracked();
        pm.write(0, &[1; 8]).unwrap();
        pm.flush(0, 8).unwrap();
        let report = Checker::new().analyze(&pm.event_log().unwrap());
        assert_eq!(report.errors.len(), 1);
        assert!(matches!(
            report.errors[0],
            Violation::StoreNotPersisted {
                state: "flushed but not fenced",
                ..
            }
        ));
    }

    #[test]
    fn redundant_flush_warned() {
        let pm = tracked();
        pm.write(0, &[1; 8]).unwrap();
        pm.persist(0, 8).unwrap();
        pm.flush(0, 8).unwrap(); // nothing dirty anymore
        pm.fence();
        let report = Checker::new().analyze(&pm.event_log().unwrap());
        assert!(report.is_clean());
        assert_eq!(report.warnings.len(), 1);
    }

    #[test]
    fn partial_flush_is_not_durable() {
        let pm = tracked();
        pm.write(60, &[1; 16]).unwrap(); // spans two lines
        pm.flush(60, 2).unwrap(); // only the first line
        pm.fence();
        let report = Checker::new().analyze(&pm.event_log().unwrap());
        assert_eq!(report.errors.len(), 1);
    }
}
