//! # spp-pmemcheck — crash-consistency verification
//!
//! The §VI-E toolchain of the paper, rebuilt over [`spp_pm`]'s event log:
//!
//! * [`Checker`] — `pmemcheck` rules: every store must be covered by a
//!   flush and a fence before the program (or the region of interest) ends;
//!   redundant flushes are reported as performance warnings;
//! * [`TxChecker`] — the TX-discipline rule: stores inside a transaction
//!   must be undo-logged (snapshotted) or target objects allocated within
//!   the same transaction;
//! * [`Replayer`] — `pmreorder`: reconstructs, at every chosen crash point,
//!   the set of memory images a power failure could leave behind (persisted
//!   stores always present; pending stores present in any order-consistent
//!   subset) and runs a user-supplied consistency validator on each.
//!
//! The workspace's crash-consistency suites drive whole index workloads in
//! tracked mode and validate that `ObjPool::open` recovery plus the index
//! invariants hold in **every** reachable crash state — with the SPP size
//! field in play, which is exactly the property §VI-E establishes.

mod checker;
mod replay;
mod txcheck;

pub use checker::{Checker, Report, Violation, Warning};
pub use replay::{CrashPoints, ExploreError, Replayer};
pub use txcheck::{TxChecker, TxReport, UnprotectedStore};
