//! The transaction-discipline rule (`pmemcheck`'s TX checks): inside a
//! transaction, every store to the heap must be covered either by a
//! `pmemobj_tx_add_range` snapshot or by an object allocated inside the
//! same transaction — otherwise a crash-and-rollback would leave the
//! un-logged write behind, silently breaking atomicity.
//!
//! The transaction engine emits `tx_add:<off>:<len>` and
//! `tx_alloc:<off>:<len>` marks (tracked mode only); this checker matches
//! heap stores in `[tx_begin, tx_commit)` windows against them. Coverage is
//! resolved per-window *after* collecting all marks, because allocator
//! reservations touch block headers a moment before their mark is emitted.
//!
//! Allocator wilderness maintenance (carving a block out of a span, chunk
//! refills) rewrites free-block headers; those stores arrive under
//! `heap_hdr:<off>:<len>` marks and are exempt: they only ever describe
//! *free* space, keep the header chain valid at every crash point by
//! construction (successor header persisted before a span shrinks), and
//! need no undo — rollback of the enclosing transaction leaves them behind
//! as correct free-space bookkeeping, exactly like PMDK's heap micro-ops.

use spp_pm::{EventLog, PmEvent};

/// A store inside a transaction that rollback could not undo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnprotectedStore {
    /// Store sequence number.
    pub seq: u64,
    /// Pool offset.
    pub off: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Outcome of the TX-discipline analysis.
#[derive(Debug, Clone, Default)]
pub struct TxReport {
    /// Stores that violate the discipline.
    pub unprotected: Vec<UnprotectedStore>,
    /// Transactions analysed.
    pub transactions: u64,
}

impl TxReport {
    /// Whether all transactional stores were covered.
    pub fn is_clean(&self) -> bool {
        self.unprotected.is_empty()
    }
}

/// The TX-discipline checker.
///
/// Limitation: windows are matched in log order, so logs from *concurrent*
/// transactions interleave and must be analysed per-lane; the workspace's
/// crash suites run single-threaded workloads.
#[derive(Debug, Default)]
pub struct TxChecker {
    heap_off: u64,
}

impl TxChecker {
    /// Create a checker for a pool whose heap starts at `heap_off` (stores
    /// below it are log/lane metadata and exempt).
    pub fn new(heap_off: u64) -> Self {
        TxChecker { heap_off }
    }

    /// Analyse the log.
    pub fn analyze(&self, log: &EventLog) -> TxReport {
        let mut report = TxReport::default();
        let events = log.events();
        let mut i = 0;
        while i < events.len() {
            if matches!(&events[i], PmEvent::Mark { label, .. } if label == "tx_begin") {
                // Find the end of the window (commit or abort).
                let mut j = i + 1;
                let mut covered: Vec<(u64, u64)> = Vec::new();
                while j < events.len() {
                    if let PmEvent::Mark { label, .. } = &events[j] {
                        if label == "tx_commit" || label == "tx_abort" {
                            break;
                        }
                        if let Some(range) = parse_range(label, "tx_add:")
                            .or_else(|| parse_range(label, "tx_alloc:"))
                            .or_else(|| parse_range(label, "heap_hdr:"))
                        {
                            covered.push(range);
                        }
                    }
                    j += 1;
                }
                // Validate the window's heap stores.
                for ev in &events[i..j] {
                    if let PmEvent::Store { seq, off, new, .. } = ev {
                        let len = new.len() as u64;
                        if *off < self.heap_off {
                            continue; // lane/undo/redo metadata
                        }
                        let ok = covered
                            .iter()
                            .any(|&(a, l)| *off >= a && *off + len <= a + l);
                        if !ok {
                            report.unprotected.push(UnprotectedStore {
                                seq: *seq,
                                off: *off,
                                len,
                            });
                        }
                    }
                }
                report.transactions += 1;
                i = j + 1;
                continue;
            }
            i += 1;
        }
        report
    }
}

fn parse_range(label: &str, prefix: &str) -> Option<(u64, u64)> {
    let rest = label.strip_prefix(prefix)?;
    let (off, len) = rest.split_once(':')?;
    Some((off.parse().ok()?, len.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_pm::{Mode, PmPool, PoolConfig};
    use spp_pmdk::{ObjPool, PoolOpts};
    use std::sync::Arc;

    fn tracked_pool() -> (Arc<PmPool>, ObjPool) {
        let pm = Arc::new(PmPool::new(PoolConfig::new(1 << 20).mode(Mode::Tracked)));
        let pool = ObjPool::create(Arc::clone(&pm), PoolOpts::small()).unwrap();
        (pm, pool)
    }

    #[test]
    fn disciplined_tx_is_clean() {
        let (pm, pool) = tracked_pool();
        let obj = pool.zalloc(64).unwrap();
        pm.reset_tracking();
        pool.tx(|tx| -> spp_pmdk::Result<()> {
            tx.write_u64(obj.off, 7)?; // snapshot + write
            let fresh = tx.zalloc(32)?; // covered by tx_alloc
            tx.pool().write_u64(fresh.off, 9)?;
            tx.pool().persist(fresh.off, 8)?;
            Ok(())
        })
        .unwrap();
        let report = TxChecker::new(pool.heap_off()).analyze(&pm.event_log().unwrap());
        assert_eq!(report.transactions, 1);
        assert!(report.is_clean(), "{:?}", report.unprotected);
    }

    #[test]
    fn unsnapshotted_store_is_flagged() {
        let (pm, pool) = tracked_pool();
        let obj = pool.zalloc(64).unwrap();
        pm.reset_tracking();
        pool.tx(|tx| -> spp_pmdk::Result<()> {
            // BUG: raw write to pre-existing data without tx.snapshot.
            tx.pool().write_u64(obj.off, 7)?;
            Ok(())
        })
        .unwrap();
        let report = TxChecker::new(pool.heap_off()).analyze(&pm.event_log().unwrap());
        assert_eq!(report.unprotected.len(), 1);
        assert_eq!(report.unprotected[0].off, obj.off);
    }

    #[test]
    fn stores_outside_transactions_are_not_this_checkers_business() {
        let (pm, pool) = tracked_pool();
        let obj = pool.zalloc(64).unwrap();
        pm.reset_tracking();
        pool.write_u64(obj.off, 1).unwrap(); // no tx: atomic-discipline land
        let report = TxChecker::new(pool.heap_off()).analyze(&pm.event_log().unwrap());
        assert_eq!(report.transactions, 0);
        assert!(report.is_clean());
    }
}
