//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Every binary prints the same rows/series the paper reports; see
//! `EXPERIMENTS.md` at the workspace root for the recorded paper-vs-measured
//! comparison. Each binary accepts `--quick` (tiny sizes for smoke runs)
//! and simple `--key value` overrides.

use std::sync::Arc;
use std::time::Instant;

use spp_core::{PmdkPolicy, SppPolicy, TagConfig};
use spp_pm::{LatencyModel, PmPool, PoolConfig};
use spp_pmdk::{ObjPool, PoolOpts};
use spp_safepm::SafePmPolicy;

/// The three benchmarking variants of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Native PMDK.
    Pmdk,
    /// SafePM shadow memory.
    SafePm,
    /// Safe persistent pointers.
    Spp,
}

impl Variant {
    /// Figure order: baseline first.
    pub const ALL: [Variant; 3] = [Variant::Pmdk, Variant::SafePm, Variant::Spp];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Pmdk => "PMDK",
            Variant::SafePm => "SafePM",
            Variant::Spp => "SPP",
        }
    }
}

/// Create a fresh device + object pool.
pub fn fresh_pool(bytes: u64, lanes: usize) -> Arc<ObjPool> {
    let pm = Arc::new(PmPool::new(PoolConfig::new(bytes).record_stats(false)));
    Arc::new(ObjPool::create(pm, PoolOpts::new().lanes(lanes)).expect("pool create"))
}

/// Create a fresh pool backed by a device with an *overlappable* wall-clock
/// flush wait ([`LatencyModel::device_wait`]) — the substrate for the
/// thread-scaling rows. The wait starts **disabled** so preloading runs at
/// DRAM speed; call `pool.pm().set_latency_enabled(true)` around the timed
/// region.
pub fn fresh_scaling_pool(bytes: u64, lanes: usize, flush_wait_ns: u32) -> Arc<ObjPool> {
    let pm = Arc::new(PmPool::new(
        PoolConfig::new(bytes)
            .record_stats(false)
            .latency(LatencyModel::device_wait(0, flush_wait_ns)),
    ));
    pm.set_latency_enabled(false);
    Arc::new(ObjPool::create(pm, PoolOpts::new().lanes(lanes)).expect("pool create"))
}

/// Create a pool mapped low (for wide-tag configurations like Phoenix's).
pub fn fresh_low_pool(bytes: u64, lanes: usize) -> Arc<ObjPool> {
    let pm = Arc::new(PmPool::new(
        PoolConfig::new(bytes).base(0x10000).record_stats(false),
    ));
    Arc::new(ObjPool::create(pm, PoolOpts::new().lanes(lanes)).expect("pool create"))
}

/// Build the native policy.
pub fn pmdk_policy(pool: Arc<ObjPool>) -> Arc<PmdkPolicy> {
    Arc::new(PmdkPolicy::new(pool))
}

/// Build the SPP policy (26 tag bits unless overridden). A pool mapping
/// that extends past the requested encoding's address range narrows the
/// tag via [`TagConfig::fitting`] instead of failing: large benchmark
/// pools trade maximum object size for reach while keeping the SPP+T
/// generation field (spatial-only configs like Phoenix's are used as
/// given).
pub fn spp_policy(pool: Arc<ObjPool>, cfg: TagConfig) -> Arc<SppPolicy> {
    let end_va = pool.pm().base() + pool.pm().size();
    let cfg = if end_va > cfg.max_va() && cfg.gen_bits() > 0 {
        TagConfig::fitting(end_va).expect("pool beyond any tag encoding")
    } else {
        cfg
    };
    Arc::new(SppPolicy::new(pool, cfg).expect("spp policy"))
}

/// Build the SafePM policy (allocates the shadow).
pub fn safepm_policy(pool: Arc<ObjPool>) -> Arc<SafePmPolicy> {
    Arc::new(SafePmPolicy::create(pool).expect("safepm policy"))
}

/// Touch every page of the device so first-touch page faults of the
/// simulated media do not pollute measurements.
pub fn warm_pool(pool: &Arc<ObjPool>) {
    let size = pool.pm().size();
    let chunk = vec![0u8; 1 << 20];
    let mut off = pool.heap_off();
    while off < size {
        let n = ((size - off) as usize).min(chunk.len());
        // Writing zeros over the (still zero) heap dirties the pages for
        // real — read faults would only map the shared zero page.
        pool.write(off, &chunk[..n]).expect("warm write");
        off += n as u64;
    }
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Slowdown of `t` relative to `baseline` (1.0 = parity).
pub fn slowdown(t: f64, baseline: f64) -> f64 {
    if baseline > 0.0 {
        t / baseline
    } else {
        f64::NAN
    }
}

/// Minimal `--key value` / `--flag` argument scanning.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parse the process arguments.
    pub fn parse() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Whether `--name` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == &format!("--{name}"))
    }

    /// The value after `--name`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let key = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &key)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Uniform pseudo-random keys (pmembench's uniform 8-byte keys).
pub fn uniform_keys(n: u64, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        })
        .collect()
}

/// Print a figure/table header.
pub fn banner(title: &str) {
    println!("==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// A minimal JSON value (the workspace vendors no serde; the benchmark
/// binaries only need to *emit* results, never parse them).
#[derive(Debug, Clone)]
pub enum Json {
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// An unsigned integer (rendered without a fraction).
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Serialise to compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Num(v) if v.is_finite() => out.push_str(&format!("{v}")),
            Json::Num(_) => out.push_str("null"),
            Json::Int(v) => out.push_str(&format!("{v}")),
            Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str((*k).to_string()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parsed JSON value with owned keys — the read-side complement of
/// [`Json`] (whose `Obj` keys are `&'static str`, fine for emitting but
/// useless for parsing). Used by `perf_gate` to read committed result
/// artifacts back without vendoring serde.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are widened to `f64`).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A position-annotated description of the first syntax error.
    pub fn parse(src: &str) -> Result<JsonValue, String> {
        let mut p = JsonParser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Maximum nesting depth [`JsonValue::parse`] accepts; result artifacts
/// are three levels deep, so this only bounds recursion on garbage input.
const JSON_MAX_DEPTH: usize = 64;

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", want as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > JSON_MAX_DEPTH {
            return Err(format!("nesting deeper than {JSON_MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are not paired up — artifacts
                            // never emit astral-plane text.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the source is a &str, so the
                    // sequence is valid — copy it through wholesale.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Self-validation of benchmark result rows, run by every binary before it
/// exits (the `--smoke` CI mode relies on this to turn a silently-broken
/// harness into a red build): there must be at least one row, and each of
/// the named fields must be present in every row, numeric, finite, and
/// strictly positive.
///
/// # Errors
///
/// A description of the first problem found.
pub fn validate_rows(rows: &[Json], positive_fields: &[&str]) -> Result<(), String> {
    if rows.is_empty() {
        return Err("no result rows were produced".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let Json::Obj(fields) = row else {
            return Err(format!("result row {i} is not an object"));
        };
        for want in positive_fields {
            let Some((_, v)) = fields.iter().find(|(k, _)| k == want) else {
                return Err(format!("result row {i}: missing field `{want}`"));
            };
            let num = match v {
                Json::Num(x) => *x,
                Json::Int(x) => *x as f64,
                other => {
                    return Err(format!(
                        "result row {i}: field `{want}` is not numeric: {other:?}"
                    ))
                }
            };
            if !num.is_finite() || num <= 0.0 {
                return Err(format!(
                    "result row {i}: field `{want}` = {num} (must be finite and > 0)"
                ));
            }
        }
    }
    Ok(())
}

/// Self-validation of a thread-scaling series: `ops_per_s[i]` measured at
/// `threads[i]`, with thread counts strictly increasing. The series must be
/// *monotone non-decreasing within tolerance* — each step may dip at most
/// `dip_tolerance` below the running maximum (scheduler noise happens; a
/// collapse does not) — and the final point must reach at least
/// `min_final_speedup` × the first. Run by the scaling benches before they
/// publish a row, so a re-serialized hot path turns the build red rather
/// than silently flattening the figure.
///
/// # Errors
///
/// A description of the first violation found.
pub fn validate_scaling(
    threads: &[usize],
    ops_per_s: &[f64],
    dip_tolerance: f64,
    min_final_speedup: f64,
) -> Result<(), String> {
    if threads.len() != ops_per_s.len() {
        return Err(format!(
            "scaling series shape mismatch: {} thread counts vs {} measurements",
            threads.len(),
            ops_per_s.len()
        ));
    }
    if threads.len() < 2 {
        return Err("scaling series needs at least two points".into());
    }
    if !threads.windows(2).all(|w| w[0] < w[1]) {
        return Err(format!("thread counts must strictly increase: {threads:?}"));
    }
    let mut peak = 0.0f64;
    for (&t, &ops) in threads.iter().zip(ops_per_s) {
        if !ops.is_finite() || ops <= 0.0 {
            return Err(format!("{t} threads: ops/s = {ops} (must be > 0)"));
        }
        if ops < peak * (1.0 - dip_tolerance) {
            return Err(format!(
                "scaling collapse: {t} threads ran at {ops:.0} ops/s, below \
                 {:.0} (peak {peak:.0} − {:.0}% tolerance)",
                peak * (1.0 - dip_tolerance),
                dip_tolerance * 100.0
            ));
        }
        peak = peak.max(ops);
    }
    let speedup = ops_per_s[ops_per_s.len() - 1] / ops_per_s[0];
    if speedup < min_final_speedup {
        return Err(format!(
            "{}-thread throughput is only {speedup:.2}x the {}-thread run \
             (need >= {min_final_speedup:.2}x)",
            threads[threads.len() - 1],
            threads[0]
        ));
    }
    Ok(())
}

/// Write a plain-text artifact (e.g. a contention-profile dump) to
/// `results/<name>` and return the path.
pub fn write_text_artifact(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results/");
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write results artifact");
    path
}

/// Write a benchmark result document to `results/BENCH_<name>.json`
/// (creating `results/` under the current directory) and return the path.
pub fn write_results(name: &str, doc: &Json) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results/");
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, doc.render() + "\n").expect("write results json");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f64) -> Json {
        Json::Obj(vec![("x", Json::Num(v)), ("n", Json::Int(3))])
    }

    #[test]
    fn json_parse_roundtrips_emitted_documents() {
        let doc = Json::Obj(vec![
            ("name", Json::Str("x \"quoted\" \\ line\n".into())),
            ("n", Json::Int(42)),
            ("v", Json::Num(-1.25e3)),
            ("ok", Json::Bool(true)),
            ("bad", Json::Num(f64::NAN)), // renders as null
            (
                "rows",
                Json::Arr(vec![
                    Json::Obj(vec![("t", Json::Num(0.5))]),
                    Json::Arr(vec![]),
                ]),
            ),
        ]);
        let v = JsonValue::parse(&doc.render()).unwrap();
        assert_eq!(
            v.get("name").unwrap().as_str().unwrap(),
            "x \"quoted\" \\ line\n"
        );
        assert_eq!(v.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("v").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("bad"), Some(&JsonValue::Null));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("t").unwrap().as_f64(), Some(0.5));
        assert_eq!(rows[1], JsonValue::Arr(vec![]));
    }

    #[test]
    fn json_parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} trailing",
            "[01",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Deep nesting is bounded, not a stack overflow.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(JsonValue::parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn validate_rows_accepts_sane_rows() {
        assert!(validate_rows(&[row(1.5), row(0.1)], &["x", "n"]).is_ok());
    }

    #[test]
    fn validate_rows_rejects_garbage() {
        assert!(validate_rows(&[], &["x"])
            .unwrap_err()
            .contains("no result rows"));
        assert!(validate_rows(&[row(0.0)], &["x"])
            .unwrap_err()
            .contains("must be finite"));
        assert!(validate_rows(&[row(f64::NAN)], &["x"])
            .unwrap_err()
            .contains("must be finite"));
        assert!(validate_rows(&[row(-2.0)], &["x"])
            .unwrap_err()
            .contains("must be finite"));
        assert!(validate_rows(&[row(1.0)], &["missing"])
            .unwrap_err()
            .contains("missing field"));
        assert!(validate_rows(&[Json::Num(1.0)], &["x"])
            .unwrap_err()
            .contains("not an object"));
    }

    #[test]
    fn validate_scaling_accepts_monotone_and_noisy_monotone() {
        let t = [1, 2, 4, 8];
        assert!(validate_scaling(&t, &[100.0, 190.0, 360.0, 650.0], 0.05, 2.0).is_ok());
        // A small dip within tolerance is fine.
        assert!(validate_scaling(&t, &[100.0, 98.0, 180.0, 340.0], 0.05, 2.0).is_ok());
    }

    #[test]
    fn validate_scaling_rejects_collapse_and_weak_speedup() {
        let t = [1, 2, 4, 8];
        assert!(
            validate_scaling(&t, &[100.0, 60.0, 200.0, 400.0], 0.05, 2.0)
                .unwrap_err()
                .contains("scaling collapse")
        );
        assert!(
            validate_scaling(&t, &[100.0, 110.0, 120.0, 130.0], 0.05, 2.0)
                .unwrap_err()
                .contains("need >= 2.00x")
        );
        assert!(validate_scaling(&[1], &[100.0], 0.05, 2.0)
            .unwrap_err()
            .contains("at least two points"));
        assert!(validate_scaling(&t, &[100.0], 0.05, 2.0)
            .unwrap_err()
            .contains("shape mismatch"));
        assert!(
            validate_scaling(&[1, 1, 2, 4], &[1.0, 2.0, 3.0, 4.0], 0.05, 1.0)
                .unwrap_err()
                .contains("strictly increase")
        );
        assert!(
            validate_scaling(&t, &[100.0, f64::NAN, 1.0, 1.0], 0.05, 1.0)
                .unwrap_err()
                .contains("must be > 0")
        );
    }
}
