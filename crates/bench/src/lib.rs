//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Every binary prints the same rows/series the paper reports; see
//! `EXPERIMENTS.md` at the workspace root for the recorded paper-vs-measured
//! comparison. Each binary accepts `--quick` (tiny sizes for smoke runs)
//! and simple `--key value` overrides.

use std::sync::Arc;
use std::time::Instant;

use spp_core::{PmdkPolicy, SppPolicy, TagConfig};
use spp_pm::{LatencyModel, PmPool, PoolConfig};
use spp_pmdk::{ObjPool, PoolOpts};
use spp_safepm::SafePmPolicy;

/// The three benchmarking variants of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Native PMDK.
    Pmdk,
    /// SafePM shadow memory.
    SafePm,
    /// Safe persistent pointers.
    Spp,
}

impl Variant {
    /// Figure order: baseline first.
    pub const ALL: [Variant; 3] = [Variant::Pmdk, Variant::SafePm, Variant::Spp];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Pmdk => "PMDK",
            Variant::SafePm => "SafePM",
            Variant::Spp => "SPP",
        }
    }
}

/// Create a fresh device + object pool.
pub fn fresh_pool(bytes: u64, lanes: usize) -> Arc<ObjPool> {
    let pm = Arc::new(PmPool::new(PoolConfig::new(bytes).record_stats(false)));
    Arc::new(ObjPool::create(pm, PoolOpts::new().lanes(lanes)).expect("pool create"))
}

/// Create a fresh pool backed by a device with an *overlappable* wall-clock
/// flush wait ([`LatencyModel::device_wait`]) — the substrate for the
/// thread-scaling rows. The wait starts **disabled** so preloading runs at
/// DRAM speed; call `pool.pm().set_latency_enabled(true)` around the timed
/// region.
pub fn fresh_scaling_pool(bytes: u64, lanes: usize, flush_wait_ns: u32) -> Arc<ObjPool> {
    let pm = Arc::new(PmPool::new(
        PoolConfig::new(bytes)
            .record_stats(false)
            .latency(LatencyModel::device_wait(0, flush_wait_ns)),
    ));
    pm.set_latency_enabled(false);
    Arc::new(ObjPool::create(pm, PoolOpts::new().lanes(lanes)).expect("pool create"))
}

/// Create a pool mapped low (for wide-tag configurations like Phoenix's).
pub fn fresh_low_pool(bytes: u64, lanes: usize) -> Arc<ObjPool> {
    let pm = Arc::new(PmPool::new(
        PoolConfig::new(bytes).base(0x10000).record_stats(false),
    ));
    Arc::new(ObjPool::create(pm, PoolOpts::new().lanes(lanes)).expect("pool create"))
}

/// Build the native policy.
pub fn pmdk_policy(pool: Arc<ObjPool>) -> Arc<PmdkPolicy> {
    Arc::new(PmdkPolicy::new(pool))
}

/// Build the SPP policy (26 tag bits unless overridden).
pub fn spp_policy(pool: Arc<ObjPool>, cfg: TagConfig) -> Arc<SppPolicy> {
    Arc::new(SppPolicy::new(pool, cfg).expect("spp policy"))
}

/// Build the SafePM policy (allocates the shadow).
pub fn safepm_policy(pool: Arc<ObjPool>) -> Arc<SafePmPolicy> {
    Arc::new(SafePmPolicy::create(pool).expect("safepm policy"))
}

/// Touch every page of the device so first-touch page faults of the
/// simulated media do not pollute measurements.
pub fn warm_pool(pool: &Arc<ObjPool>) {
    let size = pool.pm().size();
    let chunk = vec![0u8; 1 << 20];
    let mut off = pool.heap_off();
    while off < size {
        let n = ((size - off) as usize).min(chunk.len());
        // Writing zeros over the (still zero) heap dirties the pages for
        // real — read faults would only map the shared zero page.
        pool.write(off, &chunk[..n]).expect("warm write");
        off += n as u64;
    }
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Slowdown of `t` relative to `baseline` (1.0 = parity).
pub fn slowdown(t: f64, baseline: f64) -> f64 {
    if baseline > 0.0 {
        t / baseline
    } else {
        f64::NAN
    }
}

/// Minimal `--key value` / `--flag` argument scanning.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parse the process arguments.
    pub fn parse() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Whether `--name` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == &format!("--{name}"))
    }

    /// The value after `--name`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let key = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &key)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Uniform pseudo-random keys (pmembench's uniform 8-byte keys).
pub fn uniform_keys(n: u64, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        })
        .collect()
}

/// Print a figure/table header.
pub fn banner(title: &str) {
    println!("==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// A minimal JSON value (the workspace vendors no serde; the benchmark
/// binaries only need to *emit* results, never parse them).
#[derive(Debug, Clone)]
pub enum Json {
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// An unsigned integer (rendered without a fraction).
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Serialise to compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Num(v) if v.is_finite() => out.push_str(&format!("{v}")),
            Json::Num(_) => out.push_str("null"),
            Json::Int(v) => out.push_str(&format!("{v}")),
            Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str((*k).to_string()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Self-validation of benchmark result rows, run by every binary before it
/// exits (the `--smoke` CI mode relies on this to turn a silently-broken
/// harness into a red build): there must be at least one row, and each of
/// the named fields must be present in every row, numeric, finite, and
/// strictly positive.
///
/// # Errors
///
/// A description of the first problem found.
pub fn validate_rows(rows: &[Json], positive_fields: &[&str]) -> Result<(), String> {
    if rows.is_empty() {
        return Err("no result rows were produced".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let Json::Obj(fields) = row else {
            return Err(format!("result row {i} is not an object"));
        };
        for want in positive_fields {
            let Some((_, v)) = fields.iter().find(|(k, _)| k == want) else {
                return Err(format!("result row {i}: missing field `{want}`"));
            };
            let num = match v {
                Json::Num(x) => *x,
                Json::Int(x) => *x as f64,
                other => {
                    return Err(format!(
                        "result row {i}: field `{want}` is not numeric: {other:?}"
                    ))
                }
            };
            if !num.is_finite() || num <= 0.0 {
                return Err(format!(
                    "result row {i}: field `{want}` = {num} (must be finite and > 0)"
                ));
            }
        }
    }
    Ok(())
}

/// Self-validation of a thread-scaling series: `ops_per_s[i]` measured at
/// `threads[i]`, with thread counts strictly increasing. The series must be
/// *monotone non-decreasing within tolerance* — each step may dip at most
/// `dip_tolerance` below the running maximum (scheduler noise happens; a
/// collapse does not) — and the final point must reach at least
/// `min_final_speedup` × the first. Run by the scaling benches before they
/// publish a row, so a re-serialized hot path turns the build red rather
/// than silently flattening the figure.
///
/// # Errors
///
/// A description of the first violation found.
pub fn validate_scaling(
    threads: &[usize],
    ops_per_s: &[f64],
    dip_tolerance: f64,
    min_final_speedup: f64,
) -> Result<(), String> {
    if threads.len() != ops_per_s.len() {
        return Err(format!(
            "scaling series shape mismatch: {} thread counts vs {} measurements",
            threads.len(),
            ops_per_s.len()
        ));
    }
    if threads.len() < 2 {
        return Err("scaling series needs at least two points".into());
    }
    if !threads.windows(2).all(|w| w[0] < w[1]) {
        return Err(format!("thread counts must strictly increase: {threads:?}"));
    }
    let mut peak = 0.0f64;
    for (&t, &ops) in threads.iter().zip(ops_per_s) {
        if !ops.is_finite() || ops <= 0.0 {
            return Err(format!("{t} threads: ops/s = {ops} (must be > 0)"));
        }
        if ops < peak * (1.0 - dip_tolerance) {
            return Err(format!(
                "scaling collapse: {t} threads ran at {ops:.0} ops/s, below \
                 {:.0} (peak {peak:.0} − {:.0}% tolerance)",
                peak * (1.0 - dip_tolerance),
                dip_tolerance * 100.0
            ));
        }
        peak = peak.max(ops);
    }
    let speedup = ops_per_s[ops_per_s.len() - 1] / ops_per_s[0];
    if speedup < min_final_speedup {
        return Err(format!(
            "{}-thread throughput is only {speedup:.2}x the {}-thread run \
             (need >= {min_final_speedup:.2}x)",
            threads[threads.len() - 1],
            threads[0]
        ));
    }
    Ok(())
}

/// Write a plain-text artifact (e.g. a contention-profile dump) to
/// `results/<name>` and return the path.
pub fn write_text_artifact(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results/");
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write results artifact");
    path
}

/// Write a benchmark result document to `results/BENCH_<name>.json`
/// (creating `results/` under the current directory) and return the path.
pub fn write_results(name: &str, doc: &Json) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results/");
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, doc.render() + "\n").expect("write results json");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f64) -> Json {
        Json::Obj(vec![("x", Json::Num(v)), ("n", Json::Int(3))])
    }

    #[test]
    fn validate_rows_accepts_sane_rows() {
        assert!(validate_rows(&[row(1.5), row(0.1)], &["x", "n"]).is_ok());
    }

    #[test]
    fn validate_rows_rejects_garbage() {
        assert!(validate_rows(&[], &["x"])
            .unwrap_err()
            .contains("no result rows"));
        assert!(validate_rows(&[row(0.0)], &["x"])
            .unwrap_err()
            .contains("must be finite"));
        assert!(validate_rows(&[row(f64::NAN)], &["x"])
            .unwrap_err()
            .contains("must be finite"));
        assert!(validate_rows(&[row(-2.0)], &["x"])
            .unwrap_err()
            .contains("must be finite"));
        assert!(validate_rows(&[row(1.0)], &["missing"])
            .unwrap_err()
            .contains("missing field"));
        assert!(validate_rows(&[Json::Num(1.0)], &["x"])
            .unwrap_err()
            .contains("not an object"));
    }

    #[test]
    fn validate_scaling_accepts_monotone_and_noisy_monotone() {
        let t = [1, 2, 4, 8];
        assert!(validate_scaling(&t, &[100.0, 190.0, 360.0, 650.0], 0.05, 2.0).is_ok());
        // A small dip within tolerance is fine.
        assert!(validate_scaling(&t, &[100.0, 98.0, 180.0, 340.0], 0.05, 2.0).is_ok());
    }

    #[test]
    fn validate_scaling_rejects_collapse_and_weak_speedup() {
        let t = [1, 2, 4, 8];
        assert!(
            validate_scaling(&t, &[100.0, 60.0, 200.0, 400.0], 0.05, 2.0)
                .unwrap_err()
                .contains("scaling collapse")
        );
        assert!(
            validate_scaling(&t, &[100.0, 110.0, 120.0, 130.0], 0.05, 2.0)
                .unwrap_err()
                .contains("need >= 2.00x")
        );
        assert!(validate_scaling(&[1], &[100.0], 0.05, 2.0)
            .unwrap_err()
            .contains("at least two points"));
        assert!(validate_scaling(&t, &[100.0], 0.05, 2.0)
            .unwrap_err()
            .contains("shape mismatch"));
        assert!(
            validate_scaling(&[1, 1, 2, 4], &[1.0, 2.0, 3.0, 4.0], 0.05, 1.0)
                .unwrap_err()
                .contains("strictly increase")
        );
        assert!(
            validate_scaling(&t, &[100.0, f64::NAN, 1.0, 1.0], 0.05, 1.0)
                .unwrap_err()
                .contains("must be > 0")
        );
    }
}
