//! Fig. 5: pmemkv (cmap engine) throughput slowdown vs native PMDK across
//! four db_bench workload mixes and a thread sweep. 16-byte keys,
//! 1024-byte values, store preloaded before measurement.
//!
//! Usage: `fig5_pmemkv [--preload 100000] [--ops 100000] [--threads 1,2,4,8] [--quick]`

use std::sync::Arc;

use spp_bench::{banner, fresh_pool, pmdk_policy, safepm_policy, slowdown, spp_policy, Args, Variant};
use spp_core::{MemoryPolicy, TagConfig};
use spp_kvstore::workload::{preload, run_mix, Mix, WorkloadConfig};
use spp_kvstore::KvStore;

fn throughput<P: MemoryPolicy>(
    policy: Arc<P>,
    cfg: &WorkloadConfig,
    mix: Mix,
    threads: u64,
) -> f64 {
    let kv = Arc::new(KvStore::create(policy, (cfg.preload_keys * 2).max(1024)).expect("kv"));
    preload(&kv, cfg).expect("preload");
    run_mix(&kv, cfg, mix, threads).expect("mix")
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let preload_keys: u64 = args.get("preload", if quick { 2_000 } else { 100_000 });
    let ops: u64 = args.get("ops", if quick { 5_000 } else { 100_000 });
    let threads_csv: String = args.get("threads", "1,2,4,8".to_string());
    let threads: Vec<u64> = threads_csv.split(',').filter_map(|t| t.parse().ok()).collect();
    let pool_bytes: u64 = args.get("pool-mb", if quick { 256u64 } else { 1536 }) << 20;

    banner("Figure 5: pmemkv throughput — slowdown w.r.t. native PMDK");
    println!("preload={preload_keys} ops={ops} value=1024B (single-core host: thread");
    println!("counts time-slice; per-thread-count relative slowdowns remain meaningful)");
    println!();

    let cfg = WorkloadConfig { preload_keys, ops, value_size: 1024, seed: 7 };
    for mix in Mix::all() {
        println!("{}", mix.label());
        for &t in &threads {
            let base = ops as f64
                / throughput(pmdk_policy(fresh_pool(pool_bytes, 16)), &cfg, mix, t);
            let safepm = ops as f64
                / throughput(safepm_policy(fresh_pool(pool_bytes, 16)), &cfg, mix, t);
            let spp = ops as f64
                / throughput(
                    spp_policy(fresh_pool(pool_bytes, 16), TagConfig::default()),
                    &cfg,
                    mix,
                    t,
                );
            println!(
                "  threads={t:<3} PMDK {:>10.0} ops/s   SafePM {:>5.2}x   SPP {:>5.2}x",
                ops as f64 / base,
                slowdown(safepm, base),
                slowdown(spp, base),
            );
        }
        let _ = Variant::ALL; // figure order documented in the lib
    }
    println!();
    println!("(paper: SPP average 18.3% slowdown across mixes; SafePM 84.4%)");
}
