//! Fig. 5: pmemkv (cmap engine) throughput slowdown vs native PMDK across
//! four db_bench workload mixes and a thread sweep. 16-byte keys,
//! 1024-byte values, store preloaded before measurement.
//!
//! Usage: `fig5_pmemkv [--preload 100000] [--ops 100000] [--threads 1,2,4,8]
//!                     [--pool-mb 1536] [--quick] [--smoke]`
//!
//! `--smoke` is the CI mode: a seconds-long run whose numbers are not
//! meaningful, used to prove the harness end-to-end. Every run also writes
//! machine-readable results to `results/BENCH_fig5_pmemkv.json`.

use std::sync::Arc;

use spp_bench::{
    banner, fresh_pool, fresh_scaling_pool, pmdk_policy, safepm_policy, slowdown, spp_policy,
    validate_rows, validate_scaling, write_results, write_text_artifact, Args, Json, Variant,
};
use spp_core::{MemoryPolicy, TagConfig};
use spp_kvstore::workload::{preload, run_mix, Mix, WorkloadConfig};
use spp_kvstore::KvStore;
use spp_pm::contention;

fn throughput<P: MemoryPolicy>(
    policy: Arc<P>,
    cfg: &WorkloadConfig,
    mix: Mix,
    threads: u64,
) -> f64 {
    let kv = Arc::new(KvStore::create(policy, (cfg.preload_keys * 2).max(1024)).expect("kv"));
    preload(&kv, cfg).expect("preload");
    run_mix(&kv, cfg, mix, threads).expect("mix")
}

/// One point of the thread-scaling row: a fresh device-wait pool, preloaded
/// at DRAM speed, then the 50/50 mix timed with latency injection on.
fn scaling_throughput(pool_bytes: u64, flush_wait_ns: u32, cfg: &WorkloadConfig, t: u64) -> f64 {
    let pool = fresh_scaling_pool(pool_bytes, 16, flush_wait_ns);
    let pm = Arc::clone(pool.pm());
    let kv =
        Arc::new(KvStore::create(pmdk_policy(pool), (cfg.preload_keys * 2).max(1024)).expect("kv"));
    preload(&kv, cfg).expect("preload");
    pm.set_latency_enabled(true);
    run_mix(&kv, cfg, Mix::Update5050, t).expect("mix")
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let quick = args.flag("quick") || smoke;
    let preload_keys: u64 = args.get(
        "preload",
        if smoke {
            500
        } else if quick {
            2_000
        } else {
            100_000
        },
    );
    let ops: u64 = args.get(
        "ops",
        if smoke {
            1_000
        } else if quick {
            5_000
        } else {
            100_000
        },
    );
    let threads_csv: String = args.get(
        "threads",
        if smoke {
            "1,2".to_string()
        } else {
            "1,2,4,8".to_string()
        },
    );
    let threads: Vec<u64> = threads_csv
        .split(',')
        .filter_map(|t| t.parse().ok())
        .collect();
    let pool_bytes: u64 = args.get(
        "pool-mb",
        if smoke {
            64u64
        } else if quick {
            256
        } else {
            1536
        },
    ) << 20;

    banner("Figure 5: pmemkv throughput — slowdown w.r.t. native PMDK");
    println!("preload={preload_keys} ops={ops} value=1024B (single-core host: thread");
    println!("counts time-slice; per-thread-count relative slowdowns remain meaningful)");
    println!();

    let cfg = WorkloadConfig {
        preload_keys,
        ops,
        value_size: 1024,
        seed: 7,
    };
    let mut rows = Vec::new();
    for mix in Mix::all() {
        println!("{}", mix.label());
        for &t in &threads {
            let base =
                ops as f64 / throughput(pmdk_policy(fresh_pool(pool_bytes, 16)), &cfg, mix, t);
            let safepm =
                ops as f64 / throughput(safepm_policy(fresh_pool(pool_bytes, 16)), &cfg, mix, t);
            let spp = ops as f64
                / throughput(
                    spp_policy(fresh_pool(pool_bytes, 16), TagConfig::default()),
                    &cfg,
                    mix,
                    t,
                );
            let pmdk_ops = ops as f64 / base;
            let safepm_x = slowdown(safepm, base);
            let spp_x = slowdown(spp, base);
            println!(
                "  threads={t:<3} PMDK {pmdk_ops:>10.0} ops/s   SafePM {safepm_x:>5.2}x   SPP {spp_x:>5.2}x",
            );
            rows.push(Json::Obj(vec![
                ("mix", Json::Str(mix.label().to_string())),
                ("threads", Json::Int(t)),
                ("pmdk_ops_per_s", Json::Num(pmdk_ops)),
                ("safepm_slowdown", Json::Num(safepm_x)),
                ("spp_slowdown", Json::Num(spp_x)),
            ]));
        }
        let _ = Variant::ALL; // figure order documented in the lib
    }
    println!();
    println!("(paper: SPP average 18.3% slowdown across mixes; SafePM 84.4%)");
    println!();

    // ---- Thread-scaling row: 50/50 mix, PMDK policy, device-wait media ----
    //
    // The mix rows above run without latency injection, so on a single-core
    // host their thread counts only time-slice. This row runs on a device
    // whose flushes cost overlappable wall-clock time: N threads overlap
    // their device waits exactly as N cores overlap stalls on real PM, so
    // throughput must climb with the thread count until the workload turns
    // CPU-bound — unless a lock is held across the device path, which is
    // precisely what the validation below would catch.
    let s_threads: Vec<u64> = vec![1, 2, 4, 8];
    let s_ops: u64 = args.get("scaling-ops", if smoke { 1_200 } else { 16_000 });
    let s_preload: u64 = args.get("scaling-preload", if smoke { 200 } else { 2_000 });
    let flush_wait_ns: u32 = args.get("flush-wait-ns", 15_000);
    println!("Scaling: 50/50 mix, PMDK, device-wait media (flush wait {flush_wait_ns}ns)");
    let s_cfg = WorkloadConfig {
        preload_keys: s_preload,
        ops: s_ops,
        value_size: 1024,
        seed: 11,
    };
    contention::reset_all();
    let mut s_ops_per_s = Vec::new();
    for &t in &s_threads {
        let tput = scaling_throughput(pool_bytes, flush_wait_ns, &s_cfg, t);
        println!("  threads={t:<3} {tput:>10.0} ops/s");
        s_ops_per_s.push(tput);
    }
    let speedup = s_ops_per_s[s_ops_per_s.len() - 1] / s_ops_per_s[0];
    println!("  8-thread speedup over 1-thread: {speedup:.2}x");
    let dump = contention::dump();
    let dump_path = write_text_artifact("contention_fig5.txt", &dump);
    println!("top contended locks during the sweep:");
    for snap in contention::top_contended(3) {
        println!(
            "  {:<16} {:>8} acq  {:>6.2}% contended  {:>8.2}ms waited",
            snap.name,
            snap.acquisitions,
            snap.contended_fraction() * 100.0,
            snap.wait_ns as f64 / 1e6,
        );
    }
    println!("contention dump written to {}", dump_path.display());
    let s_threads_usize: Vec<usize> = s_threads.iter().map(|&t| t as usize).collect();
    let scaling_validation = validate_scaling(&s_threads_usize, &s_ops_per_s, 0.10, 2.0);

    let validation = validate_rows(
        &rows,
        &["pmdk_ops_per_s", "safepm_slowdown", "spp_slowdown"],
    );
    let doc = Json::Obj(vec![
        ("bench", Json::Str("fig5_pmemkv".to_string())),
        ("smoke", Json::Bool(smoke)),
        (
            "config",
            Json::Obj(vec![
                ("preload", Json::Int(preload_keys)),
                ("ops", Json::Int(ops)),
                ("value_size", Json::Int(1024)),
                ("pool_bytes", Json::Int(pool_bytes)),
                (
                    "threads",
                    Json::Arr(threads.iter().map(|&t| Json::Int(t)).collect()),
                ),
            ]),
        ),
        ("results", Json::Arr(rows)),
        (
            "scaling",
            Json::Obj(vec![
                ("mix", Json::Str(Mix::Update5050.label().to_string())),
                ("policy", Json::Str("pmdk".to_string())),
                ("flush_wait_ns", Json::Int(u64::from(flush_wait_ns))),
                ("ops", Json::Int(s_ops)),
                (
                    "threads",
                    Json::Arr(s_threads.iter().map(|&t| Json::Int(t)).collect()),
                ),
                (
                    "ops_per_s",
                    Json::Arr(s_ops_per_s.iter().map(|&v| Json::Num(v)).collect()),
                ),
                ("speedup_8_over_1", Json::Num(speedup)),
                ("monotone_ok", Json::Bool(scaling_validation.is_ok())),
            ]),
        ),
    ]);
    let path = write_results("fig5_pmemkv", &doc);
    println!("results written to {}", path.display());
    if let Err(e) = validation {
        eprintln!("fig5_pmemkv: self-validation FAILED: {e}");
        std::process::exit(1);
    }
    if let Err(e) = scaling_validation {
        eprintln!("fig5_pmemkv: scaling self-validation FAILED: {e}");
        std::process::exit(1);
    }
    println!("self-validation passed");
}
