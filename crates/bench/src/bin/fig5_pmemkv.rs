//! Fig. 5: pmemkv (cmap engine) throughput slowdown vs native PMDK across
//! four db_bench workload mixes and a thread sweep. 16-byte keys,
//! 1024-byte values, store preloaded before measurement.
//!
//! Usage: `fig5_pmemkv [--preload 100000] [--ops 100000] [--threads 1,2,4,8]
//!                     [--pool-mb 1536] [--quick] [--smoke]`
//!
//! `--smoke` is the CI mode: a seconds-long run whose numbers are not
//! meaningful, used to prove the harness end-to-end. Every run also writes
//! machine-readable results to `results/BENCH_fig5_pmemkv.json`.

use std::sync::Arc;

use spp_bench::{
    banner, fresh_pool, pmdk_policy, safepm_policy, slowdown, spp_policy, validate_rows,
    write_results, Args, Json, Variant,
};
use spp_core::{MemoryPolicy, TagConfig};
use spp_kvstore::workload::{preload, run_mix, Mix, WorkloadConfig};
use spp_kvstore::KvStore;

fn throughput<P: MemoryPolicy>(
    policy: Arc<P>,
    cfg: &WorkloadConfig,
    mix: Mix,
    threads: u64,
) -> f64 {
    let kv = Arc::new(KvStore::create(policy, (cfg.preload_keys * 2).max(1024)).expect("kv"));
    preload(&kv, cfg).expect("preload");
    run_mix(&kv, cfg, mix, threads).expect("mix")
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let quick = args.flag("quick") || smoke;
    let preload_keys: u64 = args.get(
        "preload",
        if smoke {
            500
        } else if quick {
            2_000
        } else {
            100_000
        },
    );
    let ops: u64 = args.get(
        "ops",
        if smoke {
            1_000
        } else if quick {
            5_000
        } else {
            100_000
        },
    );
    let threads_csv: String = args.get(
        "threads",
        if smoke {
            "1,2".to_string()
        } else {
            "1,2,4,8".to_string()
        },
    );
    let threads: Vec<u64> = threads_csv
        .split(',')
        .filter_map(|t| t.parse().ok())
        .collect();
    let pool_bytes: u64 = args.get(
        "pool-mb",
        if smoke {
            64u64
        } else if quick {
            256
        } else {
            1536
        },
    ) << 20;

    banner("Figure 5: pmemkv throughput — slowdown w.r.t. native PMDK");
    println!("preload={preload_keys} ops={ops} value=1024B (single-core host: thread");
    println!("counts time-slice; per-thread-count relative slowdowns remain meaningful)");
    println!();

    let cfg = WorkloadConfig {
        preload_keys,
        ops,
        value_size: 1024,
        seed: 7,
    };
    let mut rows = Vec::new();
    for mix in Mix::all() {
        println!("{}", mix.label());
        for &t in &threads {
            let base =
                ops as f64 / throughput(pmdk_policy(fresh_pool(pool_bytes, 16)), &cfg, mix, t);
            let safepm =
                ops as f64 / throughput(safepm_policy(fresh_pool(pool_bytes, 16)), &cfg, mix, t);
            let spp = ops as f64
                / throughput(
                    spp_policy(fresh_pool(pool_bytes, 16), TagConfig::default()),
                    &cfg,
                    mix,
                    t,
                );
            let pmdk_ops = ops as f64 / base;
            let safepm_x = slowdown(safepm, base);
            let spp_x = slowdown(spp, base);
            println!(
                "  threads={t:<3} PMDK {pmdk_ops:>10.0} ops/s   SafePM {safepm_x:>5.2}x   SPP {spp_x:>5.2}x",
            );
            rows.push(Json::Obj(vec![
                ("mix", Json::Str(mix.label().to_string())),
                ("threads", Json::Int(t)),
                ("pmdk_ops_per_s", Json::Num(pmdk_ops)),
                ("safepm_slowdown", Json::Num(safepm_x)),
                ("spp_slowdown", Json::Num(spp_x)),
            ]));
        }
        let _ = Variant::ALL; // figure order documented in the lib
    }
    println!();
    println!("(paper: SPP average 18.3% slowdown across mixes; SafePM 84.4%)");

    let validation = validate_rows(
        &rows,
        &["pmdk_ops_per_s", "safepm_slowdown", "spp_slowdown"],
    );
    let doc = Json::Obj(vec![
        ("bench", Json::Str("fig5_pmemkv".to_string())),
        ("smoke", Json::Bool(smoke)),
        (
            "config",
            Json::Obj(vec![
                ("preload", Json::Int(preload_keys)),
                ("ops", Json::Int(ops)),
                ("value_size", Json::Int(1024)),
                ("pool_bytes", Json::Int(pool_bytes)),
                (
                    "threads",
                    Json::Arr(threads.iter().map(|&t| Json::Int(t)).collect()),
                ),
            ]),
        ),
        ("results", Json::Arr(rows)),
    ]);
    let path = write_results("fig5_pmemkv", &doc);
    println!("results written to {}", path.display());
    if let Err(e) = validation {
        eprintln!("fig5_pmemkv: self-validation FAILED: {e}");
        std::process::exit(1);
    }
    println!("self-validation passed");
}
