//! Table IV: RIPE buffer-overflow attack outcomes under each protection
//! mechanism.
//!
//! Usage: `table4_ripe`

use std::sync::Arc;

use spp_bench::banner;
use spp_core::{PmdkPolicy, SppPolicy, TagConfig};
use spp_pm::{PmPool, PoolConfig};
use spp_pmdk::{ObjPool, PoolOpts};
use spp_ripe::{evaluate_variant, generate_suite, MemcheckPolicy, TableRow};
use spp_safepm::SafePmPolicy;

fn fresh_pool() -> Arc<ObjPool> {
    let pm = Arc::new(PmPool::new(PoolConfig::new(1 << 22)));
    Arc::new(ObjPool::create(pm, PoolOpts::small()).expect("pool"))
}

fn main() {
    banner("Table IV: RIPE attacks using different protection mechanisms");
    let suite = generate_suite();
    println!("attack forms: {}", suite.len());
    println!();

    let rows: Vec<TableRow> = vec![
        // The volatile-heap run uses the same simulated heap without
        // persistence semantics; like the paper, its counts match the PM
        // pool heap (the attacks do not depend on durability).
        evaluate_variant("Volatile heap", &suite, || {
            Ok(PmdkPolicy::new(fresh_pool()))
        })
        .expect("volatile"),
        evaluate_variant("PM pool heap", &suite, || Ok(PmdkPolicy::new(fresh_pool()))).expect("pm"),
        evaluate_variant("SafePM", &suite, || SafePmPolicy::create(fresh_pool())).expect("safepm"),
        evaluate_variant("SPP", &suite, || {
            SppPolicy::new(fresh_pool(), TagConfig::default())
        })
        .expect("spp"),
        evaluate_variant("memcheck", &suite, || Ok(MemcheckPolicy::new(fresh_pool())))
            .expect("memcheck"),
    ];

    println!(
        "{:<15} {:>11} {:>10}",
        "RIPE variant", "Successful", "Prevented"
    );
    for r in &rows {
        println!("{:<15} {:>11} {:>10}", r.variant, r.successful, r.prevented);
    }
    println!();
    println!("(paper: Volatile 83/140, PM pool 83/140, SafePM 6/217, SPP 4/219,");
    println!(" memcheck 20/203)");
}
