//! Fig. 7: slowdown of SPP for PM management operations (atomic and
//! transactional alloc / free / realloc) across object sizes.
//!
//! Usage: `fig7_pm_ops [--ops 10000] [--quick] [--smoke]`
//!
//! `--smoke` is the CI mode: a seconds-long run whose numbers are not
//! meaningful, used to prove the harness end-to-end. Every run also writes
//! machine-readable results to `results/BENCH_fig7_pm_ops.json`.

use std::sync::Arc;

use spp_bench::{
    banner, fresh_pool, fresh_scaling_pool, pmdk_policy, slowdown, spp_policy, timed,
    validate_rows, validate_scaling, warm_pool, write_results, write_text_artifact, Args, Json,
};
use spp_core::{MemoryPolicy, TagConfig};
use spp_pm::contention;
use spp_pmdk::PmemOid;

const SIZES: [(u64, &str); 5] = [
    (64, "64 B"),
    (256, "256 B"),
    (1024, "1 KB"),
    (4096, "4 KB"),
    (16384, "16 KB"),
];

struct OpSet {
    atomic_alloc: f64,
    atomic_free: f64,
    atomic_realloc: f64,
    tx_alloc: f64,
    tx_free: f64,
    tx_realloc: f64,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

fn run_ops<P: MemoryPolicy>(p: &Arc<P>, size: u64, ops: u64) -> OpSet {
    // Home object for oid destinations.
    let home = p.zalloc(64).expect("home");
    let hp = p.direct(home);

    let mut oids: Vec<PmemOid> = Vec::with_capacity(ops as usize);
    let (_, atomic_alloc) = timed(|| {
        for _ in 0..ops {
            oids.push(p.alloc_into_ptr(hp, size).expect("alloc"));
        }
    });
    let (_, atomic_realloc) = timed(|| {
        for oid in oids.iter_mut() {
            *oid = p.realloc_from_ptr(hp, *oid, size + 64).expect("realloc");
        }
    });
    let (_, atomic_free) = timed(|| {
        for oid in oids.drain(..) {
            p.free_from_ptr(hp, oid).expect("free");
        }
    });

    let pool = Arc::clone(p.pool());
    let mut tx_oids: Vec<PmemOid> = Vec::with_capacity(ops as usize);
    let (_, tx_alloc) = timed(|| {
        for _ in 0..ops {
            let oid = pool
                .tx(|tx| -> spp_core::Result<_> { p.tx_alloc(tx, size, false) })
                .expect("tx alloc");
            tx_oids.push(oid);
        }
    });
    // Transactional "realloc": alloc new + free old in one transaction.
    let (_, tx_realloc) = timed(|| {
        for oid in tx_oids.iter_mut() {
            *oid = pool
                .tx(|tx| -> spp_core::Result<_> {
                    let new = p.tx_alloc(tx, size + 64, false)?;
                    p.tx_free(tx, *oid)?;
                    Ok(new)
                })
                .expect("tx realloc");
        }
    });
    let (_, tx_free) = timed(|| {
        for oid in tx_oids.drain(..) {
            pool.tx(|tx| -> spp_core::Result<_> { p.tx_free(tx, oid) })
                .expect("tx free");
        }
    });

    OpSet {
        atomic_alloc,
        atomic_free,
        atomic_realloc,
        tx_alloc,
        tx_free,
        tx_realloc,
    }
}

/// One point of the thread-scaling row: `pairs` transactional alloc+free
/// pairs split across `threads` workers on a device-wait pool. Returns PM
/// management operations per second (two per pair). This storms the lane
/// subsystem: every transaction acquires a lane, so lane affinity and the
/// rotation fallback are what keep N threads from serializing.
fn scaling_storm(flush_wait_ns: u32, size: u64, pairs: u64, threads: u64) -> f64 {
    let pool = fresh_scaling_pool(64 << 20, 16, flush_wait_ns);
    let pm = Arc::clone(pool.pm());
    let p = pmdk_policy(pool);
    pm.set_latency_enabled(true);
    let per = pairs / threads;
    let (_, secs) = timed(|| {
        std::thread::scope(|s| {
            for _ in 0..threads {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    let pool = Arc::clone(p.pool());
                    for _ in 0..per {
                        let oid = pool
                            .tx(|tx| -> spp_core::Result<_> { p.tx_alloc(tx, size, false) })
                            .expect("tx alloc");
                        pool.tx(|tx| -> spp_core::Result<_> { p.tx_free(tx, oid) })
                            .expect("tx free");
                    }
                });
            }
        });
    });
    (per * threads * 2) as f64 / secs
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let quick = args.flag("quick") || smoke;
    let reps = if smoke { 2 } else { 5 };
    let ops: u64 = args.get(
        "ops",
        if smoke {
            200
        } else if quick {
            1_000
        } else {
            10_000
        },
    );
    // Enough heap for ops live objects of the largest class plus the
    // non-coalescing residue of the realloc phase (old 16 KiB-class blocks
    // cannot serve the grown requests).
    let pool_bytes: u64 = (ops * 50 * 1024).max(if smoke { 64 << 20 } else { 256 << 20 });

    banner("Figure 7: PM management operations — SPP slowdown w.r.t. PMDK");
    println!("ops={ops} per operation type");
    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "size", "at.alloc", "at.free", "at.realloc", "tx.alloc", "tx.free", "tx.realloc"
    );
    let mut rows = Vec::new();
    for (size, label) in SIZES {
        let pool_a = fresh_pool(pool_bytes, 4);
        warm_pool(&pool_a);
        let pool_b = fresh_pool(pool_bytes, 4);
        warm_pool(&pool_b);
        // Alternate the variants rep by rep (frequency drift and allocator
        // warm-up hit both symmetrically); per-field medians.
        let pmdk = pmdk_policy(pool_a);
        let spp_p = spp_policy(pool_b, TagConfig::default());
        let mut base_sets = Vec::with_capacity(reps);
        let mut spp_sets = Vec::with_capacity(reps);
        for _ in 0..reps {
            base_sets.push(run_ops(&pmdk, size, ops));
            spp_sets.push(run_ops(&spp_p, size, ops));
        }
        let pick = |sets: &[OpSet], f: fn(&OpSet) -> f64| median(sets.iter().map(f).collect());
        let base = OpSet {
            atomic_alloc: pick(&base_sets, |s| s.atomic_alloc),
            atomic_free: pick(&base_sets, |s| s.atomic_free),
            atomic_realloc: pick(&base_sets, |s| s.atomic_realloc),
            tx_alloc: pick(&base_sets, |s| s.tx_alloc),
            tx_free: pick(&base_sets, |s| s.tx_free),
            tx_realloc: pick(&base_sets, |s| s.tx_realloc),
        };
        let spp = OpSet {
            atomic_alloc: pick(&spp_sets, |s| s.atomic_alloc),
            atomic_free: pick(&spp_sets, |s| s.atomic_free),
            atomic_realloc: pick(&spp_sets, |s| s.atomic_realloc),
            tx_alloc: pick(&spp_sets, |s| s.tx_alloc),
            tx_free: pick(&spp_sets, |s| s.tx_free),
            tx_realloc: pick(&spp_sets, |s| s.tx_realloc),
        };
        let at_alloc = slowdown(spp.atomic_alloc, base.atomic_alloc);
        let at_free = slowdown(spp.atomic_free, base.atomic_free);
        let at_realloc = slowdown(spp.atomic_realloc, base.atomic_realloc);
        let txa = slowdown(spp.tx_alloc, base.tx_alloc);
        let txf = slowdown(spp.tx_free, base.tx_free);
        let txr = slowdown(spp.tx_realloc, base.tx_realloc);
        println!(
            "{label:<8} {at_alloc:>11.2}x {at_free:>11.2}x {at_realloc:>11.2}x \
             {txa:>11.2}x {txf:>11.2}x {txr:>11.2}x",
        );
        rows.push(Json::Obj(vec![
            ("size", Json::Int(size)),
            ("atomic_alloc_slowdown", Json::Num(at_alloc)),
            ("atomic_free_slowdown", Json::Num(at_free)),
            ("atomic_realloc_slowdown", Json::Num(at_realloc)),
            ("tx_alloc_slowdown", Json::Num(txa)),
            ("tx_free_slowdown", Json::Num(txf)),
            ("tx_realloc_slowdown", Json::Num(txr)),
        ]));
    }
    println!();
    println!("(paper: 1-8% slowdown for most operations, 7-17% for atomic free)");
    println!();

    // ---- Thread-scaling row: tx alloc/free storm on device-wait media ----
    let s_threads: Vec<u64> = vec![1, 2, 4, 8];
    let s_pairs: u64 = args.get("scaling-pairs", if smoke { 240 } else { 4_000 });
    let flush_wait_ns: u32 = args.get("flush-wait-ns", 15_000);
    println!(
        "Scaling: tx alloc/free storm, PMDK, device-wait media (flush wait {flush_wait_ns}ns)"
    );
    contention::reset_all();
    let mut s_ops_per_s = Vec::new();
    for &t in &s_threads {
        let tput = scaling_storm(flush_wait_ns, 256, s_pairs, t);
        println!("  threads={t:<3} {tput:>10.0} ops/s");
        s_ops_per_s.push(tput);
    }
    let speedup = s_ops_per_s[s_ops_per_s.len() - 1] / s_ops_per_s[0];
    println!("  8-thread speedup over 1-thread: {speedup:.2}x");
    let dump_path = write_text_artifact("contention_fig7.txt", &contention::dump());
    println!("contention dump written to {}", dump_path.display());
    let s_threads_usize: Vec<usize> = s_threads.iter().map(|&t| t as usize).collect();
    let scaling_validation = validate_scaling(&s_threads_usize, &s_ops_per_s, 0.10, 2.0);

    let validation = validate_rows(
        &rows,
        &[
            "size",
            "atomic_alloc_slowdown",
            "atomic_free_slowdown",
            "atomic_realloc_slowdown",
            "tx_alloc_slowdown",
            "tx_free_slowdown",
            "tx_realloc_slowdown",
        ],
    );
    let doc = Json::Obj(vec![
        ("bench", Json::Str("fig7_pm_ops".to_string())),
        ("smoke", Json::Bool(smoke)),
        (
            "config",
            Json::Obj(vec![
                ("ops", Json::Int(ops)),
                ("reps", Json::Int(reps as u64)),
                ("pool_bytes", Json::Int(pool_bytes)),
            ]),
        ),
        ("results", Json::Arr(rows)),
        (
            "scaling",
            Json::Obj(vec![
                ("workload", Json::Str("tx_alloc_free_storm".to_string())),
                ("policy", Json::Str("pmdk".to_string())),
                ("flush_wait_ns", Json::Int(u64::from(flush_wait_ns))),
                ("pairs", Json::Int(s_pairs)),
                (
                    "threads",
                    Json::Arr(s_threads.iter().map(|&t| Json::Int(t)).collect()),
                ),
                (
                    "ops_per_s",
                    Json::Arr(s_ops_per_s.iter().map(|&v| Json::Num(v)).collect()),
                ),
                ("speedup_8_over_1", Json::Num(speedup)),
                ("monotone_ok", Json::Bool(scaling_validation.is_ok())),
            ]),
        ),
    ]);
    let path = write_results("fig7_pm_ops", &doc);
    println!("results written to {}", path.display());
    if let Err(e) = validation {
        eprintln!("fig7_pm_ops: self-validation FAILED: {e}");
        std::process::exit(1);
    }
    if let Err(e) = scaling_validation {
        eprintln!("fig7_pm_ops: scaling self-validation FAILED: {e}");
        std::process::exit(1);
    }
    println!("self-validation passed");
}
