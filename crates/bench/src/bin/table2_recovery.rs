//! Table II: recovery time (ms) after a crash inside a transaction that
//! snapshotted N oids — PMDK's 16-byte oids vs SPP's 24-byte oids (larger
//! undo logs to restore).
//!
//! Usage: `table2_recovery [--max 100000] [--runs 10] [--quick]`

use std::sync::Arc;
use std::time::Instant;

use spp_bench::{banner, Args};
use spp_pm::{CrashSpec, Mode, PmPool, PoolConfig};
use spp_pmdk::{ObjPool, OidKind, PmemOid, PoolOpts};

/// Snapshot `n` oids of `kind` in one transaction, crash mid-transaction,
/// and measure recovery (pool open) time in milliseconds.
fn recovery_ms(n: u64, kind: OidKind, runs: u64) -> f64 {
    let oid_size = kind.on_media_size();
    let data_bytes = n * oid_size;
    // Undo entries: 24-byte header + 8-padded data each; generous headroom.
    let undo = n * (24 + oid_size.next_multiple_of(8) + 16) + 8192;
    let pool_bytes = (data_bytes * 4).max(8 << 20);
    let mut total_ms = 0.0;
    for _ in 0..runs {
        let pm = Arc::new(PmPool::new(
            PoolConfig::new(pool_bytes)
                .mode(Mode::Tracked)
                .record_stats(false),
        ));
        let pool = ObjPool::create(
            Arc::clone(&pm),
            PoolOpts::new().lanes(1).undo_capacity(undo),
        )
        .expect("pool");
        // One array object holding n serialized oids.
        let arr = pool.zalloc(data_bytes).expect("array");
        for i in 0..n {
            let oid = PmemOid::new(pool.uuid(), 64 + i, 8);
            pool.oid_write(arr.off + i * oid_size, oid, kind)
                .expect("seed oid");
        }
        pool.persist(arr.off, data_bytes as usize).expect("persist");
        pm.reset_tracking();
        // Snapshot every oid inside a transaction, then crash before commit.
        let img = std::cell::RefCell::new(None);
        let _ = pool.tx(|tx| -> spp_pmdk::Result<()> {
            for i in 0..n {
                tx.snapshot(arr.off + i * oid_size, oid_size)?;
            }
            *img.borrow_mut() = Some(pm.crash_image(CrashSpec::KeepAll));
            Err(spp_pmdk::PmdkError::TxAborted("crash point".into()))
        });
        let img = img.into_inner().expect("crash image");
        let pm2 = Arc::new(PmPool::from_image(
            img,
            PoolConfig::new(0).record_stats(false),
        ));
        let start = Instant::now();
        let reopened = ObjPool::open(pm2).expect("recovery");
        total_ms += start.elapsed().as_secs_f64() * 1e3;
        drop(reopened);
    }
    total_ms / runs as f64
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let max: u64 = args.get("max", if quick { 10_000 } else { 100_000 });
    let runs: u64 = args.get("runs", if quick { 3 } else { 10 });

    banner("Table II: recovery time (ms) vs snapshotted PMEMoids");
    println!(
        "{:<10} {:>12} {:>12} {:>9}",
        "oids", "PMDK (ms)", "SPP (ms)", "ratio"
    );
    let mut n = 100u64;
    while n <= max {
        let pmdk = recovery_ms(n, OidKind::Pmdk, runs);
        let spp = recovery_ms(n, OidKind::Spp, runs);
        println!("{n:<10} {pmdk:>12.2} {spp:>12.2} {:>8.3}x", spp / pmdk);
        n *= 10;
    }
    println!();
    println!("(paper: 17.62→119.77 ms PMDK vs 17.77→120.00 ms SPP for 100..1M oids —");
    println!(" SPP adds only the restoration of the extra size fields)");
}
