//! Ablation study for the design choices DESIGN.md calls out: what do
//! pointer tracking and bound-check preemption/hoisting buy? Runs the
//! mini-IR pipeline at each optimization level and reports hook counts and
//! wall time, plus a tag-width sweep on the raw encoding.
//!
//! Usage: `ablation [--iters 200000] [--quick]`

use std::sync::Arc;
use std::time::Instant;

use spp_bench::{banner, Args};
use spp_core::TagConfig;
use spp_instrument::{hoist_loop_checks, spp_transform, Function, Inst, Operand, Stmt, Vm, VmMode};
use spp_pm::{PmPool, PoolConfig};
use spp_pmdk::{ObjPool, PoolOpts};

fn walk_program(iters: u64) -> Function {
    let mut f = Function::new();
    let p = f.reg();
    let x = f.reg();
    let i = f.reg();
    // One volatile pointer in the mix so pointer tracking has something to
    // prune.
    let vol = f.reg();
    f.push(Inst::AllocPm {
        dst: p,
        size: Operand::Const((iters + 1) * 8),
    });
    f.push(Inst::AllocVol {
        dst: vol,
        size: Operand::Const(64),
    });
    f.push(Inst::Store {
        ptr: vol,
        value: Operand::Const(1),
        size: 8,
    });
    f.body.push(Stmt::Loop {
        counter: i,
        count: Operand::Const(iters),
        body: vec![
            Stmt::Inst(Inst::Gep {
                dst: p,
                base: p,
                offset: Operand::Const(8),
            }),
            Stmt::Inst(Inst::Load {
                dst: x,
                ptr: p,
                size: 8,
            }),
        ],
    });
    f
}

fn run(f: &Function, pool_bytes: u64) -> (f64, u64, u64, u64) {
    let pm = Arc::new(PmPool::new(PoolConfig::new(pool_bytes).record_stats(false)));
    let pool = Arc::new(ObjPool::create(pm, PoolOpts::small()).expect("pool"));
    let mut vm = Vm::new(pool, TagConfig::default(), VmMode::Spp);
    let start = Instant::now();
    vm.run(f).expect("program traps unexpectedly");
    let secs = start.elapsed().as_secs_f64();
    let s = vm.runtime().stats();
    (secs, s.update_tag(), s.check_bound(), s.pm_bit_tests())
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let iters: u64 = args.get("iters", if quick { 20_000 } else { 200_000 });
    let pool_bytes = (iters + 2) * 8 + (1 << 20);

    banner("Ablation: pointer tracking & bound-check preemption (mini-IR pipeline)");
    println!("pointer-walk loop, {iters} iterations\n");
    println!(
        "{:<34} {:>9} {:>12} {:>12} {:>12}",
        "configuration", "time (s)", "updatetags", "checkbounds", "pm-bit tests"
    );

    let f = walk_program(iters);

    let (t_no, _) = spp_transform(&f, false);
    let (secs, ut, cb, bits) = run(&t_no, pool_bytes);
    println!(
        "{:<34} {secs:>9.3} {ut:>12} {cb:>12} {bits:>12}",
        "instrument all (no tracking)"
    );

    let (t_track, _) = spp_transform(&f, true);
    let (secs, ut, cb, bits) = run(&t_track, pool_bytes);
    println!(
        "{:<34} {secs:>9.3} {ut:>12} {cb:>12} {bits:>12}",
        "+ pointer tracking (_direct)"
    );

    let (mut t_opt, _) = spp_transform(&f, true);
    let hoisted = hoist_loop_checks(&mut t_opt);
    let (secs, ut, cb, bits) = run(&t_opt, pool_bytes);
    println!(
        "{:<34} {secs:>9.3} {ut:>12} {cb:>12} {bits:>12}",
        format!("+ hoisting ({} loop)", hoisted.loops_hoisted)
    );

    println!();
    banner("Ablation: tag-width sweep (encoding limits, §IV-G)");
    println!(
        "{:<10} {:>16} {:>18}",
        "tag bits", "max object", "max pool VA range"
    );
    for bits in [18u32, 22, 26, 31, 36] {
        let cfg = TagConfig::new(bits).expect("cfg");
        println!(
            "{:<10} {:>13} KiB {:>15} MiB",
            bits,
            cfg.max_object_size() >> 10,
            cfg.max_va() >> 20
        );
    }
}
