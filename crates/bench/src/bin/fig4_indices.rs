//! Fig. 4: throughput slowdown of SPP and SafePM vs native PMDK for the
//! persistent indices (ctree, rbtree, rtree, hashmap) under insert / get /
//! remove workloads with uniform 8-byte keys.
//!
//! Usage: `fig4_indices [--n 100000] [--rtree-n 20000] [--quick]`

use std::sync::Arc;

use spp_bench::{
    banner, fresh_pool, pmdk_policy, safepm_policy, slowdown, spp_policy, timed, uniform_keys,
    Args, Variant,
};
use spp_core::{MemoryPolicy, TagConfig};
use spp_indices::{CTree, HashMapTx, Index, RTree, RbTree};

struct OpTimes {
    insert: f64,
    get: f64,
    remove: f64,
}

fn run_index<P: MemoryPolicy, I: Index<P>>(policy: Arc<P>, keys: &[u64]) -> OpTimes {
    let idx = I::create(policy).expect("create index");
    let (_, insert) = timed(|| {
        for &k in keys {
            idx.insert(k, k ^ 0xFF).expect("insert");
        }
    });
    let (_, get) = timed(|| {
        let mut hits = 0u64;
        for &k in keys {
            if idx.get(k).expect("get").is_some() {
                hits += 1;
            }
        }
        assert!(hits as usize >= keys.len() * 9 / 10);
    });
    let (_, remove) = timed(|| {
        for &k in keys {
            idx.remove(k).expect("remove");
        }
    });
    OpTimes {
        insert,
        get,
        remove,
    }
}

fn bench_structure(
    name: &str,
    n: u64,
    pool_bytes: u64,
    runner: impl Fn(Variant, &[u64], u64) -> OpTimes,
) {
    let keys = uniform_keys(n, 0xF164);
    let base = runner(Variant::Pmdk, &keys, pool_bytes);
    let safepm = runner(Variant::SafePm, &keys, pool_bytes);
    let spp = runner(Variant::Spp, &keys, pool_bytes);
    for (op, b, s, p) in [
        ("insert", base.insert, safepm.insert, spp.insert),
        ("get", base.get, safepm.get, spp.get),
        ("remove", base.remove, safepm.remove, spp.remove),
    ] {
        println!(
            "{name:<10} {op:<7} n={n:<8} PMDK {:>10.0} ops/s   SafePM {:>5.2}x   SPP {:>5.2}x",
            n as f64 / b,
            slowdown(s, b),
            slowdown(p, b),
        );
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n: u64 = args.get("n", if quick { 5_000 } else { 100_000 });
    let rtree_n: u64 = args.get("rtree-n", if quick { 2_000 } else { 20_000 });

    banner("Figure 4: persistent indices — slowdown w.r.t. native PMDK");

    macro_rules! runner_for {
        ($index:ident, $pool:expr) => {
            |variant: Variant, keys: &[u64], pool_bytes: u64| -> OpTimes {
                let pool = fresh_pool(pool_bytes, 4);
                match variant {
                    Variant::Pmdk => run_index::<_, $index<_>>(pmdk_policy(pool), keys),
                    Variant::SafePm => run_index::<_, $index<_>>(safepm_policy(pool), keys),
                    Variant::Spp => {
                        run_index::<_, $index<_>>(spp_policy(pool, TagConfig::default()), keys)
                    }
                }
            }
        };
    }

    bench_structure("ctree", n, 512 << 20, runner_for!(CTree, x));
    bench_structure("rbtree", n, 512 << 20, runner_for!(RbTree, x));
    bench_structure("rtree", rtree_n, 1024 << 20, runner_for!(RTree, x));
    bench_structure("hashmap", n, 512 << 20, runner_for!(HashMapTx, x));
    println!();
    println!("(paper: SPP average slowdown 9.25% insert / 13.75% get / 10.5% remove;");
    println!(" SafePM 101% / 37.75% / 101.75%)");
}
