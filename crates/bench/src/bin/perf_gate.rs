//! `perf_gate`: the CI performance gate over committed result artifacts.
//!
//! ```text
//! perf_gate [--results DIR=results] [--baselines DIR=ci/baselines]
//!           [--tolerance 0.5] [--pipeline-floor 1.5] [--idle-floor 2000]
//!           [--only fig5|fig7|loadgen|idle]
//! ```
//!
//! Reads the four smoke-run artifacts — `BENCH_fig5_pmemkv.json`,
//! `BENCH_fig7_pm_ops.json`, `server_loadgen.json`, and
//! `server_loadgen_idle.json` — and fails the build if performance
//! regressed. Two kinds of check, in order of trust:
//!
//! 1. **Ratio invariants** (machine-independent, always enforced): the
//!    thread-scaling series must stay monotone with `speedup_8_over_1 >=
//!    2.0`, the pipelined server must beat its own round-trip baseline
//!    by `--pipeline-floor`, and the idle-scaling run must have held
//!    `--idle-floor` epoll connections while keeping total OS threads
//!    within `reactors + workers + hot + 8` — threads O(staff), never
//!    O(connections). These compare a run against *itself*, so a
//!    slow CI runner cannot fake a pass or a fail.
//! 2. **Tolerance bands vs committed baselines**: absolute throughputs may
//!    drop at most `--tolerance` (fraction) below the committed smoke
//!    baseline, and slowdown factors may grow at most that much above it.
//!    These catch gradual rot the ratios cannot see, at the cost of runner
//!    noise — hence the wide default band.
//!
//! The CI job proves the gate is not blind by re-running the loadgen with
//! `--throttle-us` (which slows only the pipelined phase) and requiring
//! this binary to exit nonzero on the degraded artifact.

use std::process::ExitCode;

use spp_bench::{Args, JsonValue};

/// Accumulates PASS/FAIL lines; any FAIL turns the exit code red.
struct Gate {
    failures: usize,
    checks: usize,
}

impl Gate {
    fn new() -> Self {
        Gate {
            failures: 0,
            checks: 0,
        }
    }

    fn check(&mut self, name: &str, ok: bool, detail: String) {
        self.checks += 1;
        if ok {
            println!("PASS {name}: {detail}");
        } else {
            self.failures += 1;
            println!("FAIL {name}: {detail}");
        }
    }

    /// A floor check: `got >= floor`.
    fn at_least(&mut self, name: &str, got: f64, floor: f64) {
        self.check(
            name,
            got.is_finite() && got >= floor,
            format!("{got:.3} (need >= {floor:.3})"),
        );
    }

    /// A ceiling check: `got <= cap`.
    fn at_most(&mut self, name: &str, got: f64, cap: f64) {
        self.check(
            name,
            got.is_finite() && got <= cap,
            format!("{got:.3} (need <= {cap:.3})"),
        );
    }
}

/// Load and parse one artifact; a missing or unparseable file is itself a
/// gate failure (a gate that shrugs at absent inputs is blind).
fn load(gate: &mut Gate, dir: &str, name: &str) -> Option<JsonValue> {
    let path = format!("{dir}/{name}");
    match std::fs::read_to_string(&path) {
        Ok(text) => match JsonValue::parse(&text) {
            Ok(v) => Some(v),
            Err(e) => {
                gate.check(&format!("parse {path}"), false, e);
                None
            }
        },
        Err(e) => {
            gate.check(&format!("read {path}"), false, e.to_string());
            None
        }
    }
}

/// Geometric mean of `field` across an array of row objects. `NaN` when
/// the field is absent everywhere — every caller feeds that into a
/// floor/ceiling check, which treats non-finite as FAIL.
fn geomean_field(rows: &[JsonValue], field: &str) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter_map(|r| r.get(field).and_then(JsonValue::as_f64))
        .filter(|v| *v > 0.0)
        .collect();
    if vals.is_empty() {
        return f64::NAN;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

fn num_at(doc: &JsonValue, path: &[&str]) -> f64 {
    let mut v = doc;
    for key in path {
        match v.get(key) {
            Some(inner) => v = inner,
            None => return f64::NAN,
        }
    }
    v.as_f64().unwrap_or(f64::NAN)
}

/// Shared scaling-series invariants (both figure benches publish the same
/// `scaling` object).
fn gate_scaling(gate: &mut Gate, label: &str, doc: &JsonValue) {
    let monotone = num_at(doc, &["scaling", "speedup_8_over_1"]);
    gate.at_least(&format!("{label} scaling.speedup_8_over_1"), monotone, 2.0);
    gate.check(
        &format!("{label} scaling.monotone_ok"),
        doc.get("scaling")
            .and_then(|s| s.get("monotone_ok"))
            .and_then(JsonValue::as_bool)
            == Some(true),
        "thread sweep monotone within tolerance".into(),
    );
}

fn gate_fig5(gate: &mut Gate, doc: &JsonValue, base: &JsonValue, tol: f64) {
    gate_scaling(gate, "fig5", doc);
    let rows = doc
        .get("results")
        .and_then(JsonValue::as_arr)
        .unwrap_or(&[]);
    let brows = base
        .get("results")
        .and_then(JsonValue::as_arr)
        .unwrap_or(&[]);
    gate.at_least(
        "fig5 pmdk_ops_per_s (geomean vs baseline)",
        geomean_field(rows, "pmdk_ops_per_s"),
        geomean_field(brows, "pmdk_ops_per_s") * (1.0 - tol),
    );
    for field in ["spp_slowdown", "safepm_slowdown"] {
        gate.at_most(
            &format!("fig5 {field} (geomean vs baseline)"),
            geomean_field(rows, field),
            geomean_field(brows, field) * (1.0 + tol),
        );
    }
}

/// The six per-row slowdown columns of fig7.
const FIG7_FIELDS: [&str; 6] = [
    "atomic_alloc_slowdown",
    "atomic_free_slowdown",
    "atomic_realloc_slowdown",
    "tx_alloc_slowdown",
    "tx_free_slowdown",
    "tx_realloc_slowdown",
];

fn gate_fig7(gate: &mut Gate, doc: &JsonValue, base: &JsonValue, tol: f64) {
    gate_scaling(gate, "fig7", doc);
    let rows = doc
        .get("results")
        .and_then(JsonValue::as_arr)
        .unwrap_or(&[]);
    let brows = base
        .get("results")
        .and_then(JsonValue::as_arr)
        .unwrap_or(&[]);
    for field in FIG7_FIELDS {
        gate.at_most(
            &format!("fig7 {field} (geomean vs baseline)"),
            geomean_field(rows, field),
            geomean_field(brows, field) * (1.0 + tol),
        );
    }
}

fn gate_loadgen(gate: &mut Gate, doc: &JsonValue, base: &JsonValue, tol: f64, floor: f64) {
    gate.check(
        "loadgen mode",
        doc.get("mode").and_then(JsonValue::as_str) == Some("pipeline"),
        "artifact is a pipeline-comparison run".into(),
    );
    // The load-bearing ratio: pipelining must actually pay. The loadgen
    // skips its own floor under --throttle-us; the gate never does —
    // that asymmetry is exactly what the injected-regression self-test
    // exercises.
    gate.at_least(
        "loadgen pipeline_speedup",
        num_at(doc, &["pipeline_speedup"]),
        floor,
    );
    for field in ["roundtrip_ops_s", "pipelined_ops_s"] {
        gate.at_least(
            &format!("loadgen {field} (vs baseline)"),
            num_at(doc, &[field]),
            num_at(base, &[field]) * (1.0 - tol),
        );
    }
}

/// The idle-scaling artifact's invariants are entirely self-relative —
/// no baseline. The thread budget is recomputed here from the artifact's
/// own config fields rather than trusting the loadgen's verdict: a
/// loadgen that stopped checking would still fail the gate.
fn gate_idle(gate: &mut Gate, doc: &JsonValue, idle_floor: f64) {
    gate.check(
        "idle mode",
        doc.get("mode").and_then(JsonValue::as_str) == Some("idle_scaling"),
        "artifact is an idle-scaling run".into(),
    );
    gate.check(
        "idle io_mode",
        doc.get("io_mode").and_then(JsonValue::as_str) == Some("epoll"),
        "idle fleet was held by the epoll front end".into(),
    );
    gate.at_least("idle idle_conns", num_at(doc, &["idle_conns"]), idle_floor);
    let budget =
        num_at(doc, &["reactors"]) + num_at(doc, &["workers"]) + num_at(doc, &["hot_conns"]) + 8.0;
    gate.at_most(
        "idle os_threads_load (vs reactors+workers+hot+8)",
        num_at(doc, &["os_threads_load"]),
        budget,
    );
    // Liveness: the hot core really measured traffic through the parked
    // fleet (a zero-op run would make the thread sample meaningless).
    gate.at_least("idle hot_ops_s", num_at(doc, &["hot_ops_s"]), 1.0);
}

fn run() -> ExitCode {
    let args = Args::parse();
    let results: String = args.get("results", "results".to_string());
    let baselines: String = args.get("baselines", "ci/baselines".to_string());
    let tol: f64 = args.get("tolerance", 0.5);
    let floor: f64 = args.get("pipeline-floor", 1.5);
    let idle_floor: f64 = args.get("idle-floor", 2000.0);
    let only: String = args.get("only", "all".to_string());
    let want = |name: &str| only == "all" || only == name;

    let mut gate = Gate::new();
    if want("fig5") {
        if let (Some(doc), Some(base)) = (
            load(&mut gate, &results, "BENCH_fig5_pmemkv.json"),
            load(&mut gate, &baselines, "fig5_pmemkv.json"),
        ) {
            gate_fig5(&mut gate, &doc, &base, tol);
        }
    }
    if want("fig7") {
        if let (Some(doc), Some(base)) = (
            load(&mut gate, &results, "BENCH_fig7_pm_ops.json"),
            load(&mut gate, &baselines, "fig7_pm_ops.json"),
        ) {
            gate_fig7(&mut gate, &doc, &base, tol);
        }
    }
    if want("loadgen") {
        if let (Some(doc), Some(base)) = (
            load(&mut gate, &results, "server_loadgen.json"),
            load(&mut gate, &baselines, "server_loadgen.json"),
        ) {
            gate_loadgen(&mut gate, &doc, &base, tol, floor);
        }
    }
    if want("idle") {
        if let Some(doc) = load(&mut gate, &results, "server_loadgen_idle.json") {
            gate_idle(&mut gate, &doc, idle_floor);
        }
    }
    if only != "all" && gate.checks == 0 {
        gate.check(
            "arguments",
            false,
            format!("unknown --only target `{only}`"),
        );
    }

    println!(
        "perf_gate: {} checks, {} failed (tolerance {:.0}%, pipeline floor {floor:.2}x)",
        gate.checks,
        gate.failures,
        tol * 100.0
    );
    if gate.failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig_doc(speedup: f64, monotone: bool, ops: f64, slow: f64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"results":[
                 {{"pmdk_ops_per_s":{ops},"spp_slowdown":{slow},"safepm_slowdown":{slow},
                   "atomic_alloc_slowdown":{slow},"atomic_free_slowdown":{slow},
                   "atomic_realloc_slowdown":{slow},"tx_alloc_slowdown":{slow},
                   "tx_free_slowdown":{slow},"tx_realloc_slowdown":{slow}}}],
               "scaling":{{"speedup_8_over_1":{speedup},"monotone_ok":{monotone}}}}}"#
        ))
        .unwrap()
    }

    fn loadgen_doc(mode: &str, speedup: f64, rt: f64, pl: f64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"mode":"{mode}","pipeline_speedup":{speedup},
               "roundtrip_ops_s":{rt},"pipelined_ops_s":{pl}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn healthy_run_passes_every_check() {
        let mut g = Gate::new();
        let base = fig_doc(6.0, true, 100_000.0, 1.3);
        gate_fig5(&mut g, &fig_doc(5.0, true, 90_000.0, 1.4), &base, 0.5);
        gate_fig7(&mut g, &fig_doc(5.0, true, 90_000.0, 1.4), &base, 0.5);
        gate_loadgen(
            &mut g,
            &loadgen_doc("pipeline", 2.5, 55_000.0, 140_000.0),
            &loadgen_doc("pipeline", 2.4, 60_000.0, 150_000.0),
            0.5,
            1.5,
        );
        assert_eq!(g.failures, 0, "{} checks", g.checks);
    }

    #[test]
    fn collapsed_pipeline_speedup_fails() {
        let mut g = Gate::new();
        let base = loadgen_doc("pipeline", 2.4, 60_000.0, 150_000.0);
        // The throttled self-test shape: pipelined phase crawls, ratio < 1.
        gate_loadgen(
            &mut g,
            &loadgen_doc("pipeline", 0.3, 60_000.0, 18_000.0),
            &base,
            0.5,
            1.5,
        );
        assert!(g.failures >= 2); // speedup floor + pipelined_ops_s band
    }

    #[test]
    fn scaling_regressions_fail() {
        let mut g = Gate::new();
        let base = fig_doc(6.0, true, 100_000.0, 1.3);
        gate_fig5(&mut g, &fig_doc(1.4, true, 90_000.0, 1.4), &base, 0.5);
        assert_eq!(g.failures, 1);
        let mut g = Gate::new();
        gate_fig5(&mut g, &fig_doc(5.0, false, 90_000.0, 1.4), &base, 0.5);
        assert_eq!(g.failures, 1);
    }

    #[test]
    fn tolerance_band_catches_absolute_rot() {
        let mut g = Gate::new();
        let base = fig_doc(6.0, true, 100_000.0, 1.3);
        // Throughput down 60% against a 50% band; slowdowns doubled.
        gate_fig5(&mut g, &fig_doc(5.0, true, 40_000.0, 2.8), &base, 0.5);
        assert_eq!(g.failures, 3);
    }

    fn idle_doc(io: &str, idle: u64, threads: u64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"mode":"idle_scaling","io_mode":"{io}","idle_conns":{idle},
               "hot_conns":2,"reactors":2,"workers":4,
               "os_threads_load":{threads},"hot_ops_s":15000.0}}"#
        ))
        .unwrap()
    }

    #[test]
    fn healthy_idle_run_passes() {
        let mut g = Gate::new();
        // 2000 idle conns held by 9 threads: well under 2+4+2+8.
        gate_idle(&mut g, &idle_doc("epoll", 2000, 9), 2000.0);
        assert_eq!(g.failures, 0, "{} checks", g.checks);
    }

    #[test]
    fn idle_thread_scaling_regression_fails() {
        // Threads grew with connections (the bug the reactor exists to
        // prevent): budget is 2+4+2+8 = 16, artifact reports 1013.
        let mut g = Gate::new();
        gate_idle(&mut g, &idle_doc("epoll", 2000, 1013), 2000.0);
        assert_eq!(g.failures, 1);
        // A fleet smaller than the floor also fails.
        let mut g = Gate::new();
        gate_idle(&mut g, &idle_doc("epoll", 500, 9), 2000.0);
        assert_eq!(g.failures, 1);
        // And a run that quietly fell back to the blocking front end.
        let mut g = Gate::new();
        gate_idle(&mut g, &idle_doc("threads", 2000, 9), 2000.0);
        assert_eq!(g.failures, 1);
    }

    #[test]
    fn idle_gate_fails_closed_on_empty_doc() {
        let mut g = Gate::new();
        gate_idle(&mut g, &JsonValue::parse("{}").unwrap(), 2000.0);
        assert_eq!(g.failures, g.checks);
    }

    #[test]
    fn missing_fields_and_wrong_mode_fail_closed() {
        let mut g = Gate::new();
        let empty = JsonValue::parse("{}").unwrap();
        gate_fig5(&mut g, &empty, &empty, 0.5);
        gate_fig7(&mut g, &empty, &empty, 0.5);
        gate_loadgen(&mut g, &empty, &empty, 0.5, 1.5);
        assert_eq!(g.failures, g.checks, "every check must fail closed");

        let mut g = Gate::new();
        gate_loadgen(
            &mut g,
            &loadgen_doc("fixed", 2.5, 55_000.0, 140_000.0),
            &loadgen_doc("pipeline", 2.4, 60_000.0, 150_000.0),
            0.5,
            1.5,
        );
        assert_eq!(g.failures, 1); // wrong mode
    }
}
