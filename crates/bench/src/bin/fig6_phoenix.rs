//! Fig. 6: Phoenix suite slowdown vs native PMDK, 8 threads, 31 tag bits
//! (large PM input objects force the wide-tag configuration, §VI-B).
//!
//! Usage: `fig6_phoenix [--scale 4] [--threads 8] [--quick]`

use spp_bench::{
    banner, fresh_low_pool, pmdk_policy, safepm_policy, slowdown, spp_policy, timed, Args,
};
use spp_core::TagConfig;
use spp_phoenix::{run, App, PhoenixConfig};

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let scale: u64 = args.get("scale", if quick { 1 } else { 4 });
    let threads: usize = args.get("threads", 8);
    let pool_bytes: u64 = args.get("pool-mb", if quick { 64u64 } else { 256 }) << 20;

    banner("Figure 6: Phoenix benchmark suite — slowdown w.r.t. native PMDK");
    println!("scale={scale} threads={threads} tag_bits=31");
    println!();

    let cfg = PhoenixConfig {
        threads,
        scale,
        seed: 0xF0E1,
    };
    for app in App::ALL {
        let (base_sum, base) = timed(|| {
            run(app, &pmdk_policy(fresh_low_pool(pool_bytes, 8)), &cfg).expect("pmdk run")
        });
        let (safepm_sum, safepm) = timed(|| {
            run(app, &safepm_policy(fresh_low_pool(pool_bytes, 8)), &cfg).expect("safepm run")
        });
        let (spp_sum, spp) = timed(|| {
            run(
                app,
                &spp_policy(fresh_low_pool(pool_bytes, 8), TagConfig::phoenix()),
                &cfg,
            )
            .expect("spp run")
        });
        assert_eq!(base_sum, spp_sum, "{}: checksum mismatch", app.label());
        assert_eq!(base_sum, safepm_sum, "{}: checksum mismatch", app.label());
        println!(
            "{:<18} PMDK {:>7.3}s   SafePM {:>5.2}x   SPP {:>5.2}x",
            app.label(),
            base,
            slowdown(safepm, base),
            slowdown(spp, base),
        );
    }
    println!();
    println!("(paper: SPP 2-23% except kmeans ~180%; SafePM 83-750%)");
}
