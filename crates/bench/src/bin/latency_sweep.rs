//! §VI-B's latency claim: "compared to DRAM memory safety approaches, SPP
//! introduces lower relative overheads since the performance impact of tag
//! updating and cleaning operations in SPP is proportionally lower due to
//! the slower PM access."
//!
//! This sweep runs the same ctree workload against media of increasing
//! simulated latency and reports SPP's relative slowdown at each point —
//! it should shrink as the media slows.
//!
//! Usage: `latency_sweep [--n 20000] [--quick]`

use std::sync::Arc;

use spp_bench::{banner, pmdk_policy, slowdown, spp_policy, timed, uniform_keys, Args};
use spp_core::{MemoryPolicy, TagConfig};
use spp_indices::{CTree, Index};
use spp_pm::{LatencyModel, PmPool, PoolConfig};
use spp_pmdk::{ObjPool, PoolOpts};

fn pool_with_latency(lat: LatencyModel) -> Arc<ObjPool> {
    let pm = Arc::new(PmPool::new(
        PoolConfig::new(256 << 20).latency(lat).record_stats(false),
    ));
    Arc::new(ObjPool::create(pm, PoolOpts::new().lanes(2)).expect("pool"))
}

fn run<P: MemoryPolicy>(policy: Arc<P>, keys: &[u64]) -> f64 {
    let idx = CTree::create(policy).expect("index");
    let (_, secs) = timed(|| {
        for &k in keys {
            idx.insert(k, k).expect("insert");
        }
        for &k in keys {
            idx.get(k).expect("get");
        }
    });
    secs
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n: u64 = args.get("n", if quick { 3_000 } else { 20_000 });
    let keys = uniform_keys(n, 0x1A7);

    banner("Latency sweep: SPP relative overhead vs media speed (§VI-B)");
    println!("ctree insert+get, n={n}\n");
    println!(
        "{:<26} {:>12} {:>10}",
        "media latency model", "PMDK (s)", "SPP"
    );
    let models: [(&str, LatencyModel); 3] = [
        ("DRAM-like (no injection)", LatencyModel::none()),
        ("Optane-like", LatencyModel::optane_like()),
        (
            "slow CXL-like (3x Optane)",
            LatencyModel {
                read_spins: 180,
                write_spins: 60,
                per_line_spins: 90,
                ..LatencyModel::none()
            },
        ),
    ];
    for (label, lat) in models {
        let base = run(pmdk_policy(pool_with_latency(lat)), &keys);
        let spp = run(
            spp_policy(pool_with_latency(lat), TagConfig::default()),
            &keys,
        );
        println!("{label:<26} {base:>12.3} {:>9.2}x", slowdown(spp, base));
    }
    println!();
    println!("(expectation: the SPP column trends toward 1.0x as media slows — the");
    println!(" constant tag arithmetic amortises against costlier accesses)");
}
