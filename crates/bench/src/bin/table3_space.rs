//! Table III: PM space overhead of SPP (durable 24-byte oids) relative to
//! native PMDK for the persistent indices after an insert workload.
//!
//! Usage: `table3_space [--n 100000] [--rtree-n 20000] [--quick]`

use std::sync::Arc;

use spp_bench::{banner, fresh_pool, pmdk_policy, spp_policy, uniform_keys, Args};
use spp_core::{MemoryPolicy, TagConfig};
use spp_indices::{CTree, HashMapTx, Index, RTree, RbTree};

fn live_bytes<P: MemoryPolicy, I: Index<P>>(policy: Arc<P>, keys: &[u64]) -> u64 {
    let before = policy.pool().stats().live_bytes;
    let idx = I::create(Arc::clone(&policy)).expect("create");
    for &k in keys {
        idx.insert(k, k).expect("insert");
    }
    // Exercise the get path too (the paper reports insert and get columns;
    // lookups allocate nothing, so the footprint is identical).
    for &k in keys.iter().take(1000) {
        idx.get(k).expect("get");
    }
    policy.pool().stats().live_bytes - before
}

fn row(name: &str, n: u64, pool_bytes: u64, f: impl Fn(bool, &[u64]) -> u64) {
    let keys = uniform_keys(n, 0x7AB1E3);
    let pmdk = f(false, &keys);
    let spp = f(true, &keys);
    let overhead_mb = (spp.saturating_sub(pmdk)) as f64 / (1 << 20) as f64;
    let pct = (spp as f64 - pmdk as f64) / pmdk as f64 * 100.0;
    println!(
        "{name:<12} n={n:<8} PMDK {:>8.1} MB   SPP {:>8.1} MB   overhead {overhead_mb:>7.1} MB ({pct:>5.1}%)",
        pmdk as f64 / (1 << 20) as f64,
        spp as f64 / (1 << 20) as f64,
    );
    let _ = pool_bytes;
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let n: u64 = args.get("n", if quick { 5_000 } else { 100_000 });
    let rtree_n: u64 = args.get("rtree-n", if quick { 2_000 } else { 20_000 });

    banner("Table III: SPP PM space overhead (durable size field in oids)");

    macro_rules! measure {
        ($index:ident, $pool:expr) => {
            |spp: bool, keys: &[u64]| -> u64 {
                let pool = fresh_pool($pool, 4);
                if spp {
                    live_bytes::<_, $index<_>>(spp_policy(pool, TagConfig::default()), keys)
                } else {
                    live_bytes::<_, $index<_>>(pmdk_policy(pool), keys)
                }
            }
        };
    }

    row("ctree", n, 512 << 20, measure!(CTree, 512 << 20));
    row("rbtree", n, 512 << 20, measure!(RbTree, 512 << 20));
    row("rtree", rtree_n, 1024 << 20, measure!(RTree, 1024 << 20));
    row("hashmap", n, 512 << 20, measure!(HashMapTx, 512 << 20));
    println!();
    println!("(paper: ctree 0%, rbtree 0%, rtree 39.7%, hashmap 0.43% — the overhead is");
    println!(" proportional to the number of oids a structure stores in PM)");
}
