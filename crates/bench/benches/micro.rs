//! Criterion micro-benchmarks: the raw costs behind the paper's figures —
//! tag arithmetic, per-access policy overhead, index operations, and PM
//! management operations.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spp_bench::{fresh_pool, pmdk_policy, safepm_policy, spp_policy, uniform_keys};
use spp_core::{MemoryPolicy, TagConfig};
use spp_indices::{CTree, Index};

/// Pure tag arithmetic: the register-only operations SPP adds to the hot
/// path (no memory involved).
fn bench_tag_ops(c: &mut Criterion) {
    let cfg = TagConfig::default();
    let p = cfg.make_tagged(0x1000, 4096);
    let mut g = c.benchmark_group("tag_ops");
    g.bench_function("make_tagged", |b| {
        b.iter(|| cfg.make_tagged(black_box(0x1000), black_box(4096)))
    });
    g.bench_function("offset", |b| {
        b.iter(|| cfg.offset(black_box(p), black_box(8)))
    });
    g.bench_function("check_bound", |b| {
        b.iter(|| cfg.check_bound(black_box(p), black_box(8)))
    });
    g.bench_function("clean_tag", |b| b.iter(|| cfg.clean_tag(black_box(p))));
    g.finish();
}

/// One 8-byte load through each policy: PMDK (bounds-free), SPP (tag math),
/// SafePM (shadow lookup) — the per-access cost profile behind Fig. 4/5.
fn bench_policy_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_access");
    g.sample_size(30);

    let pmdk = pmdk_policy(fresh_pool(1 << 22, 2));
    let oid = pmdk.zalloc(4096).unwrap();
    let ptr = pmdk.direct(oid);
    g.bench_function("load_u64/PMDK", |b| {
        b.iter(|| pmdk.load_u64(black_box(ptr)).unwrap())
    });

    let spp = spp_policy(fresh_pool(1 << 22, 2), TagConfig::default());
    let oid = spp.zalloc(4096).unwrap();
    let ptr = spp.direct(oid);
    g.bench_function("load_u64/SPP", |b| {
        b.iter(|| spp.load_u64(black_box(ptr)).unwrap())
    });

    let safepm = safepm_policy(fresh_pool(1 << 22, 2));
    let oid = safepm.zalloc(4096).unwrap();
    let ptr = safepm.direct(oid);
    g.bench_function("load_u64/SafePM", |b| {
        b.iter(|| safepm.load_u64(black_box(ptr)).unwrap())
    });
    g.finish();
}

/// ctree insert+get under each variant (a small slice of Fig. 4).
fn bench_ctree(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctree");
    g.sample_size(10);
    let keys = uniform_keys(2000, 0xC3);

    fn insert_get<P: MemoryPolicy>(policy: Arc<P>, keys: &[u64]) {
        let idx = CTree::create(policy).unwrap();
        for &k in keys {
            idx.insert(k, k).unwrap();
        }
        for &k in keys {
            black_box(idx.get(k).unwrap());
        }
    }

    g.bench_with_input(BenchmarkId::new("insert_get", "PMDK"), &keys, |b, keys| {
        b.iter(|| insert_get(pmdk_policy(fresh_pool(64 << 20, 2)), keys))
    });
    g.bench_with_input(BenchmarkId::new("insert_get", "SPP"), &keys, |b, keys| {
        b.iter(|| {
            insert_get(
                spp_policy(fresh_pool(64 << 20, 2), TagConfig::default()),
                keys,
            )
        })
    });
    g.bench_with_input(
        BenchmarkId::new("insert_get", "SafePM"),
        &keys,
        |b, keys| b.iter(|| insert_get(safepm_policy(fresh_pool(64 << 20, 2)), keys)),
    );
    g.finish();
}

/// Atomic alloc/free pairs under PMDK vs SPP (a slice of Fig. 7).
fn bench_pm_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("pm_ops");
    g.sample_size(20);

    let pmdk = pmdk_policy(fresh_pool(64 << 20, 2));
    let home = pmdk.zalloc(64).unwrap();
    let hp = pmdk.direct(home);
    g.bench_function("alloc_free_256B/PMDK", |b| {
        b.iter(|| {
            let oid = pmdk.alloc_into_ptr(black_box(hp), 256).unwrap();
            pmdk.free_from_ptr(hp, oid).unwrap();
        })
    });

    let spp = spp_policy(fresh_pool(64 << 20, 2), TagConfig::default());
    let home = spp.zalloc(64).unwrap();
    let hp = spp.direct(home);
    g.bench_function("alloc_free_256B/SPP", |b| {
        b.iter(|| {
            let oid = spp.alloc_into_ptr(black_box(hp), 256).unwrap();
            spp.free_from_ptr(hp, oid).unwrap();
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tag_ops,
    bench_policy_access,
    bench_ctree,
    bench_pm_ops
);
criterion_main!(benches);
