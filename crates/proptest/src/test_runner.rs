//! Deterministic random source for the vendored proptest shim.

/// SplitMix64 generator driving all case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Construct from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Stable seed derived from a test's fully qualified name (FNV-1a), so every
/// property replays the same cases on every run.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
