//! Value-generation strategies for the vendored proptest shim.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object safe: `prop_map` requires `Self: Sized`, so `Box<dyn Strategy>`
/// works for [`Union`] (the engine behind `prop_oneof!`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Box a strategy for storage in a [`Union`].
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always generates a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy transformed by a mapping function (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    variants: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of alternatives.
    pub fn new(variants: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.variants.len());
        self.variants[i].generate(rng)
    }
}

// Integer ranges double as strategies, as in real proptest. Arithmetic is
// done in i128 so signed ranges spanning zero cannot overflow.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy on empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let s = (-100_000i64..100_000).generate(&mut rng);
            assert!((-100_000..100_000).contains(&s));
            let i = (8u32..=40).generate(&mut rng);
            assert!((8..=40).contains(&i));
        }
    }

    #[test]
    fn map_union_tuples_compose() {
        let mut rng = TestRng::seeded(2);
        let s = crate::prop_oneof![
            (0u8..10).prop_map(|v| v as u64),
            Just(99u64),
            (crate::any::<u8>(), 1u8..4).prop_map(|(a, b)| (a as u64) * (b as u64)),
        ];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 10 || v == 99 || v <= 255 * 3);
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = TestRng::seeded(3);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..200 {
            match (0u8..=1).generate(&mut rng) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }
}
