//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace carries a
//! small deterministic random-testing engine exposing exactly the API the
//! test suites use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! [`prop_oneof!`], [`any`], `prop::collection::vec`, [`Just`],
//! [`ProptestConfig::with_cases`], `prop_assert*!` and [`prop_assume!`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * cases are generated from a fixed per-test seed (fully reproducible
//!   runs, no persistence files — existing `.proptest-regressions` files
//!   are ignored);
//! * no shrinking: a failing case panics with the generated inputs
//!   visible in the assertion message rather than a minimised example.

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy, Union};

/// Why a test case did not run to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; generate a fresh one.
    Reject,
}

/// Runner configuration (only the `cases` knob is implemented).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Generation support for [`any`].
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range generator.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            })*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy producing unconstrained values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T` (`any::<u8>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub use arbitrary::any;

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + rng.below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The public prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Reject the current case (a fresh one is generated instead).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Build a strategy choosing uniformly among alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::seeded(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(50).max(5000),
                    "proptest shim: prop_assume rejected nearly every case in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                }
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}
