//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace carries a
//! simple measured-loop harness exposing the API `benches/micro.rs` uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`], [`BenchmarkId`] and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated to ~5 ms per sample,
//! then `sample_size` samples are taken and the median per-iteration time
//! is printed. No statistics beyond min/median/max, no HTML reports.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterised benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into one label.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `iters` times, timing the whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level handle; groups share its configuration.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Apply command-line configuration (accepted, ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Measure a closure that receives `input` by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.name, |b| f(b, input));
        self
    }

    /// Mark the group complete (report output already printed per-bench).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        // Calibrate: grow the iteration count until one sample takes ~5 ms.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut per_iter: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_secs_f64() / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        println!(
            "{id:<40} median {:>12} (min {}, max {}, {} samples x {} iters)",
            fmt_time(median),
            fmt_time(per_iter[0]),
            fmt_time(per_iter[per_iter.len() - 1]),
            self.sample_size,
            iters,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($bench(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        g.bench_with_input(BenchmarkId::new("mul", 7u32), &7u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }
}
