//! Trace replay under one policy: every legal op is checked byte-exact
//! against the reference model, every illegal probe against the
//! guarantee matrix, and every crash-at-boundary op against the torture
//! rig's recovery oracle.

use std::fmt;
use std::sync::{Arc, Mutex};

use spp_core::{MemoryPolicy, PmdkPolicy, SppError, SppPolicy, TagConfig, TypedOid};
use spp_kvstore::KvStore;
use spp_pm::{CrashSpec, Mode, PmPool, PoolConfig};
use spp_pmdk::{ObjPool, PmdkError, PmemOid, PoolOpts, RecoveryFaults};
use spp_ripe::{expected_cell, Cell, Family, MemcheckPolicy, Protection, CHUNK};
use spp_safepm::SafePmPolicy;
use spp_torture::{make_oracle, Oracle as TortureOracle};

use crate::model::{key_bytes, pattern_bytes, CrashExpect, Model, Predicted};
use crate::trace::{Op, NSLOTS, NTYPED};

/// Size of the per-trace simulated PM device.
pub const POOL_BYTES: u64 = 1 << 20;
/// The wilderness probe targets this far below the end of the pool —
/// far above anything a trace allocates, far below the mapping edge.
pub const WILDERNESS_BACKOFF: u64 = 64 * 1024;
/// Buckets of the per-trace KV store.
pub const NBUCKETS: u64 = 16;
/// Recovery-idempotence stride passed to the torture oracle.
const IDEMPOTENCE_STRIDE: u64 = 4;

/// Per-policy replay counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayOutcome {
    /// Ops executed (preconditions met).
    pub ops: u64,
    /// Probes executed (legal and illegal).
    pub probes: u64,
    /// Crash images captured, recovered and verified.
    pub crash_checks: u64,
}

/// One model/policy or matrix divergence: where the replay stopped and
/// why, plus the pool image at that instant for the failure dump.
#[derive(Clone)]
pub struct Divergence {
    /// Index of the diverging op in the trace.
    pub op_index: usize,
    /// Label of the diverging policy.
    pub policy: &'static str,
    /// Human-readable description.
    pub detail: String,
    /// Pool bytes at the moment of divergence.
    pub image: Vec<u8>,
}

impl fmt::Debug for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Divergence")
            .field("op_index", &self.op_index)
            .field("policy", &self.policy)
            .field("detail", &self.detail)
            .field("image_len", &self.image.len())
            .finish()
    }
}

/// What a probe load actually did under the policy.
#[derive(Debug, Clone)]
enum Observed {
    /// The load succeeded and returned this byte.
    Hit(u8),
    /// The policy's mechanism detected the access.
    Caught(&'static str),
    /// The access crashed at the mapping edge.
    Fault,
    /// The allocator refused the operation with an API error — the
    /// expected fate of a double free of a generation-less oid
    /// ([`Cell::Rejected`]). The message is only read through the
    /// derived `Debug` rendering in divergence reports.
    Rejected(#[allow(dead_code)] String),
    /// Any other error (always a divergence).
    Other(String),
}

fn probe_load<P: MemoryPolicy>(policy: &P, ptr: u64) -> Observed {
    let mut b = [0u8; 1];
    match policy.load(ptr, &mut b) {
        Ok(()) => Observed::Hit(b[0]),
        Err(
            SppError::OverflowDetected { mechanism, .. }
            | SppError::TemporalViolation { mechanism, .. },
        ) => Observed::Caught(mechanism),
        Err(SppError::Fault { .. }) => Observed::Fault,
        Err(e) => Observed::Other(format!("{e}")),
    }
}

/// Classify a deliberately-illegal oid-level *operation* (the second free
/// of [`Op::ProbeDoubleFree`]): a silent `Ok` is a hit, a diagnosed
/// violation is a catch, any other allocator error is the API rejecting
/// the operation.
fn probe_free<P: MemoryPolicy>(policy: &P, oid: PmemOid) -> Observed {
    match policy.free(oid) {
        Ok(()) => Observed::Hit(0),
        Err(
            SppError::OverflowDetected { mechanism, .. }
            | SppError::TemporalViolation { mechanism, .. },
        ) => Observed::Caught(mechanism),
        Err(SppError::Fault { .. }) => Observed::Fault,
        Err(e) => Observed::Rejected(format!("{e}")),
    }
}

/// The deliberate CI fault-injections into the expected matrix — a
/// healthy oracle must report the flipped cell as a divergence.
#[derive(Debug, Clone, Copy, Default)]
pub struct BreakSpec {
    /// Flip (adjacent-same-chunk, SafePM) to `Hit` — the spatial
    /// must-stay-red check.
    pub matrix: bool,
    /// Flip (ABA-reuse, SPP) to `Hit` — the temporal must-stay-red check
    /// (the one cell only the generation tag separates).
    pub temporal: bool,
}

/// The expected matrix cell, with any [`BreakSpec`] fault applied.
fn expected(family: Family, protection: Protection, breaks: BreakSpec) -> Cell {
    if breaks.matrix
        && matches!(family, Family::AdjacentSameChunk)
        && matches!(protection, Protection::SafePm)
    {
        return Cell::Hit;
    }
    if breaks.temporal
        && matches!(family, Family::AbaReuse)
        && matches!(protection, Protection::Spp)
    {
        return Cell::Hit;
    }
    expected_cell(family, protection)
}

/// Check an observation against its matrix cell; `Caught` must also name
/// the mechanism this protection uses *for this family* (SPP catches
/// spatial families with the overflow bit but temporal ones with the
/// SPP+T generation tag).
fn conform(
    obs: &Observed,
    want: Cell,
    protection: Protection,
    family: Family,
) -> Result<(), String> {
    match (obs, want) {
        (Observed::Hit(_), Cell::Hit)
        | (Observed::Fault, Cell::Fault)
        | (Observed::Rejected(_), Cell::Rejected) => Ok(()),
        (Observed::Caught(m), Cell::Caught) => {
            if Some(*m) == protection.mechanism_for(family) {
                Ok(())
            } else {
                Err(format!(
                    "caught via mechanism {m:?}, expected {:?}",
                    protection.mechanism_for(family)
                ))
            }
        }
        (Observed::Other(e), _) => Err(format!("probe raised unexpected error: {e}")),
        _ => Err(format!(
            "observed {obs:?}, guarantee matrix expects {want:?}"
        )),
    }
}

fn diverge(pm: &PmPool, policy: &'static str, op_index: usize, detail: String) -> Divergence {
    Divergence {
        op_index,
        policy,
        detail,
        image: pm.contents(),
    }
}

/// Everything the crash-recovery check needs, captured at the crash op.
struct CrashCtx {
    meta: PmemOid,
    expect: CrashExpect,
}

/// Per-policy factory for the recovery oracle: each replay variant
/// reopens the recovered pool under its own policy type.
type CrashFactory<'a> = &'a dyn Fn(CrashCtx) -> TortureOracle;

/// The recovery contract for the crash put: every entry committed before
/// it is readable byte-exact, and the in-flight entry is atomic —
/// either absent or complete.
fn kv_verify<P: MemoryPolicy>(policy: Arc<P>, ctx: &CrashCtx) -> Result<(), String> {
    let kv = KvStore::open(policy, ctx.meta).map_err(|e| format!("kv reopen failed: {e}"))?;
    let mut out = Vec::new();
    for (k, v) in &ctx.expect.snapshot {
        out.clear(); // get() appends to the buffer
        match kv.get(k, &mut out) {
            Ok(true) if out == *v => {}
            Ok(true) => return Err(format!("key {:#04x}: torn value after crash", k[0])),
            Ok(false) => return Err(format!("key {:#04x}: committed entry lost in crash", k[0])),
            Err(e) => return Err(format!("key {:#04x}: GET raised `{e}` after crash", k[0])),
        }
    }
    out.clear();
    match kv.get(&ctx.expect.key, &mut out) {
        Ok(true) if out == ctx.expect.val => Ok(()),
        Ok(true) => Err("in-flight put visible but torn after crash".into()),
        Ok(false) => Ok(()), // all-or-nothing: absent is fine
        Err(e) => Err(format!("in-flight key GET raised `{e}` after crash")),
    }
}

/// Replay `ops` under `protection` on a fresh tracked pool.
///
/// # Errors
///
/// The first [`Divergence`] found: a legal op whose observable result
/// differs from the reference model, or an illegal probe landing in the
/// wrong cell of the guarantee matrix.
pub fn replay(
    ops: &[Op],
    protection: Protection,
    breaks: BreakSpec,
) -> Result<ReplayOutcome, Divergence> {
    let pm = Arc::new(PmPool::new(
        PoolConfig::new(POOL_BYTES)
            .mode(Mode::Tracked)
            .record_stats(false),
    ));
    let pool = Arc::new(
        ObjPool::create(Arc::clone(&pm), PoolOpts::small().lanes(1)).expect("oracle pool create"),
    );
    let faults = RecoveryFaults::default();
    match protection {
        Protection::Pmdk => {
            let policy = Arc::new(PmdkPolicy::new(pool));
            run_policy(ops, &policy, protection, breaks, &|ctx| {
                make_oracle(faults, IDEMPOTENCE_STRIDE, move |rp, _| {
                    kv_verify(Arc::new(PmdkPolicy::new(Arc::clone(&rp.pool))), &ctx)
                })
            })
        }
        Protection::Memcheck => {
            let policy = Arc::new(MemcheckPolicy::new(pool));
            // The chunk map is volatile (valgrind does not survive the
            // process): after a crash the store reopens under the native
            // policy, exactly like a real memcheck-supervised restart.
            run_policy(ops, &policy, protection, breaks, &|ctx| {
                make_oracle(faults, IDEMPOTENCE_STRIDE, move |rp, _| {
                    kv_verify(Arc::new(PmdkPolicy::new(Arc::clone(&rp.pool))), &ctx)
                })
            })
        }
        Protection::SafePm => {
            let policy = Arc::new(SafePmPolicy::create(pool).expect("safepm instrument"));
            run_policy(ops, &policy, protection, breaks, &|ctx| {
                make_oracle(faults, IDEMPOTENCE_STRIDE, move |rp, _| {
                    let p = SafePmPolicy::open(Arc::clone(&rp.pool))
                        .map_err(|e| format!("safepm reopen failed: {e}"))?;
                    kv_verify(Arc::new(p), &ctx)
                })
            })
        }
        Protection::Spp => {
            let policy =
                Arc::new(SppPolicy::new(pool, TagConfig::default()).expect("spp instrument"));
            run_policy(ops, &policy, protection, breaks, &|ctx| {
                make_oracle(faults, IDEMPOTENCE_STRIDE, move |rp, _| {
                    let p = SppPolicy::new(Arc::clone(&rp.pool), TagConfig::default())
                        .map_err(|e| format!("spp reopen failed: {e}"))?;
                    kv_verify(Arc::new(p), &ctx)
                })
            })
        }
    }
}

/// A live slot as the replayer tracks it: the published oid, the
/// policy's (possibly tagged) pointer, and the current size.
#[derive(Clone, Copy)]
struct Slot {
    oid: PmemOid,
    ptr: u64,
    size: u64,
}

#[allow(clippy::too_many_lines)]
fn run_policy<P: MemoryPolicy>(
    ops: &[Op],
    policy: &Arc<P>,
    protection: Protection,
    breaks: BreakSpec,
    mk_crash: CrashFactory<'_>,
) -> Result<ReplayOutcome, Divergence> {
    let label = protection.label();
    let pm = Arc::clone(policy.pool().pm());
    let oid_size = policy.oid_kind().on_media_size();

    // Per-trace fixtures: the slot directory and the KV store. These are
    // legal, identical ops in every replay, so failures here are harness
    // bugs, not divergences.
    let dir = policy
        .zalloc(NSLOTS as u64 * oid_size)
        .expect("slot directory alloc");
    let dir_ptr = policy.direct(dir);
    let kv = KvStore::create(Arc::clone(policy), NBUCKETS).expect("kv create");
    let kv_meta = kv.meta();

    let mut model = Model::new();
    let mut slots: Vec<Option<Slot>> = vec![None; NSLOTS];
    let mut typed: Vec<Option<TypedOid<u64>>> = vec![None; NTYPED];
    let mut out = ReplayOutcome::default();

    for (i, op) in ops.iter().enumerate() {
        let pred = model.apply(op);
        if matches!(pred, Predicted::Skip) {
            continue;
        }
        out.ops += 1;
        let cell_ptr = |slot: usize| policy.gep(dir_ptr, (slot as u64 * oid_size) as i64);
        match *op {
            Op::Alloc {
                slot,
                size,
                zero,
                seed,
            } => {
                let res = if zero {
                    policy.zalloc_into_ptr(cell_ptr(slot), size)
                } else {
                    policy.alloc_into_ptr(cell_ptr(slot), size)
                };
                let oid =
                    res.map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?;
                // Round-trip the published oid through the policy's
                // on-media encoding. Only the locator is durable under
                // every encoding (the 16-byte PMDK oid drops the size;
                // the SPP encoding keeps it for the tag).
                let back = policy.load_oid(cell_ptr(slot)).map_err(|e| {
                    diverge(
                        &pm,
                        label,
                        i,
                        format!("oid readback failed for {op:?}: {e}"),
                    )
                })?;
                if back.off != oid.off || back.pool_uuid != oid.pool_uuid {
                    return Err(diverge(
                        &pm,
                        label,
                        i,
                        format!("oid round-trip mismatch for {op:?}: {oid:?} vs {back:?}"),
                    ));
                }
                let ptr = policy.direct(oid);
                if !zero {
                    policy
                        .store(ptr, &pattern_bytes(seed, size as usize))
                        .map_err(|e| {
                            diverge(&pm, label, i, format!("fill after {op:?} failed: {e}"))
                        })?;
                }
                slots[slot] = Some(Slot { oid, ptr, size });
            }
            Op::Free { slot } => {
                let s = slots[slot].take().expect("model said live");
                policy
                    .free_from_ptr(cell_ptr(slot), s.oid)
                    .map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?;
            }
            Op::Realloc {
                slot,
                new_size,
                seed,
            } => {
                let s = slots[slot].expect("model said live");
                let noid = policy
                    .realloc_from_ptr(cell_ptr(slot), s.oid, new_size)
                    .map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?;
                let ptr = policy.direct(noid);
                if new_size > s.size {
                    // The preserved prefix is min(old, new); the grown
                    // tail is allocator garbage until we overwrite it.
                    policy
                        .store(
                            policy.gep(ptr, s.size as i64),
                            &pattern_bytes(seed, (new_size - s.size) as usize),
                        )
                        .map_err(|e| {
                            diverge(&pm, label, i, format!("tail fill after {op:?} failed: {e}"))
                        })?;
                }
                slots[slot] = Some(Slot {
                    oid: noid,
                    ptr,
                    size: new_size,
                });
            }
            Op::WriteAt {
                slot,
                at,
                len,
                seed,
            } => {
                let s = slots[slot].expect("model said live");
                policy
                    .store(
                        policy.gep(s.ptr, at as i64),
                        &pattern_bytes(seed, len as usize),
                    )
                    .map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?;
            }
            Op::ReadBack { slot } => {
                let Predicted::Bytes(want) = pred else {
                    unreachable!()
                };
                let s = slots[slot].expect("model said live");
                let mut buf = vec![0u8; s.size as usize];
                policy
                    .load(s.ptr, &mut buf)
                    .map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?;
                if buf != want {
                    let first = buf
                        .iter()
                        .zip(&want)
                        .position(|(a, b)| a != b)
                        .unwrap_or(buf.len());
                    return Err(diverge(
                        &pm,
                        label,
                        i,
                        format!("{op:?}: contents diverge from model at byte {first}"),
                    ));
                }
            }
            Op::Memmove {
                slot,
                src,
                dst,
                len,
            } => {
                let s = slots[slot].expect("model said live");
                policy
                    .memmove(
                        policy.gep(s.ptr, dst as i64),
                        policy.gep(s.ptr, src as i64),
                        len,
                    )
                    .map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?;
            }
            Op::TxUpdate {
                slot,
                at,
                len,
                seed,
                abort,
            } => {
                let s = slots[slot].expect("model said live");
                let data = pattern_bytes(seed, len as usize);
                let ptr = policy.gep(s.ptr, at as i64);
                let res: Result<(), SppError> = policy.pool().tx(|tx| {
                    policy.tx_write(tx, ptr, &data)?;
                    if abort {
                        Err(SppError::Pmdk(tx.abort("oracle abort")))
                    } else {
                        Ok(())
                    }
                });
                match (abort, res) {
                    (false, Ok(())) => {}
                    (true, Err(SppError::Pmdk(PmdkError::TxAborted(_)))) => {}
                    (_, r) => {
                        return Err(diverge(
                            &pm,
                            label,
                            i,
                            format!("{op:?}: unexpected transaction outcome {r:?}"),
                        ))
                    }
                }
            }
            Op::TypedPut { cell, value } => match typed[cell] {
                None => {
                    typed[cell] = Some(TypedOid::new(policy.as_ref(), &value).map_err(|e| {
                        diverge(&pm, label, i, format!("legal {op:?} failed: {e}"))
                    })?);
                }
                Some(t) => t
                    .write(policy.as_ref(), &value)
                    .map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?,
            },
            Op::TypedGet { cell } => {
                let Predicted::Value(want) = pred else {
                    unreachable!()
                };
                let got = typed[cell]
                    .expect("model said live")
                    .read(policy.as_ref())
                    .map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?;
                if got != want {
                    return Err(diverge(
                        &pm,
                        label,
                        i,
                        format!("{op:?}: read {got:#x}, model predicts {want:#x}"),
                    ));
                }
            }
            Op::TypedDel { cell } => {
                typed[cell]
                    .take()
                    .expect("model said live")
                    .delete(policy.as_ref())
                    .map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?;
            }
            Op::KvPut { key, len, seed } => {
                kv.put(&key_bytes(key), &pattern_bytes(seed, len as usize))
                    .map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?;
            }
            Op::KvGet { key } => {
                let Predicted::Kv(want) = pred else {
                    unreachable!()
                };
                let mut buf = Vec::new();
                let hit = kv
                    .get(&key_bytes(key), &mut buf)
                    .map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?;
                let ok = match &want {
                    Some(v) => hit && buf == *v,
                    None => !hit,
                };
                if !ok {
                    return Err(diverge(
                        &pm,
                        label,
                        i,
                        format!(
                            "{op:?}: hit={hit}, model predicts {}",
                            if want.is_some() { "hit" } else { "miss" }
                        ),
                    ));
                }
            }
            Op::KvDel { key } => {
                let Predicted::Kv(want) = pred else {
                    unreachable!()
                };
                let removed = kv
                    .remove(&key_bytes(key))
                    .map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?;
                if removed != want.is_some() {
                    return Err(diverge(
                        &pm,
                        label,
                        i,
                        format!("{op:?}: removed={removed}, model disagrees"),
                    ));
                }
            }
            Op::ProbeInBounds { slot } => {
                out.probes += 1;
                let Predicted::Bytes(want) = pred else {
                    unreachable!()
                };
                let s = slots[slot].expect("model said live");
                match probe_load(policy.as_ref(), policy.gep(s.ptr, (s.size - 1) as i64)) {
                    Observed::Hit(b) if b == want[0] => {}
                    obs => {
                        return Err(diverge(
                            &pm,
                            label,
                            i,
                            format!("{op:?}: expected Hit({:#04x}), observed {obs:?}", want[0]),
                        ))
                    }
                }
            }
            Op::ProbeJustPast { slot } => {
                out.probes += 1;
                let s = slots[slot].expect("model said live");
                let base_off = policy
                    .resolve(s.ptr, 1)
                    .map_err(|e| diverge(&pm, label, i, format!("{op:?}: anchor resolve: {e}")))?;
                let obs = probe_load(policy.as_ref(), policy.gep(s.ptr, s.size as i64));
                // Chunk-granular indeterminacy: when the one-past byte is
                // the first byte of the next 4 KiB chunk, memcheck's
                // verdict depends on whether any other live block shares
                // that chunk — skip conformance for that rare alignment.
                let indeterminate = matches!(protection, Protection::Memcheck)
                    && (base_off + s.size).is_multiple_of(CHUNK);
                if !indeterminate {
                    conform(
                        &obs,
                        expected(Family::AdjacentSameChunk, protection, breaks),
                        protection,
                        Family::AdjacentSameChunk,
                    )
                    .map_err(|msg| diverge(&pm, label, i, format!("{op:?}: {msg}")))?;
                }
            }
            Op::ProbeFarLive { from, to } => {
                out.probes += 1;
                let a = slots[from].expect("model said live");
                let b = slots[to].expect("model said live");
                let off_a = policy
                    .resolve(a.ptr, 1)
                    .map_err(|e| diverge(&pm, label, i, format!("{op:?}: anchor resolve: {e}")))?;
                let off_b = policy
                    .resolve(b.ptr, 1)
                    .map_err(|e| diverge(&pm, label, i, format!("{op:?}: victim resolve: {e}")))?;
                let delta = off_b as i64 - off_a as i64;
                let obs = probe_load(policy.as_ref(), policy.gep(a.ptr, delta));
                // A backward jump is an *underflow*: the distance tag
                // only counts toward the upper bound, so SPP misses it
                // like everyone else (§IV-G limitation).
                let want = if matches!(protection, Protection::Spp) && delta < 0 {
                    Cell::Hit
                } else {
                    expected(Family::FarJumpLive, protection, breaks)
                };
                conform(&obs, want, protection, Family::FarJumpLive)
                    .map_err(|msg| diverge(&pm, label, i, format!("{op:?}: {msg}")))?;
                if let (Cell::Hit, Observed::Hit(got)) = (want, &obs) {
                    // A silent hit must read the victim's real first byte
                    // — the model knows what it holds.
                    let victim = model.slots[to].as_ref().expect("model said live").bytes[0];
                    if *got != victim {
                        return Err(diverge(
                            &pm,
                            label,
                            i,
                            format!("{op:?}: hit read {got:#04x}, victim holds {victim:#04x}"),
                        ));
                    }
                }
            }
            Op::ProbeWilderness { slot } => {
                out.probes += 1;
                let s = slots[slot].expect("model said live");
                let off = policy
                    .resolve(s.ptr, 1)
                    .map_err(|e| diverge(&pm, label, i, format!("{op:?}: anchor resolve: {e}")))?;
                let target = POOL_BYTES - WILDERNESS_BACKOFF + 8;
                let obs = probe_load(
                    policy.as_ref(),
                    policy.gep(s.ptr, target as i64 - off as i64),
                );
                conform(
                    &obs,
                    expected(Family::WildernessSmash, protection, breaks),
                    protection,
                    Family::WildernessSmash,
                )
                .map_err(|msg| diverge(&pm, label, i, format!("{op:?}: {msg}")))?;
            }
            Op::ProbeBeyond { slot } => {
                out.probes += 1;
                let s = slots[slot].expect("model said live");
                let off = policy
                    .resolve(s.ptr, 1)
                    .map_err(|e| diverge(&pm, label, i, format!("{op:?}: anchor resolve: {e}")))?;
                let target = POOL_BYTES + 4096;
                let obs = probe_load(
                    policy.as_ref(),
                    policy.gep(s.ptr, target as i64 - off as i64),
                );
                conform(
                    &obs,
                    expected(Family::BeyondMapping, protection, breaks),
                    protection,
                    Family::BeyondMapping,
                )
                .map_err(|msg| diverge(&pm, label, i, format!("{op:?}: {msg}")))?;
            }
            Op::ProbeUafStale { slot } => {
                out.probes += 1;
                let Predicted::Bytes(want) = pred else {
                    unreachable!()
                };
                let s = slots[slot].take().expect("model said live");
                policy.free_from_ptr(cell_ptr(slot), s.oid).map_err(|e| {
                    diverge(&pm, label, i, format!("{op:?}: legal free failed: {e}"))
                })?;
                let obs = probe_load(policy.as_ref(), s.ptr);
                // Chunk-granular indeterminacy: whether the freed block's
                // 4 KiB chunk actually dies depends on co-occupancy with
                // the live fixtures (slot directory, KV nodes) — skip
                // memcheck conformance, like the aligned just-past case.
                if !matches!(protection, Protection::Memcheck) {
                    let cell = expected(Family::UafRead, protection, breaks);
                    conform(&obs, cell, protection, Family::UafRead)
                        .map_err(|msg| diverge(&pm, label, i, format!("{op:?}: {msg}")))?;
                    if let (Cell::Hit, Observed::Hit(got)) = (cell, &obs) {
                        // A silent stale read must return the dead
                        // object's real first byte — frees are
                        // header-only, so the model still knows it.
                        if *got != want[0] {
                            return Err(diverge(
                                &pm,
                                label,
                                i,
                                format!(
                                    "{op:?}: stale read {got:#04x}, freed object held {:#04x}",
                                    want[0]
                                ),
                            ));
                        }
                    }
                }
            }
            Op::ProbeDoubleFree { slot } => {
                out.probes += 1;
                let s = slots[slot].take().expect("model said live");
                policy.free_from_ptr(cell_ptr(slot), s.oid).map_err(|e| {
                    diverge(&pm, label, i, format!("{op:?}: legal free failed: {e}"))
                })?;
                let obs = probe_free(policy.as_ref(), s.oid);
                conform(
                    &obs,
                    expected(Family::DoubleFree, protection, breaks),
                    protection,
                    Family::DoubleFree,
                )
                .map_err(|msg| diverge(&pm, label, i, format!("{op:?}: {msg}")))?;
            }
            Op::ProbeAbaStale { slot, seed } => {
                out.probes += 1;
                let Predicted::Bytes(want) = pred else {
                    unreachable!()
                };
                let s = slots[slot].take().expect("model said live");
                policy.free_from_ptr(cell_ptr(slot), s.oid).map_err(|e| {
                    diverge(&pm, label, i, format!("{op:?}: legal free failed: {e}"))
                })?;
                let noid = policy
                    .alloc_into_ptr(cell_ptr(slot), s.size)
                    .map_err(|e| diverge(&pm, label, i, format!("{op:?}: realloc failed: {e}")))?;
                let nptr = policy.direct(noid);
                policy
                    .store(nptr, &pattern_bytes(seed, s.size as usize))
                    .map_err(|e| diverge(&pm, label, i, format!("{op:?}: fill failed: {e}")))?;
                slots[slot] = Some(Slot {
                    oid: noid,
                    ptr: nptr,
                    size: s.size,
                });
                // LIFO reuse hands the same-class allocation the block
                // just freed. Near generation saturation the dead block
                // is quarantined instead and the new object lands
                // elsewhere — the stale pointer then dangles at a dead
                // block whose fate is co-occupancy dependent, so the
                // probe is only classified when reuse actually happened.
                if noid.off == s.oid.off {
                    let obs = probe_load(policy.as_ref(), s.ptr);
                    let cell = expected(Family::AbaReuse, protection, breaks);
                    conform(&obs, cell, protection, Family::AbaReuse)
                        .map_err(|msg| diverge(&pm, label, i, format!("{op:?}: {msg}")))?;
                    if let (Cell::Hit, Observed::Hit(got)) = (cell, &obs) {
                        // A silent hit reads the *new* owner's first byte.
                        if *got != want[0] {
                            return Err(diverge(
                                &pm,
                                label,
                                i,
                                format!(
                                    "{op:?}: stale read {got:#04x}, new owner holds {:#04x}",
                                    want[0]
                                ),
                            ));
                        }
                    }
                }
            }
            Op::ProbeReallocStale { slot } => {
                out.probes += 1;
                let Predicted::Bytes(want) = pred else {
                    unreachable!()
                };
                let s = slots[slot].take().expect("model said live");
                let noid = policy
                    .realloc_from_ptr(cell_ptr(slot), s.oid, s.size)
                    .map_err(|e| diverge(&pm, label, i, format!("{op:?}: realloc failed: {e}")))?;
                slots[slot] = Some(Slot {
                    oid: noid,
                    ptr: policy.direct(noid),
                    size: s.size,
                });
                // A same-size realloc resizes in place under the shared
                // allocator (still bumping the generation); SafePM always
                // moves (that is *how* it catches this family). When a
                // non-SafePM variant moved anyway (generation
                // saturation), memcheck's verdict depends on whether the
                // old chunk died — skip that rare case.
                let moved = noid.off != s.oid.off;
                if !(matches!(protection, Protection::Memcheck) && moved) {
                    let obs = probe_load(policy.as_ref(), s.ptr);
                    let cell = expected(Family::ReallocStale, protection, breaks);
                    conform(&obs, cell, protection, Family::ReallocStale)
                        .map_err(|msg| diverge(&pm, label, i, format!("{op:?}: {msg}")))?;
                    if let (Cell::Hit, Observed::Hit(got)) = (cell, &obs) {
                        // In place and header-only: the stale pointer
                        // still reads the preserved first byte.
                        if *got != want[0] {
                            return Err(diverge(
                                &pm,
                                label,
                                i,
                                format!(
                                    "{op:?}: stale read {got:#04x}, object holds {:#04x}",
                                    want[0]
                                ),
                            ));
                        }
                    }
                }
            }
            Op::CrashKvPut {
                key,
                len,
                seed,
                boundary,
            } => {
                let Predicted::Crash(expect) = pred else {
                    unreachable!()
                };
                let captured: Arc<Mutex<Option<spp_pm::CrashImage>>> = Arc::new(Mutex::new(None));
                {
                    let captured = Arc::clone(&captured);
                    let mut count = 0u64;
                    pm.set_boundary_tap(Box::new(move |pool, _| {
                        count += 1;
                        if count == boundary {
                            *captured.lock().unwrap() =
                                Some(pool.crash_image(CrashSpec::DropUnpersisted));
                        }
                    }));
                }
                let res = kv.put(&key_bytes(key), &pattern_bytes(seed, len as usize));
                let _ = pm.clear_boundary_tap();
                res.map_err(|e| diverge(&pm, label, i, format!("legal {op:?} failed: {e}")))?;
                let taken = captured.lock().unwrap().take();
                if let Some(img) = taken {
                    let oracle = mk_crash(CrashCtx {
                        meta: kv_meta,
                        expect,
                    });
                    oracle(&img).map_err(|msg| {
                        diverge(&pm, label, i, format!("{op:?}: crash oracle: {msg}"))
                    })?;
                    out.crash_checks += 1;
                }
            }
        }
    }
    Ok(out)
}
