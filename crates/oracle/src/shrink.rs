//! Greedy 1-minimal trace shrinking, the torture shrinker's approach
//! lifted from store-sets to op sequences: try removing each op in turn
//! and keep the removal whenever the trace still diverges. Every op left
//! in the final trace is then necessary — removing it (alone) makes the
//! divergence disappear.

use spp_ripe::Protection;

use crate::replay::{replay, BreakSpec, Divergence};
use crate::trace::Op;

/// Cap on shrink replays, so a pathological trace cannot stall the run
/// (each replay is a full four-fixture pool build).
const SHRINK_CAP: usize = 512;

/// Shrink `ops` to a 1-minimal subsequence that still produces a
/// divergence under `protection`, starting from the divergence `first`
/// the full trace produced.
pub fn shrink(
    ops: &[Op],
    protection: Protection,
    breaks: BreakSpec,
    first: Divergence,
) -> (Vec<Op>, Divergence) {
    let mut kept: Vec<Op> = ops.to_vec();
    let mut fail = first;
    let mut i = 0;
    let mut budget = SHRINK_CAP;
    while i < kept.len() && budget > 0 {
        budget -= 1;
        let mut candidate = kept.clone();
        candidate.remove(i);
        match replay(&candidate, protection, breaks) {
            Err(d) => {
                // Still diverges without the op: drop it for good. The
                // model skips any later op this orphans, so the candidate
                // stays well-formed.
                kept = candidate;
                fail = d;
            }
            Ok(_) => i += 1,
        }
    }
    (kept, fail)
}
