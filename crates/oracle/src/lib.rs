//! `spp-oracle` — the differential oracle harness.
//!
//! A seeded generator emits randomized traces of allocator, pointer,
//! transaction, typed-object, KV and crash-at-boundary ops
//! ([`trace`]); a volatile in-RAM reference model predicts the
//! legal-trace outcome of every op ([`model`]); each trace is replayed
//! under all four policies — pmdk, spp, safepm, memcheck
//! ([`mod@replay`]).
//!
//! The checks, per op:
//!
//! * **legal ops** must match the model byte-exact under every policy
//!   (cross-policy equivalence through the model hub);
//! * **deliberately-illegal probes** must land in the policy's expected
//!   cell of the guarantee matrix — `hit` / `caught` / `fault` /
//!   `rejected`, keyed by [`spp_ripe::Family`] and validated via
//!   [`spp_ripe::expected_cell`]; this includes the *temporal* probes
//!   (use-after-free, double free, ABA slot reuse, in-place
//!   realloc-stale) that grade the SPP+T generation tag;
//! * **crash puts** capture a crash image at a chosen durability
//!   boundary and check recovery atomicity through the torture rig.
//!
//! Failures shrink greedily to a 1-minimal op sequence ([`mod@shrink`]) and
//! are dumped (trace + pool image) under the run's output directory.

pub mod model;
pub mod replay;
pub mod shrink;
pub mod trace;

pub use model::{key_bytes, pattern_bytes, CrashExpect, Model, Predicted};
pub use replay::{replay, BreakSpec, Divergence, ReplayOutcome, POOL_BYTES};
pub use shrink::shrink;
pub use trace::{generate, Op};

use std::io::Write as _;
use std::path::{Path, PathBuf};

use spp_ripe::Protection;

/// Configuration of one oracle run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Master seed; per-trace seeds are derived from it.
    pub seed: u64,
    /// Number of traces to generate and replay.
    pub traces: u64,
    /// Ops per trace.
    pub ops_per_trace: usize,
    /// Failure dump directory.
    pub out_dir: PathBuf,
    /// Deliberately corrupt one *spatial* guarantee-matrix expectation
    /// (CI fault-injection; a healthy oracle must go red).
    pub break_matrix: bool,
    /// Deliberately corrupt the (ABA-reuse, SPP) *temporal* expectation —
    /// the cell only the SPP+T generation tag separates. A healthy
    /// oracle must go red on the SPP replay.
    pub break_temporal: bool,
    /// Stop after this many failures.
    pub max_failures: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0x0D1F_F0DD,
            traces: 2000,
            ops_per_trace: 80,
            out_dir: PathBuf::from("results/oracle"),
            break_matrix: false,
            break_temporal: false,
            max_failures: 5,
        }
    }
}

/// Per-policy totals across a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicyTotals {
    /// Ops executed (preconditions met).
    pub ops: u64,
    /// Probes classified against the guarantee matrix.
    pub probes: u64,
    /// Crash images recovered and verified.
    pub crash_checks: u64,
}

/// One shrunk, dumped failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index of the failing trace.
    pub trace_index: u64,
    /// The trace's derived seed.
    pub seed: u64,
    /// Label of the diverging policy.
    pub policy: &'static str,
    /// The (post-shrink) divergence description.
    pub detail: String,
    /// Length of the shrunk trace.
    pub shrunk_len: usize,
    /// Where trace + image were dumped.
    pub dump_dir: String,
}

/// Result of a full oracle run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Traces actually replayed (may stop early at the failure cap).
    pub traces: u64,
    /// `(label, totals)` for each policy, in [`Protection::ALL`] order.
    pub per_policy: Vec<(&'static str, PolicyTotals)>,
    /// Shrunk failures.
    pub failures: Vec<Failure>,
}

/// The per-trace seed: decorrelate trace indices with a splitmix-style
/// multiply, like the torture rig's per-boundary seeds.
pub fn trace_seed(master: u64, index: u64) -> u64 {
    master.wrapping_add((index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Generate and replay `cfg.traces` traces under all four policies,
/// shrinking and dumping every divergence.
pub fn run(cfg: &RunConfig) -> RunSummary {
    let mut per_policy: Vec<(&'static str, PolicyTotals)> = Protection::ALL
        .iter()
        .map(|p| (p.label(), PolicyTotals::default()))
        .collect();
    let mut failures: Vec<Failure> = Vec::new();
    let mut traces = 0u64;
    let breaks = BreakSpec {
        matrix: cfg.break_matrix,
        temporal: cfg.break_temporal,
    };
    'traces: for t in 0..cfg.traces {
        traces += 1;
        let seed = trace_seed(cfg.seed, t);
        let ops = trace::generate(seed, cfg.ops_per_trace);
        for (i, &p) in Protection::ALL.iter().enumerate() {
            match replay::replay(&ops, p, breaks) {
                Ok(o) => {
                    per_policy[i].1.ops += o.ops;
                    per_policy[i].1.probes += o.probes;
                    per_policy[i].1.crash_checks += o.crash_checks;
                }
                Err(d) => {
                    let (kept, min) = shrink::shrink(&ops, p, breaks, d);
                    let dump_dir = dump_failure(&cfg.out_dir, failures.len(), t, seed, &kept, &min);
                    failures.push(Failure {
                        trace_index: t,
                        seed,
                        policy: min.policy,
                        detail: min.detail,
                        shrunk_len: kept.len(),
                        dump_dir,
                    });
                    if failures.len() as u64 >= cfg.max_failures {
                        break 'traces;
                    }
                }
            }
        }
    }
    RunSummary {
        traces,
        per_policy,
        failures,
    }
}

/// Dump a shrunk failing trace (one `Debug` line per op, after a header)
/// and the pool image at the divergence under `out_dir/fail-N/`.
fn dump_failure(
    out_dir: &Path,
    n: usize,
    trace_index: u64,
    seed: u64,
    kept: &[Op],
    min: &Divergence,
) -> String {
    let dir = out_dir.join(format!("fail-{n}"));
    if std::fs::create_dir_all(&dir).is_err() {
        return String::new();
    }
    let mut txt = String::new();
    txt.push_str("# spp-oracle shrunk failure\n");
    txt.push_str(&format!(
        "# trace {trace_index} seed {seed:#x} policy {}\n",
        min.policy
    ));
    txt.push_str(&format!(
        "# diverged at shrunk-op {}: {}\n",
        min.op_index, min.detail
    ));
    for op in kept {
        txt.push_str(&format!("{op:?}\n"));
    }
    let _ = std::fs::write(dir.join("trace.txt"), txt);
    if let Ok(mut f) = std::fs::File::create(dir.join("image.bin")) {
        let _ = f.write_all(&min.image);
    }
    dir.display().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_out(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spp-oracle-test-{}-{tag}", std::process::id()))
    }

    #[test]
    fn small_seeded_run_is_clean_across_policies() {
        let cfg = RunConfig {
            seed: 1,
            traces: 4,
            ops_per_trace: 50,
            out_dir: tmp_out("clean"),
            ..RunConfig::default()
        };
        let s = run(&cfg);
        assert!(
            s.failures.is_empty(),
            "unexpected divergences: {:?}",
            s.failures
        );
        assert_eq!(s.traces, 4);
        for (label, t) in &s.per_policy {
            assert!(t.ops > 0, "{label}: no ops executed");
        }
    }

    #[test]
    fn broken_matrix_entry_is_caught_and_shrinks_small() {
        let out = tmp_out("broken");
        let cfg = RunConfig {
            seed: 1,
            traces: 20,
            ops_per_trace: 50,
            out_dir: out.clone(),
            break_matrix: true,
            break_temporal: false,
            max_failures: 1,
        };
        let s = run(&cfg);
        assert!(
            !s.failures.is_empty(),
            "deliberately broken matrix entry went undetected"
        );
        let f = &s.failures[0];
        assert_eq!(f.policy, "SafePM", "wrong policy flagged: {f:?}");
        assert!(
            f.shrunk_len <= 12,
            "shrunk trace too large: {} ops",
            f.shrunk_len
        );
        assert!(
            std::path::Path::new(&f.dump_dir)
                .join("trace.txt")
                .is_file(),
            "missing trace dump"
        );
        let _ = std::fs::remove_dir_all(out);
    }

    #[test]
    fn broken_temporal_entry_is_caught_on_the_spp_replay() {
        // The temporal must-stay-red: flipping (ABA-reuse, SPP) — the
        // cell only the generation tag separates — must surface as a
        // divergence on the SPP replay, and only there.
        let out = tmp_out("broken-temporal");
        let cfg = RunConfig {
            seed: 1,
            traces: 40,
            ops_per_trace: 50,
            out_dir: out.clone(),
            break_matrix: false,
            break_temporal: true,
            max_failures: 1,
        };
        let s = run(&cfg);
        assert!(
            !s.failures.is_empty(),
            "deliberately broken temporal entry went undetected"
        );
        let f = &s.failures[0];
        assert_eq!(f.policy, "SPP", "wrong policy flagged: {f:?}");
        assert!(
            f.detail.contains("generation-tag") || f.detail.contains("Caught"),
            "divergence does not implicate the generation tag: {f:?}"
        );
        assert!(
            f.shrunk_len <= 12,
            "shrunk trace too large: {} ops",
            f.shrunk_len
        );
        let _ = std::fs::remove_dir_all(out);
    }
}
