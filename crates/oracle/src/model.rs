//! The volatile reference model: a plain in-RAM interpretation of every
//! trace op, predicting the legal-trace outcome each policy must
//! reproduce byte-exact.
//!
//! The model is the hub of the differential check: each policy is
//! compared against the model, never against another policy, so the
//! four replays are transitively equivalent even though their physical
//! pool layouts differ (SafePM pads allocations with redzones, SPP uses
//! a wider oid encoding, …).
//!
//! `apply` re-checks every op precondition and returns
//! [`Predicted::Skip`] when it does not hold (a slot is empty, a range
//! is out of bounds). The replayer makes the *same* decision from the
//! *same* state, so shrinking — which removes ops and can orphan later
//! ones — never desynchronises model and pool.

use std::collections::BTreeMap;

use spp_kvstore::KEY_SIZE;

use crate::trace::{Op, NSLOTS, NTYPED};

/// Deterministic data pattern for fills, writes and KV values: a
/// splitmix-style byte stream keyed by `seed`.
pub fn pattern_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut out = Vec::with_capacity(len + 8);
    while out.len() < len {
        x = x
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(0x9E37_79B9);
        x ^= x >> 29;
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Expand a key id into the KV store's fixed-width key.
pub fn key_bytes(key: u8) -> [u8; KEY_SIZE] {
    let mut out = [0u8; KEY_SIZE];
    out[0] = key;
    out[1..9].copy_from_slice(
        &(u64::from(key))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .to_le_bytes(),
    );
    out
}

/// One live slot: the current size and the predicted contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotData {
    /// Current payload size.
    pub size: u64,
    /// Predicted payload bytes (`len == size`).
    pub bytes: Vec<u8>,
}

/// What the crash-at-boundary check must find in the recovered image:
/// every committed entry intact, and the in-flight put either absent or
/// complete.
#[derive(Debug, Clone)]
pub struct CrashExpect {
    /// KV contents committed before the crash put began.
    pub snapshot: Vec<([u8; KEY_SIZE], Vec<u8>)>,
    /// The in-flight put's key.
    pub key: [u8; KEY_SIZE],
    /// The in-flight put's value.
    pub val: Vec<u8>,
}

/// The model's prediction for one op — what the replayer checks the
/// policy's observable behaviour against.
#[derive(Debug, Clone)]
pub enum Predicted {
    /// Precondition unmet (post-shrink artifact): the replayer must not
    /// execute the op.
    Skip,
    /// The op executes and must succeed; nothing further to compare.
    Unit,
    /// The op must succeed and load exactly these bytes.
    Bytes(Vec<u8>),
    /// The typed read must return exactly this value.
    Value(u64),
    /// The KV op's hit/miss (and value, for gets) must match.
    Kv(Option<Vec<u8>>),
    /// The transaction must roll back with a `TxAborted` error and leave
    /// no trace in the model state.
    Aborted,
    /// A deliberately-illegal access: the replayer classifies the
    /// policy's reaction into the guarantee matrix instead of comparing
    /// data.
    Probe,
    /// A crash-at-boundary KV put with its recovery contract.
    Crash(CrashExpect),
}

/// The volatile reference model of one trace.
#[derive(Debug, Clone, Default)]
pub struct Model {
    /// Slot-directory objects: size + predicted contents.
    pub slots: Vec<Option<SlotData>>,
    /// Typed `u64` cells.
    pub typed: Vec<Option<u64>>,
    /// KV contents.
    pub kv: BTreeMap<[u8; KEY_SIZE], Vec<u8>>,
}

impl Model {
    /// An empty model (all slots free, empty KV).
    pub fn new() -> Self {
        Model {
            slots: vec![None; NSLOTS],
            typed: vec![None; NTYPED],
            kv: BTreeMap::new(),
        }
    }

    /// Record a KV put directly, outside any [`Op`] trace — the entry
    /// point external replayers (e.g. the server failover rig replaying
    /// an acked wire log) use to keep the oracle's KV image in lockstep.
    pub fn kv_put(&mut self, key: [u8; KEY_SIZE], value: Vec<u8>) {
        self.kv.insert(key, value);
    }

    /// Record a KV delete directly; returns whether the key was present
    /// (the hit/miss the acked `DEL` reply must have reported).
    pub fn kv_del(&mut self, key: &[u8; KEY_SIZE]) -> bool {
        self.kv.remove(key).is_some()
    }

    /// Advance the model by one op and return the prediction the
    /// replayer must verify. Must stay in lockstep with
    /// `replay::run_policy` — both skip exactly when this returns
    /// [`Predicted::Skip`].
    #[allow(clippy::too_many_lines)]
    pub fn apply(&mut self, op: &Op) -> Predicted {
        match *op {
            Op::Alloc {
                slot,
                size,
                zero,
                seed,
            } => {
                let bytes = if zero {
                    vec![0u8; size as usize]
                } else {
                    pattern_bytes(seed, size as usize)
                };
                self.slots[slot] = Some(SlotData { size, bytes });
                Predicted::Unit
            }
            Op::Free { slot } => match self.slots[slot].take() {
                Some(_) => Predicted::Unit,
                None => Predicted::Skip,
            },
            Op::Realloc {
                slot,
                new_size,
                seed,
            } => {
                let Some(s) = self.slots[slot].as_mut() else {
                    return Predicted::Skip;
                };
                let old = s.size;
                s.bytes.resize(new_size as usize, 0);
                if new_size > old {
                    // The replayer overwrites the grown tail (allocator
                    // tail garbage is policy-dependent); the preserved
                    // prefix is min(old, new).
                    s.bytes[old as usize..]
                        .copy_from_slice(&pattern_bytes(seed, (new_size - old) as usize));
                }
                s.size = new_size;
                Predicted::Unit
            }
            Op::WriteAt {
                slot,
                at,
                len,
                seed,
            } => {
                let Some(s) = self.slots[slot].as_mut() else {
                    return Predicted::Skip;
                };
                if at + len > s.size {
                    return Predicted::Skip;
                }
                s.bytes[at as usize..(at + len) as usize]
                    .copy_from_slice(&pattern_bytes(seed, len as usize));
                Predicted::Unit
            }
            Op::ReadBack { slot } => match &self.slots[slot] {
                Some(s) => Predicted::Bytes(s.bytes.clone()),
                None => Predicted::Skip,
            },
            Op::Memmove {
                slot,
                src,
                dst,
                len,
            } => {
                let Some(s) = self.slots[slot].as_mut() else {
                    return Predicted::Skip;
                };
                if src + len > s.size || dst + len > s.size {
                    return Predicted::Skip;
                }
                s.bytes
                    .copy_within(src as usize..(src + len) as usize, dst as usize);
                Predicted::Unit
            }
            Op::TxUpdate {
                slot,
                at,
                len,
                seed,
                abort,
            } => {
                let Some(s) = self.slots[slot].as_mut() else {
                    return Predicted::Skip;
                };
                if at + len > s.size {
                    return Predicted::Skip;
                }
                if abort {
                    return Predicted::Aborted;
                }
                s.bytes[at as usize..(at + len) as usize]
                    .copy_from_slice(&pattern_bytes(seed, len as usize));
                Predicted::Unit
            }
            Op::TypedPut { cell, value } => {
                self.typed[cell] = Some(value);
                Predicted::Unit
            }
            Op::TypedGet { cell } => match self.typed[cell] {
                Some(v) => Predicted::Value(v),
                None => Predicted::Skip,
            },
            Op::TypedDel { cell } => match self.typed[cell].take() {
                Some(_) => Predicted::Unit,
                None => Predicted::Skip,
            },
            Op::KvPut { key, len, seed } => {
                self.kv
                    .insert(key_bytes(key), pattern_bytes(seed, len as usize));
                Predicted::Unit
            }
            Op::KvGet { key } => Predicted::Kv(self.kv.get(&key_bytes(key)).cloned()),
            Op::KvDel { key } => Predicted::Kv(self.kv.remove(&key_bytes(key))),
            Op::ProbeInBounds { slot } => match &self.slots[slot] {
                Some(s) => Predicted::Bytes(vec![*s.bytes.last().expect("nonempty slot")]),
                None => Predicted::Skip,
            },
            Op::ProbeJustPast { slot }
            | Op::ProbeWilderness { slot }
            | Op::ProbeBeyond { slot } => {
                if self.slots[slot].is_some() {
                    Predicted::Probe
                } else {
                    Predicted::Skip
                }
            }
            Op::ProbeFarLive { from, to } => {
                if from != to && self.slots[from].is_some() && self.slots[to].is_some() {
                    Predicted::Probe
                } else {
                    Predicted::Skip
                }
            }
            // Temporal probes: the prediction carries the one byte a
            // *silent* stale read must return (the guarantee matrix says
            // which policies are allowed to hit at all). `ProbeUafStale`
            // relies on frees being header-only — the volatile free lists
            // never write through the dead payload.
            Op::ProbeUafStale { slot } => match self.slots[slot].take() {
                Some(s) => Predicted::Bytes(vec![s.bytes[0]]),
                None => Predicted::Skip,
            },
            Op::ProbeDoubleFree { slot } => match self.slots[slot].take() {
                Some(_) => Predicted::Probe,
                None => Predicted::Skip,
            },
            Op::ProbeAbaStale { slot, seed } => match self.slots[slot].as_mut() {
                Some(s) => {
                    // The slot survives under its new owner's contents.
                    s.bytes = pattern_bytes(seed, s.size as usize);
                    Predicted::Bytes(vec![s.bytes[0]])
                }
                None => Predicted::Skip,
            },
            Op::ProbeReallocStale { slot } => match &self.slots[slot] {
                // Same-size realloc: contents (and size) are preserved.
                Some(s) => Predicted::Bytes(vec![s.bytes[0]]),
                None => Predicted::Skip,
            },
            Op::CrashKvPut { key, len, seed, .. } => {
                let snapshot = self.kv.iter().map(|(k, v)| (*k, v.clone())).collect();
                let k = key_bytes(key);
                let val = pattern_bytes(seed, len as usize);
                self.kv.insert(k, val.clone());
                Predicted::Crash(CrashExpect {
                    snapshot,
                    key: k,
                    val,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_deterministic_and_seed_sensitive() {
        assert_eq!(pattern_bytes(7, 100), pattern_bytes(7, 100));
        assert_ne!(pattern_bytes(7, 100), pattern_bytes(8, 100));
        assert_eq!(pattern_bytes(7, 100).len(), 100);
        // Prefix property: a longer draw extends a shorter one.
        assert_eq!(pattern_bytes(7, 100)[..50], pattern_bytes(7, 50));
    }

    #[test]
    fn preconditions_skip_after_op_removal() {
        // Removing the Alloc from [Alloc, WriteAt] must turn the WriteAt
        // into a Skip, not a panic — the shrinker depends on this.
        let mut m = Model::new();
        let w = Op::WriteAt {
            slot: 0,
            at: 0,
            len: 8,
            seed: 1,
        };
        assert!(matches!(m.apply(&w), Predicted::Skip));
        m.apply(&Op::Alloc {
            slot: 0,
            size: 64,
            zero: true,
            seed: 0,
        });
        assert!(matches!(m.apply(&w), Predicted::Unit));
        // Out-of-bounds after a shrink that removed a Realloc.
        let w2 = Op::WriteAt {
            slot: 0,
            at: 60,
            len: 8,
            seed: 1,
        };
        assert!(matches!(m.apply(&w2), Predicted::Skip));
    }

    #[test]
    fn aborted_tx_leaves_model_unchanged() {
        let mut m = Model::new();
        m.apply(&Op::Alloc {
            slot: 0,
            size: 64,
            zero: true,
            seed: 0,
        });
        let before = m.slots[0].clone();
        let p = m.apply(&Op::TxUpdate {
            slot: 0,
            at: 0,
            len: 8,
            seed: 9,
            abort: true,
        });
        assert!(matches!(p, Predicted::Aborted));
        assert_eq!(m.slots[0], before);
    }
}
