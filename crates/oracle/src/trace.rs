//! Seeded trace generation: randomized op sequences over the slot table,
//! the typed-cell table, and the KV store, with deliberately-illegal
//! probes mixed in.
//!
//! The generator keeps a shadow of the model's occupancy so emitted ops
//! are well-formed by construction (a `Free` targets a live slot, a
//! `WriteAt` stays inside the slot's current size, …). The reference
//! model still re-checks every precondition at replay time, because the
//! shrinker removes ops and can invalidate them — see
//! [`Predicted::Skip`](crate::Predicted::Skip).

use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Slots in the persistent slot directory each trace allocates.
pub const NSLOTS: usize = 6;
/// Cells in the volatile typed-oid table.
pub const NTYPED: usize = 4;

/// Key space for regular KV ops (`0..KV_KEYS`). Crash puts draw from a
/// disjoint space (`CRASH_KEY_BASE..`) so the in-flight transaction never
/// frees an existing value node — a `tx_free` rolled back by crash
/// recovery leaves the survivor poisoned under SafePM (a documented
/// conservative false positive), which would break the oracle's
/// "committed keys stay readable" check.
pub const KV_KEYS: u8 = 24;
/// First key of the crash-put key space (disjoint from `0..KV_KEYS`).
pub const CRASH_KEY_BASE: u8 = 128;

/// Smallest / largest slot object size the generator emits.
pub const MIN_SIZE: u64 = 32;
const MAX_SIZE: u64 = 256;

/// One operation of a trace. Every variant is deterministic given its
/// fields; data payloads are derived from per-op seeds via
/// [`pattern_bytes`](crate::pattern_bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Allocate `size` bytes into slot `slot`'s directory cell
    /// (`alloc_into_ptr`), overwriting (and leaking) any previous
    /// occupant. Non-zeroed allocations are immediately filled with
    /// `pattern_bytes(seed, size)` so contents are model-predictable.
    Alloc {
        /// Directory slot.
        slot: usize,
        /// Payload size in bytes.
        size: u64,
        /// Whether to use the zeroed allocation path.
        zero: bool,
        /// Fill-pattern seed (unused when `zero`).
        seed: u64,
    },
    /// Free the slot's object through its directory cell.
    Free {
        /// Directory slot.
        slot: usize,
    },
    /// Reallocate the slot's object; a grown tail is filled with
    /// `pattern_bytes(seed, ..)` (allocator tail garbage is
    /// policy-dependent).
    Realloc {
        /// Directory slot.
        slot: usize,
        /// New payload size.
        new_size: u64,
        /// Tail fill-pattern seed.
        seed: u64,
    },
    /// Store `pattern_bytes(seed, len)` at byte offset `at`.
    WriteAt {
        /// Directory slot.
        slot: usize,
        /// Byte offset inside the object.
        at: u64,
        /// Store length.
        len: u64,
        /// Data seed.
        seed: u64,
    },
    /// Load the whole object and compare byte-exact against the model —
    /// the cross-policy equivalence check.
    ReadBack {
        /// Directory slot.
        slot: usize,
    },
    /// Overlap-safe `memmove` within the object.
    Memmove {
        /// Directory slot.
        slot: usize,
        /// Source byte offset.
        src: u64,
        /// Destination byte offset.
        dst: u64,
        /// Bytes to move.
        len: u64,
    },
    /// Transactional write; when `abort` is set the transaction is rolled
    /// back and the model state must be unchanged.
    TxUpdate {
        /// Directory slot.
        slot: usize,
        /// Byte offset inside the object.
        at: u64,
        /// Write length.
        len: u64,
        /// Data seed.
        seed: u64,
        /// Abort instead of committing.
        abort: bool,
    },
    /// Create or transactionally overwrite the typed `u64` cell.
    TypedPut {
        /// Typed-table cell.
        cell: usize,
        /// Value to store.
        value: u64,
    },
    /// Read the typed cell and compare against the model.
    TypedGet {
        /// Typed-table cell.
        cell: usize,
    },
    /// Delete the typed cell's object.
    TypedDel {
        /// Typed-table cell.
        cell: usize,
    },
    /// KV put of `pattern_bytes(seed, len)` under `key_bytes(key)`.
    KvPut {
        /// Key id (expanded via [`key_bytes`](crate::key_bytes)).
        key: u8,
        /// Value length.
        len: u64,
        /// Value seed.
        seed: u64,
    },
    /// KV get; hit/miss and bytes must match the model.
    KvGet {
        /// Key id.
        key: u8,
    },
    /// KV delete; the removed-flag must match the model.
    KvDel {
        /// Key id.
        key: u8,
    },
    /// Legal probe: load the object's last byte (`size - 1`). Expected
    /// `Hit` with the model's byte under every policy
    /// ([`Family::IntraObject`](spp_ripe::Family::IntraObject)).
    ProbeInBounds {
        /// Directory slot.
        slot: usize,
    },
    /// Illegal probe: load one byte just past the end (`size`) —
    /// [`Family::AdjacentSameChunk`](spp_ripe::Family::AdjacentSameChunk).
    ProbeJustPast {
        /// Directory slot.
        slot: usize,
    },
    /// Illegal probe: jump from `from`'s pointer to `to`'s payload —
    /// [`Family::FarJumpLive`](spp_ripe::Family::FarJumpLive). Only SPP
    /// catches the forward jump; a backward jump is an underflow every
    /// mechanism (including SPP) misses.
    ProbeFarLive {
        /// Anchor slot whose pointer is redirected.
        from: usize,
        /// Victim slot.
        to: usize,
    },
    /// Illegal probe: load from unallocated heap near the end of the pool
    /// — [`Family::WildernessSmash`](spp_ripe::Family::WildernessSmash).
    ProbeWilderness {
        /// Anchor slot whose pointer is redirected.
        slot: usize,
    },
    /// Illegal probe: load from past the pool mapping —
    /// [`Family::BeyondMapping`](spp_ripe::Family::BeyondMapping).
    ProbeBeyond {
        /// Anchor slot whose pointer is redirected.
        slot: usize,
    },
    /// Temporal probe: free the slot's object through its directory cell,
    /// then immediately load byte 0 through the dangling pointer —
    /// [`Family::UafRead`](spp_ripe::Family::UafRead). Self-contained
    /// (free + stale access in one op) so no intervening allocation can
    /// make the verdict depend on op interleaving. The slot is dead
    /// afterwards.
    ProbeUafStale {
        /// Directory slot (freed by this op).
        slot: usize,
    },
    /// Temporal probe: free the slot through its directory cell, then
    /// free the retained oid a second time —
    /// [`Family::DoubleFree`](spp_ripe::Family::DoubleFree). The slot is
    /// dead afterwards.
    ProbeDoubleFree {
        /// Directory slot (freed by this op).
        slot: usize,
    },
    /// Temporal probe: free the slot, re-allocate the *same size* into the
    /// same directory cell (LIFO reuse hands the new object the dead
    /// object's block), fill it with `pattern_bytes(seed, size)`, then
    /// load byte 0 through the stale pre-free pointer —
    /// [`Family::AbaReuse`](spp_ripe::Family::AbaReuse). The slot stays
    /// live under its new contents.
    ProbeAbaStale {
        /// Directory slot.
        slot: usize,
        /// Fill seed for the new occupant.
        seed: u64,
    },
    /// Temporal probe: reallocate the slot to its *current* size (an
    /// in-place resize under the pmdk allocator — contents preserved, but
    /// the generation is bumped) and load byte 0 through the pre-realloc
    /// pointer — [`Family::ReallocStale`](spp_ripe::Family::ReallocStale).
    /// The slot stays live.
    ProbeReallocStale {
        /// Directory slot.
        slot: usize,
    },
    /// KV put of a *fresh* key with a crash image captured at the
    /// `boundary`-th durability boundary inside the put; the image is
    /// recovered and checked (at most one per trace).
    CrashKvPut {
        /// Fresh key id (from the crash key space).
        key: u8,
        /// Value length.
        len: u64,
        /// Value seed.
        seed: u64,
        /// 1-based durability boundary to crash at.
        boundary: u64,
    },
}

/// Generator shadow state: just enough occupancy tracking to emit
/// well-formed ops.
struct GenState {
    live: [Option<u64>; NSLOTS],
    typed: [bool; NTYPED],
    crash_done: bool,
}

impl GenState {
    fn live_slot(&self, rng: &mut StdRng) -> Option<usize> {
        let live: Vec<usize> = (0..NSLOTS).filter(|&i| self.live[i].is_some()).collect();
        if live.is_empty() {
            None
        } else {
            Some(live[rng.random_range(0..live.len())])
        }
    }
}

/// Generate a deterministic trace of `nops` ops from `seed`.
pub fn generate(seed: u64, nops: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut st = GenState {
        live: [None; NSLOTS],
        typed: [false; NTYPED],
        crash_done: false,
    };
    let mut ops = Vec::with_capacity(nops);
    for _ in 0..nops {
        ops.push(next_op(&mut rng, &mut st));
    }
    ops
}

/// A fallback allocation (always legal) for when a drawn op's
/// precondition is unsatisfiable.
fn fallback_alloc(rng: &mut StdRng, st: &mut GenState) -> Op {
    let slot = rng.random_range(0..NSLOTS);
    let size = rng.random_range(MIN_SIZE..MAX_SIZE + 1);
    st.live[slot] = Some(size);
    Op::Alloc {
        slot,
        size,
        zero: rng.random_range(0..2u32) == 0,
        seed: rng.random(),
    }
}

#[allow(clippy::too_many_lines)]
fn next_op(rng: &mut StdRng, st: &mut GenState) -> Op {
    let roll = rng.random_range(0..112u32);
    match roll {
        0..=13 => fallback_alloc(rng, st),
        14..=19 => match st.live_slot(rng) {
            Some(slot) => {
                st.live[slot] = None;
                Op::Free { slot }
            }
            None => fallback_alloc(rng, st),
        },
        20..=23 => match st.live_slot(rng) {
            Some(slot) => {
                let new_size = rng.random_range(MIN_SIZE..MAX_SIZE + 1);
                st.live[slot] = Some(new_size);
                Op::Realloc {
                    slot,
                    new_size,
                    seed: rng.random(),
                }
            }
            None => fallback_alloc(rng, st),
        },
        24..=35 => match st.live_slot(rng) {
            Some(slot) => {
                let size = st.live[slot].unwrap();
                let at = rng.random_range(0..size);
                let len = rng.random_range(1..size - at + 1);
                Op::WriteAt {
                    slot,
                    at,
                    len,
                    seed: rng.random(),
                }
            }
            None => fallback_alloc(rng, st),
        },
        36..=45 => match st.live_slot(rng) {
            Some(slot) => Op::ReadBack { slot },
            None => fallback_alloc(rng, st),
        },
        46..=49 => match st.live_slot(rng) {
            Some(slot) => {
                let size = st.live[slot].unwrap();
                let len = rng.random_range(1..size / 2 + 1);
                let src = rng.random_range(0..size - len + 1);
                let dst = rng.random_range(0..size - len + 1);
                Op::Memmove {
                    slot,
                    src,
                    dst,
                    len,
                }
            }
            None => fallback_alloc(rng, st),
        },
        50..=55 => match st.live_slot(rng) {
            Some(slot) => {
                let size = st.live[slot].unwrap();
                let at = rng.random_range(0..size);
                let len = rng.random_range(1..size - at + 1);
                Op::TxUpdate {
                    slot,
                    at,
                    len,
                    seed: rng.random(),
                    abort: rng.random_range(0..3u32) == 0,
                }
            }
            None => fallback_alloc(rng, st),
        },
        56..=59 => {
            let cell = rng.random_range(0..NTYPED);
            st.typed[cell] = true;
            Op::TypedPut {
                cell,
                value: rng.random(),
            }
        }
        60..=62 => {
            let cell = rng.random_range(0..NTYPED);
            if st.typed[cell] {
                Op::TypedGet { cell }
            } else {
                st.typed[cell] = true;
                Op::TypedPut {
                    cell,
                    value: rng.random(),
                }
            }
        }
        63..=64 => {
            let cell = rng.random_range(0..NTYPED);
            if st.typed[cell] {
                st.typed[cell] = false;
                Op::TypedDel { cell }
            } else {
                st.typed[cell] = true;
                Op::TypedPut {
                    cell,
                    value: rng.random(),
                }
            }
        }
        65..=70 => Op::KvPut {
            key: rng.random_range(0..KV_KEYS),
            len: rng.random_range(8..65u64),
            seed: rng.random(),
        },
        71..=74 => Op::KvGet {
            key: rng.random_range(0..KV_KEYS),
        },
        75..=77 => Op::KvDel {
            key: rng.random_range(0..KV_KEYS),
        },
        78..=81 => match st.live_slot(rng) {
            Some(slot) => Op::ProbeInBounds { slot },
            None => fallback_alloc(rng, st),
        },
        82..=85 => match st.live_slot(rng) {
            Some(slot) => Op::ProbeJustPast { slot },
            None => fallback_alloc(rng, st),
        },
        86..=89 => {
            let a = st.live_slot(rng);
            let b = st.live_slot(rng);
            match (a, b) {
                (Some(from), Some(to)) if from != to => Op::ProbeFarLive { from, to },
                _ => fallback_alloc(rng, st),
            }
        }
        90..=92 => match st.live_slot(rng) {
            Some(slot) => Op::ProbeWilderness { slot },
            None => fallback_alloc(rng, st),
        },
        93..=95 => match st.live_slot(rng) {
            Some(slot) => Op::ProbeBeyond { slot },
            None => fallback_alloc(rng, st),
        },
        100..=102 => match st.live_slot(rng) {
            Some(slot) => {
                st.live[slot] = None;
                Op::ProbeUafStale { slot }
            }
            None => fallback_alloc(rng, st),
        },
        103..=105 => match st.live_slot(rng) {
            Some(slot) => {
                st.live[slot] = None;
                Op::ProbeDoubleFree { slot }
            }
            None => fallback_alloc(rng, st),
        },
        106..=108 => match st.live_slot(rng) {
            // Slot stays live at the same size (the new occupant).
            Some(slot) => Op::ProbeAbaStale {
                slot,
                seed: rng.random(),
            },
            None => fallback_alloc(rng, st),
        },
        109..=111 => match st.live_slot(rng) {
            // Same-size realloc: slot stays live, contents preserved.
            Some(slot) => Op::ProbeReallocStale { slot },
            None => fallback_alloc(rng, st),
        },
        _ => {
            if st.crash_done {
                Op::KvPut {
                    key: rng.random_range(0..KV_KEYS),
                    len: rng.random_range(8..65u64),
                    seed: rng.random(),
                }
            } else {
                st.crash_done = true;
                Op::CrashKvPut {
                    key: CRASH_KEY_BASE + rng.random_range(0..64u8),
                    len: rng.random_range(8..65u64),
                    seed: rng.random(),
                    boundary: rng.random_range(1..10u64),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(42, 60), generate(42, 60));
        assert_ne!(generate(42, 60), generate(43, 60));
    }

    #[test]
    fn at_most_one_crash_per_trace() {
        for seed in 0..50 {
            let n = generate(seed, 80)
                .iter()
                .filter(|o| matches!(o, Op::CrashKvPut { .. }))
                .count();
            assert!(n <= 1, "seed {seed}: {n} crash ops");
        }
    }

    #[test]
    fn temporal_probes_are_generated() {
        // Across a modest seed sweep every temporal probe kind appears,
        // and the UAF/double-free kinds kill their slot in the shadow
        // occupancy (no later op can target a dead slot).
        let (mut uaf, mut dfree, mut aba, mut rstale) = (0usize, 0usize, 0usize, 0usize);
        for seed in 0..50 {
            for op in generate(seed, 80) {
                match op {
                    Op::ProbeUafStale { .. } => uaf += 1,
                    Op::ProbeDoubleFree { .. } => dfree += 1,
                    Op::ProbeAbaStale { .. } => aba += 1,
                    Op::ProbeReallocStale { .. } => rstale += 1,
                    _ => {}
                }
            }
        }
        assert!(uaf > 0, "no UAF probes generated");
        assert!(dfree > 0, "no double-free probes generated");
        assert!(aba > 0, "no ABA probes generated");
        assert!(rstale > 0, "no realloc-stale probes generated");
    }

    #[test]
    fn crash_keys_are_disjoint_from_regular_keys() {
        for seed in 0..50 {
            for op in generate(seed, 80) {
                match op {
                    Op::CrashKvPut { key, .. } => assert!(key >= CRASH_KEY_BASE),
                    Op::KvPut { key, .. } | Op::KvGet { key } | Op::KvDel { key } => {
                        assert!(key < KV_KEYS);
                    }
                    _ => {}
                }
            }
        }
    }
}
