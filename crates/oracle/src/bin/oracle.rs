//! `oracle` — run the differential oracle from the command line.
//!
//! ```text
//! oracle [--traces N] [--ops N] [--seed S] [--out DIR]
//!        [--smoke] [--break-matrix] [--break-temporal]
//! ```
//!
//! `--smoke` runs a small self-validating sweep; `--break-matrix`
//! deliberately corrupts one spatial guarantee-matrix expectation and
//! `--break-temporal` the (ABA-reuse, SPP) temporal one, so CI can
//! check the oracle goes red on each axis. Writes `results/oracle.json`
//! (validated through `spp_bench::validate_rows`) on conforming runs.

use std::path::PathBuf;
use std::process::ExitCode;

use spp_bench::{validate_rows, Args, Json};
use spp_oracle::{run, RunConfig};

fn main() -> ExitCode {
    let a = Args::parse();
    let smoke = a.flag("smoke");
    let cfg = RunConfig {
        seed: a.get("seed", 0x0D1F_F0DD),
        traces: a.get("traces", if smoke { 250 } else { 2000 }),
        ops_per_trace: a.get("ops", 80),
        out_dir: a.get("out", PathBuf::from("results/oracle")),
        break_matrix: a.flag("break-matrix"),
        break_temporal: a.flag("break-temporal"),
        max_failures: a.get("max-failures", 5),
    };
    eprintln!(
        "oracle: {} traces x {} ops, seed {:#x}{}{}{}",
        cfg.traces,
        cfg.ops_per_trace,
        cfg.seed,
        if smoke { " [smoke]" } else { "" },
        if cfg.break_matrix {
            " [break-matrix]"
        } else {
            ""
        },
        if cfg.break_temporal {
            " [break-temporal]"
        } else {
            ""
        },
    );
    let start = std::time::Instant::now();
    let summary = run(&cfg);
    let secs = start.elapsed().as_secs_f64();

    let total_ops: u64 = summary.per_policy.iter().map(|(_, t)| t.ops).sum();
    for (label, t) in &summary.per_policy {
        eprintln!(
            "  {label:>8}: {} ops, {} probes, {} crash checks",
            t.ops, t.probes, t.crash_checks
        );
    }
    eprintln!(
        "oracle: {} traces, {total_ops} ops total in {secs:.2}s ({:.0} ops/s)",
        summary.traces,
        total_ops as f64 / secs.max(1e-9),
    );

    if !summary.failures.is_empty() {
        for f in &summary.failures {
            eprintln!(
                "FAIL trace {} (seed {:#x}) policy {}: {} [shrunk to {} ops, dumped to {}]",
                f.trace_index, f.seed, f.policy, f.detail, f.shrunk_len, f.dump_dir
            );
        }
        eprintln!("oracle: {} divergence(s)", summary.failures.len());
        return ExitCode::FAILURE;
    }

    // Self-validation + JSON report, on conforming runs only (a failed
    // run must not overwrite the last good report).
    let rows: Vec<Json> = summary
        .per_policy
        .iter()
        .map(|(label, t)| {
            Json::Obj(vec![
                ("variant", Json::Str((*label).to_string())),
                ("traces", Json::Int(summary.traces)),
                ("ops", Json::Int(t.ops)),
                ("probes", Json::Int(t.probes)),
                ("crash_checks", Json::Int(t.crash_checks)),
            ])
        })
        .collect();
    if let Err(e) = validate_rows(&rows, &["traces", "ops", "probes"]) {
        eprintln!("oracle: self-validation failed: {e}");
        return ExitCode::FAILURE;
    }
    let doc = Json::Obj(vec![
        ("bench", Json::Str("oracle".to_string())),
        ("seed", Json::Int(cfg.seed)),
        ("ops_per_trace", Json::Int(cfg.ops_per_trace as u64)),
        ("elapsed_secs", Json::Num(secs)),
        ("conforming", Json::Bool(true)),
        ("rows", Json::Arr(rows)),
    ]);
    if std::fs::create_dir_all("results").is_ok() {
        let path = "results/oracle.json";
        match std::fs::write(path, doc.render() + "\n") {
            Ok(()) => eprintln!("oracle: wrote {path}"),
            Err(e) => eprintln!("oracle: could not write {path}: {e}"),
        }
    }
    ExitCode::SUCCESS
}
