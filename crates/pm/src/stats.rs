use std::sync::atomic::{AtomicU64, Ordering};

use crate::contention::{shard_idx, PROFILE_SHARDS};

/// One cache-line-padded shard of access counters. Padding keeps two
/// threads recording into different shards from false-sharing one line.
#[repr(align(128))]
#[derive(Debug, Default)]
struct StatShard {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    flushes: AtomicU64,
    fences: AtomicU64,
}

/// Lock-free access counters for a pool, sharded per thread.
///
/// Used by the space-overhead accounting (Table III), by tests asserting
/// that optimizations actually remove accesses, and by the contention
/// profile (flush/fence totals). Recording picks the calling thread's
/// shard; accessors sum across shards, so totals are exact once writers
/// quiesce (and monotone under concurrency).
#[derive(Debug, Default)]
pub struct PmStats {
    shards: [StatShard; PROFILE_SHARDS],
}

impl PmStats {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_read(&self, len: usize) {
        let s = &self.shards[shard_idx()];
        s.reads.fetch_add(1, Ordering::Relaxed);
        s.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_write(&self, len: usize) {
        let s = &self.shards[shard_idx()];
        s.writes.fetch_add(1, Ordering::Relaxed);
        s.bytes_written.fetch_add(len as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_flush(&self) {
        self.shards[shard_idx()]
            .flushes
            .fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_fence(&self) {
        self.shards[shard_idx()]
            .fences
            .fetch_add(1, Ordering::Relaxed);
    }

    fn sum(&self, f: impl Fn(&StatShard) -> &AtomicU64) -> u64 {
        self.shards
            .iter()
            .map(|s| f(s).load(Ordering::Relaxed))
            .sum()
    }

    /// Number of load operations performed.
    pub fn reads(&self) -> u64 {
        self.sum(|s| &s.reads)
    }

    /// Number of store operations performed.
    pub fn writes(&self) -> u64 {
        self.sum(|s| &s.writes)
    }

    /// Total bytes loaded.
    pub fn bytes_read(&self) -> u64 {
        self.sum(|s| &s.bytes_read)
    }

    /// Total bytes stored.
    pub fn bytes_written(&self) -> u64 {
        self.sum(|s| &s.bytes_written)
    }

    /// Number of flush operations.
    pub fn flushes(&self) -> u64 {
        self.sum(|s| &s.flushes)
    }

    /// Number of fences.
    pub fn fences(&self) -> u64 {
        self.sum(|s| &s.fences)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        for s in &self.shards {
            s.reads.store(0, Ordering::Relaxed);
            s.writes.store(0, Ordering::Relaxed);
            s.bytes_read.store(0, Ordering::Relaxed);
            s.bytes_written.store(0, Ordering::Relaxed);
            s.flushes.store(0, Ordering::Relaxed);
            s.fences.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = PmStats::new();
        s.record_read(8);
        s.record_read(8);
        s.record_write(64);
        s.record_flush();
        s.record_fence();
        assert_eq!(s.reads(), 2);
        assert_eq!(s.bytes_read(), 16);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.bytes_written(), 64);
        assert_eq!(s.flushes(), 1);
        assert_eq!(s.fences(), 1);
        s.reset();
        assert_eq!(s.reads() + s.writes() + s.flushes() + s.fences(), 0);
    }

    #[test]
    fn shards_sum_across_threads() {
        let s = std::sync::Arc::new(PmStats::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_write(64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.writes(), 4000);
        assert_eq!(s.bytes_written(), 4000 * 64);
    }
}
