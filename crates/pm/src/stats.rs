use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free access counters for a pool.
///
/// Used by the space-overhead accounting (Table III) and by tests asserting
/// that optimizations actually remove accesses.
#[derive(Debug, Default)]
pub struct PmStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    flushes: AtomicU64,
    fences: AtomicU64,
}

impl PmStats {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_read(&self, len: usize) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_write(&self, len: usize) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(len as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_fence(&self) {
        self.fences.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of load operations performed.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of store operations performed.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Total bytes loaded.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes stored.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Number of flush operations.
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Number of fences.
    pub fn fences(&self) -> u64 {
        self.fences.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = PmStats::new();
        s.record_read(8);
        s.record_read(8);
        s.record_write(64);
        s.record_flush();
        s.record_fence();
        assert_eq!(s.reads(), 2);
        assert_eq!(s.bytes_read(), 16);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.bytes_written(), 64);
        assert_eq!(s.flushes(), 1);
        assert_eq!(s.fences(), 1);
        s.reset();
        assert_eq!(s.reads() + s.writes() + s.flushes() + s.fences(), 0);
    }
}
