use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::contention::{self, LockCounter, ProfiledMutex};
use crate::error::PmError;
use crate::events::{EventLog, PmEvent, StoreState};
use crate::image::CrashImage;
use crate::latency::LatencyModel;
use crate::media::Media;
use crate::stats::PmStats;
use crate::{PoolOffset, Result, VirtAddr, DEFAULT_POOL_BASE};

/// Cache-line size of the simulated device, in bytes.
pub const CACHE_LINE: u64 = 64;

thread_local! {
    /// Per-thread flush-wait coalescing state: (scope nesting depth,
    /// deferred flush-wait count). See [`PmPool::coalesce_flush_waits`].
    /// Keyed per thread, not per pool — in practice a thread commits
    /// against one pool at a time, and the scope is narrow.
    static FLUSH_COALESCE: Cell<(u32, u64)> = const { Cell::new((0, 0)) };
}

/// Durability-tracking mode of a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// No store tracking: flushes and fences are no-ops and every store is
    /// immediately durable. Used for performance benchmarks, where tracking
    /// bookkeeping would distort measurements (the analogue of running on
    /// real hardware rather than under valgrind).
    #[default]
    Fast,
    /// Full store/flush/fence tracking with an event log. Crashes can be
    /// injected and the set of surviving stores explored. Used by the
    /// crash-consistency test suites.
    Tracked,
}

/// Which not-yet-persisted stores survive a simulated crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashSpec {
    /// All unpersisted stores are lost (the adversarial minimum).
    DropUnpersisted,
    /// All stores survive (the lucky maximum — cache happened to write back).
    KeepAll,
    /// Exactly the stores whose sequence numbers appear in the list survive
    /// (in addition to all persisted stores).
    KeepSubset(Vec<u64>),
}

/// A durability boundary a tracked pool just crossed — the points where
/// the reachable crash-state space changes shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// A flush (`CLWB` analogue) was recorded. Stores it covered are now
    /// flushed-but-unfenced: they still may or may not survive a crash.
    Flush,
    /// A fence (`SFENCE` analogue) promoted every flushed store to durable.
    Fence,
}

/// Observer invoked after each tracked flush/fence, once the pool's
/// tracking lock has been released — so the callback may freely call
/// [`PmPool::crash_image`], [`PmPool::unpersisted_seqs`], etc.
///
/// The callback must not issue stores/flushes/fences on the *same* pool:
/// re-entrant boundaries are suppressed (the tap is taken out of its slot
/// for the duration of the call), so such activity would go unexplored.
pub type BoundaryTap = Box<dyn FnMut(&PmPool, Boundary) + Send>;

/// Configuration for creating a [`PmPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    size: u64,
    base: VirtAddr,
    mode: Mode,
    latency: LatencyModel,
    record_stats: bool,
}

impl PoolConfig {
    /// Start configuring a pool of `size` bytes.
    ///
    /// `size` is rounded up to a cache-line multiple.
    pub fn new(size: u64) -> Self {
        let size = size.div_ceil(CACHE_LINE) * CACHE_LINE;
        PoolConfig {
            size,
            base: DEFAULT_POOL_BASE,
            mode: Mode::Fast,
            latency: LatencyModel::none(),
            record_stats: true,
        }
    }

    /// Set the simulated virtual base address of the mapping.
    pub fn base(mut self, base: VirtAddr) -> Self {
        self.base = base;
        self
    }

    /// Set the durability-tracking mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the access latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Enable or disable access-statistics recording (default on).
    ///
    /// Multi-threaded throughput benchmarks disable it so shared counter
    /// cache-line traffic does not distort scaling.
    pub fn record_stats(mut self, on: bool) -> Self {
        self.record_stats = on;
        self
    }
}

#[derive(Debug)]
struct Tracked {
    log: EventLog,
    /// Per unpersisted store: byte ranges not yet covered by a flush.
    /// Indexed by position in `log.events` (only `Store` entries appear).
    unflushed: Vec<(usize, Vec<(u64, u64)>)>,
    /// Positions in `log.events` of stores that are flushed but unfenced.
    flushed: Vec<usize>,
}

/// A simulated persistent-memory pool mapped into the simulated address
/// space at [`PmPool::base`].
///
/// See the [crate-level documentation](crate) for the full model.
pub struct PmPool {
    base: VirtAddr,
    size: u64,
    media: Media,
    mode: Mode,
    track: ProfiledMutex<Tracked>,
    tap: Mutex<Option<BoundaryTap>>,
    /// Mirror of `tap.is_some()`, so the per-boundary dispatch can skip the
    /// tap mutex entirely while no tap is installed (the common case for
    /// every tracked pool outside the torture rig).
    tap_installed: AtomicBool,
    latency: LatencyModel,
    /// `!latency.is_none()`, precomputed so the access hot path is a single
    /// branch when no model is configured.
    has_latency: bool,
    /// Runtime latency gate: benches disable injection during setup
    /// (preload) and enable it only for the measured phase.
    latency_on: AtomicBool,
    stats: PmStats,
    record_stats: bool,
    /// Contention-profile event counters for durability boundaries.
    c_flush: &'static LockCounter,
    c_fence: &'static LockCounter,
}

impl std::fmt::Debug for PmPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmPool")
            .field("base", &format_args!("{:#x}", self.base))
            .field("size", &self.size)
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

impl PmPool {
    fn build(media: Media, size: u64, cfg: &PoolConfig) -> Self {
        PmPool {
            base: cfg.base,
            size,
            media,
            mode: cfg.mode,
            track: ProfiledMutex::with_name(
                "pm.track",
                Tracked {
                    log: EventLog::new(),
                    unflushed: Vec::new(),
                    flushed: Vec::new(),
                },
            ),
            tap: Mutex::new(None),
            tap_installed: AtomicBool::new(false),
            latency: cfg.latency,
            has_latency: !cfg.latency.is_none(),
            latency_on: AtomicBool::new(true),
            stats: PmStats::new(),
            record_stats: cfg.record_stats,
            c_flush: contention::counter("pm.flush"),
            c_fence: contention::counter("pm.fence"),
        }
    }

    /// Create a zero-initialised pool.
    pub fn new(cfg: PoolConfig) -> Self {
        Self::build(Media::zeroed(cfg.size as usize), cfg.size, &cfg)
    }

    /// Re-open a pool from a crash image, as if `mmap`ing the device after a
    /// reboot. The image's bytes become the durable contents.
    pub fn from_image(image: CrashImage, cfg: PoolConfig) -> Self {
        let bytes = image.into_bytes();
        let size = bytes.len() as u64;
        Self::build(Media::from_bytes(bytes), size, &cfg)
    }

    /// Simulated virtual address the pool is mapped at.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Pool size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Durability-tracking mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Access statistics (reads/writes/flushes/fences).
    pub fn stats(&self) -> &PmStats {
        &self.stats
    }

    /// Enable or disable latency injection at runtime (default on).
    ///
    /// Scaling benches disable injection while preloading a store and
    /// re-enable it for the measured phase, so setup cost does not scale
    /// with the configured device wait. No-op for pools built without a
    /// latency model.
    pub fn set_latency_enabled(&self, on: bool) {
        self.latency_on.store(on, Ordering::Relaxed);
    }

    #[inline]
    fn latency_active(&self) -> bool {
        self.has_latency && self.latency_on.load(Ordering::Relaxed)
    }

    /// Run `f` with this thread's flush *waits* coalesced: every
    /// [`flush`](Self::flush) issued inside the scope still records its
    /// events, stats, durability tracking, and boundary tap exactly as
    /// usual, but the injected device wait is deferred — one drain wait is
    /// paid when the outermost scope exits (if any flushes were deferred).
    ///
    /// This models how a write-pending queue drains posted `CLWB`s
    /// concurrently: a group commit that flushes N ranges back to back
    /// before a single fence pays one queue-drain latency, not N. Scopes
    /// nest; only the outermost pays. The coalescing is per-thread, so
    /// concurrent committers on other threads are unaffected.
    pub fn coalesce_flush_waits<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Scope<'p> {
            pool: &'p PmPool,
        }
        impl Drop for Scope<'_> {
            fn drop(&mut self) {
                let (depth, deferred) = FLUSH_COALESCE.get();
                if depth == 1 {
                    FLUSH_COALESCE.set((0, 0));
                    // Pay one drain wait for the whole scope — skipped if
                    // nothing flushed, and skipped during unwinding (the
                    // wait models latency, not correctness).
                    if deferred > 0 && !std::thread::panicking() && self.pool.latency_active() {
                        self.pool.latency.on_flush();
                    }
                } else {
                    FLUSH_COALESCE.set((depth - 1, deferred));
                }
            }
        }
        let (depth, deferred) = FLUSH_COALESCE.get();
        FLUSH_COALESCE.set((depth + 1, deferred));
        let _scope = Scope { pool: self };
        f()
    }

    /// Inside a [`coalesce_flush_waits`](Self::coalesce_flush_waits) scope:
    /// note one deferred flush wait and return `true` (skip the inline
    /// wait). Outside any scope: return `false`.
    #[inline]
    fn defer_flush_wait(&self) -> bool {
        let (depth, deferred) = FLUSH_COALESCE.get();
        if depth == 0 {
            return false;
        }
        FLUSH_COALESCE.set((depth, deferred + 1));
        true
    }

    /// Resolve a simulated virtual address range to a pool offset.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::Fault`] if any byte of `[va, va + len)` lies
    /// outside this pool's mapping — the simulated SIGSEGV.
    pub fn resolve(&self, va: VirtAddr, len: usize) -> Result<PoolOffset> {
        let end = va
            .checked_add(len as u64)
            .ok_or(PmError::Fault { va, len })?;
        if va < self.base || end > self.base + self.size {
            return Err(PmError::Fault { va, len });
        }
        Ok(va - self.base)
    }

    /// The simulated virtual address of pool offset `off`.
    pub fn va_of(&self, off: PoolOffset) -> VirtAddr {
        self.base + off
    }

    fn check_range(&self, off: PoolOffset, len: usize) -> Result<()> {
        if off
            .checked_add(len as u64)
            .is_none_or(|end| end > self.size)
        {
            return Err(PmError::OutOfRange {
                off,
                len,
                pool_size: self.size,
            });
        }
        Ok(())
    }

    /// Load `buf.len()` bytes from pool offset `off`.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::OutOfRange`] if the range exceeds the pool.
    pub fn read(&self, off: PoolOffset, buf: &mut [u8]) -> Result<()> {
        self.check_range(off, buf.len())?;
        if self.latency_active() {
            self.latency.on_read(buf.len());
        }
        if self.record_stats {
            self.stats.record_read(buf.len());
        }
        self.media.read(off as usize, buf);
        Ok(())
    }

    /// Store `data` at pool offset `off`.
    ///
    /// In [`Mode::Tracked`], the store is recorded as *dirty*: it is not
    /// durable until covered by [`flush`](Self::flush) + [`fence`](Self::fence).
    ///
    /// # Errors
    ///
    /// Returns [`PmError::OutOfRange`] if the range exceeds the pool.
    pub fn write(&self, off: PoolOffset, data: &[u8]) -> Result<()> {
        self.check_range(off, data.len())?;
        if self.latency_active() {
            self.latency.on_write(data.len());
        }
        if self.record_stats {
            self.stats.record_write(data.len());
        }
        if self.mode == Mode::Tracked {
            let mut t = self.track.lock();
            let mut old = vec![0u8; data.len()];
            self.media.read(off as usize, &mut old);
            t.log.push(|seq| PmEvent::Store {
                seq,
                off,
                old: old.into_boxed_slice(),
                new: data.to_vec().into_boxed_slice(),
                state: StoreState::Dirty,
            });
            let idx = t.log.events.len() - 1;
            t.unflushed
                .push((idx, vec![(off, off + data.len() as u64)]));
        }
        self.media.write(off as usize, data);
        Ok(())
    }

    /// Store a fill pattern, equivalent to `memset`.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::OutOfRange`] if the range exceeds the pool.
    pub fn fill(&self, off: PoolOffset, byte: u8, len: usize) -> Result<()> {
        // Route through `write` so tracked mode records old bytes. Fill sizes
        // in this workspace are small (allocator headers, redzones).
        if self.mode == Mode::Tracked {
            self.write(off, &vec![byte; len])
        } else {
            self.check_range(off, len)?;
            if self.latency_active() {
                self.latency.on_write(len);
            }
            if self.record_stats {
                self.stats.record_write(len);
            }
            self.media.fill(off as usize, byte, len);
            Ok(())
        }
    }

    /// Flush the cache lines covering `[off, off + len)` (`CLWB` analogue).
    ///
    /// # Errors
    ///
    /// Returns [`PmError::OutOfRange`] if the range exceeds the pool.
    pub fn flush(&self, off: PoolOffset, len: usize) -> Result<()> {
        self.check_range(off, len)?;
        self.c_flush.record_event();
        if self.latency_active() && !self.defer_flush_wait() {
            self.latency.on_flush();
        }
        if self.record_stats {
            self.stats.record_flush();
        }
        if self.mode != Mode::Tracked {
            return Ok(());
        }
        let lo = off / CACHE_LINE * CACHE_LINE;
        let hi = (off + len as u64).div_ceil(CACHE_LINE) * CACHE_LINE;
        {
            let mut t = self.track.lock();
            t.log.push(|seq| PmEvent::Flush {
                seq,
                off: lo,
                len: hi - lo,
            });
            let mut newly_flushed = Vec::new();
            for (idx, ranges) in t.unflushed.iter_mut() {
                subtract_range(ranges, lo, hi);
                if ranges.is_empty() {
                    newly_flushed.push(*idx);
                }
            }
            t.unflushed.retain(|(_, ranges)| !ranges.is_empty());
            for idx in newly_flushed {
                if let PmEvent::Store { state, .. } = &mut t.log.events[idx] {
                    *state = StoreState::Flushed;
                }
                t.flushed.push(idx);
            }
        }
        self.fire_tap(Boundary::Flush);
        Ok(())
    }

    /// Issue a store fence (`SFENCE` analogue): all flushed stores become
    /// durable.
    pub fn fence(&self) {
        self.c_fence.record_event();
        if self.record_stats {
            self.stats.record_fence();
        }
        if self.mode != Mode::Tracked {
            return;
        }
        {
            let mut t = self.track.lock();
            t.log.push(|seq| PmEvent::Fence { seq });
            let flushed = std::mem::take(&mut t.flushed);
            for idx in flushed {
                if let PmEvent::Store { state, .. } = &mut t.log.events[idx] {
                    *state = StoreState::Persisted;
                }
            }
        }
        self.fire_tap(Boundary::Fence);
    }

    /// Install a [`BoundaryTap`], replacing any previous one. Only fires in
    /// [`Mode::Tracked`]. The crash-consistency torture rig uses this to
    /// explore crash states at every durability boundary.
    ///
    /// Must not be called from *inside* a tap callback on the same pool: the
    /// slot is empty for the duration of the call (that is how re-entrant
    /// boundaries are suppressed), so a nested install would silently
    /// *replace* the running tap when it returns. Debug builds catch this
    /// with an assertion in the dispatch path; swap taps between boundaries
    /// instead — e.g. from the workload thread after
    /// [`PmPool::clear_boundary_tap`].
    pub fn set_boundary_tap(&self, tap: BoundaryTap) {
        *self.tap.lock() = Some(tap);
        self.tap_installed.store(true, Ordering::Release);
    }

    /// Remove the installed [`BoundaryTap`], returning it if present.
    pub fn clear_boundary_tap(&self) -> Option<BoundaryTap> {
        let taken = self.tap.lock().take();
        self.tap_installed.store(false, Ordering::Release);
        taken
    }

    /// Invoke the tap with the tracking lock released. The tap is taken out
    /// of its slot for the duration of the call, so re-entrant boundaries
    /// (a tap writing to this same pool) are silently suppressed rather
    /// than deadlocking or recursing.
    ///
    /// Fast path: when no tap was ever installed (every tracked pool
    /// outside the torture rig), a relaxed flag load skips the tap mutex —
    /// boundaries on tap-free pools never serialize here.
    fn fire_tap(&self, boundary: Boundary) {
        if !self.tap_installed.load(Ordering::Acquire) {
            return;
        }
        let taken = self.tap.lock().take();
        if let Some(mut f) = taken {
            f(self, boundary);
            let mut slot = self.tap.lock();
            // The slot must still be empty: a tap installing another tap
            // from inside its own callback (or a racing install from a
            // second thread mid-call) would silently displace the running
            // tap — a re-entrancy bug in the caller, not a supported
            // hand-over point. A tap also cannot *uninstall* itself from
            // inside the callback (the slot is already empty during the
            // call) — stop via captured state instead.
            debug_assert!(
                slot.is_none(),
                "boundary tap replaced while a tap was running: \
                 set_boundary_tap must not be called from inside a tap \
                 callback (install taps between boundaries instead)"
            );
            if slot.is_none() {
                *slot = Some(f);
                // A clear racing with the call flipped the flag off while
                // the slot was empty; the slot is occupied again, so the
                // fast-path flag must agree.
                self.tap_installed.store(true, Ordering::Release);
            }
        }
    }

    /// Flush and fence in one call (`pmem_persist` analogue).
    ///
    /// # Errors
    ///
    /// Returns [`PmError::OutOfRange`] if the range exceeds the pool.
    pub fn persist(&self, off: PoolOffset, len: usize) -> Result<()> {
        self.flush(off, len)?;
        self.fence();
        Ok(())
    }

    /// Record an application-level marker in the event log (no-op in
    /// [`Mode::Fast`]).
    pub fn mark(&self, label: impl Into<String>) {
        if self.mode != Mode::Tracked {
            return;
        }
        let label = label.into();
        let mut t = self.track.lock();
        t.log.push(|seq| PmEvent::Mark { seq, label });
    }

    /// Discard all tracking state, treating the current contents as the
    /// durable baseline. Call at a quiescent point (everything persisted) —
    /// typically right after pool setup — so subsequent crash exploration
    /// starts from application activity rather than device formatting.
    pub fn reset_tracking(&self) {
        if self.mode != Mode::Tracked {
            return;
        }
        let mut t = self.track.lock();
        t.log = EventLog::new();
        t.unflushed.clear();
        t.flushed.clear();
    }

    /// Clone the current event log.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::NotTracked`] in [`Mode::Fast`].
    pub fn event_log(&self) -> Result<EventLog> {
        if self.mode != Mode::Tracked {
            return Err(PmError::NotTracked);
        }
        Ok(self.track.lock().log.clone())
    }

    /// Sequence numbers of stores that are not yet durable.
    pub fn unpersisted_seqs(&self) -> Vec<u64> {
        let t = self.track.lock();
        t.log
            .events
            .iter()
            .filter_map(|e| match e {
                PmEvent::Store { seq, state, .. } if *state != StoreState::Persisted => Some(*seq),
                _ => None,
            })
            .collect()
    }

    /// Materialise the bytes that would survive a power failure right now.
    ///
    /// Persisted stores always survive. Unpersisted stores survive according
    /// to `spec`. In [`Mode::Fast`] every store is durable, so the image is
    /// simply the current contents.
    pub fn crash_image(&self, spec: CrashSpec) -> CrashImage {
        let t = self.track.lock();
        let mut bytes = self.media.snapshot();
        if self.mode != Mode::Tracked {
            return CrashImage::new(bytes);
        }
        // Step 1: revert *every* store in reverse order, recovering the
        // image at tracking start. (Reverting only the unpersisted ones
        // would clobber persisted stores that later overlapped them.)
        for e in t.log.events.iter().rev() {
            if let PmEvent::Store { off, old, .. } = e {
                bytes[*off as usize..*off as usize + old.len()].copy_from_slice(old);
            }
        }
        // Step 2: replay survivors in program order — persisted stores
        // always, pending ones according to `spec`.
        for e in t.log.events.iter() {
            if let PmEvent::Store {
                seq,
                off,
                new,
                state,
                ..
            } = e
            {
                let survives = *state == StoreState::Persisted
                    || match &spec {
                        CrashSpec::DropUnpersisted => false,
                        CrashSpec::KeepAll => true,
                        CrashSpec::KeepSubset(seqs) => seqs.contains(seq),
                    };
                if survives {
                    bytes[*off as usize..*off as usize + new.len()].copy_from_slice(new);
                }
            }
        }
        CrashImage::new(bytes)
    }

    /// Snapshot the current (volatile-inclusive) contents. Useful for tests
    /// that want "what the program sees", not "what survives a crash".
    pub fn contents(&self) -> Vec<u8> {
        self.media.snapshot()
    }

    /// Persist the device image to a file (what `pmempool` would see on a
    /// real DAX file). Writes the *durable* bytes, as a clean shutdown
    /// would leave them.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let img = self.crash_image(CrashSpec::KeepAll);
        std::fs::write(path, img.bytes())
    }

    /// Load a device image previously written by [`PmPool::save_to_file`].
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn load_from_file(
        path: impl AsRef<std::path::Path>,
        cfg: PoolConfig,
    ) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Ok(PmPool::from_image(CrashImage::from_bytes(bytes), cfg))
    }
}

/// Remove `[lo, hi)` from a set of disjoint half-open ranges.
fn subtract_range(ranges: &mut Vec<(u64, u64)>, lo: u64, hi: u64) {
    let mut out = Vec::with_capacity(ranges.len());
    for &(a, b) in ranges.iter() {
        if b <= lo || a >= hi {
            out.push((a, b));
        } else {
            if a < lo {
                out.push((a, lo));
            }
            if b > hi {
                out.push((hi, b));
            }
        }
    }
    *ranges = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracked_pool() -> PmPool {
        PmPool::new(PoolConfig::new(4096).mode(Mode::Tracked))
    }

    #[test]
    fn subtract_range_cases() {
        let mut r = vec![(10, 20)];
        subtract_range(&mut r, 0, 5);
        assert_eq!(r, vec![(10, 20)]);
        subtract_range(&mut r, 12, 15);
        assert_eq!(r, vec![(10, 12), (15, 20)]);
        subtract_range(&mut r, 0, 100);
        assert!(r.is_empty());
    }

    #[test]
    fn coalesced_flushes_pay_one_device_wait() {
        use crate::latency::LatencyModel;
        use std::time::Instant;
        // 2ms per flush wait: 8 inline flushes ≈ 16ms, coalesced ≈ 2ms.
        let pool =
            PmPool::new(PoolConfig::new(4096).latency(LatencyModel::device_wait(0, 2_000_000)));
        let t0 = Instant::now();
        for i in 0..8u64 {
            pool.flush(i * 64, 8).unwrap();
        }
        pool.fence();
        let inline = t0.elapsed();

        let t0 = Instant::now();
        pool.coalesce_flush_waits(|| {
            for i in 0..8u64 {
                pool.flush(i * 64, 8).unwrap();
            }
        });
        pool.fence();
        let coalesced = t0.elapsed();

        assert!(inline.as_micros() >= 14_000, "inline {inline:?}");
        assert!(
            coalesced < inline / 3,
            "coalesced {coalesced:?} vs inline {inline:?}"
        );
        // Flush counts are unaffected — only the wait is coalesced.
        assert_eq!(pool.stats().flushes(), 16);
    }

    #[test]
    fn coalesce_scope_keeps_tracking_and_scopes_nest() {
        let pool = tracked_pool();
        pool.coalesce_flush_waits(|| {
            pool.write(0, &[7; 4]).unwrap();
            pool.coalesce_flush_waits(|| {
                pool.flush(0, 4).unwrap();
            });
            pool.fence();
        });
        // Durability tracking inside the scope behaves exactly as inline.
        let img = pool.crash_image(CrashSpec::DropUnpersisted);
        assert_eq!(&img.bytes()[..4], &[7u8; 4]);
    }

    #[test]
    fn fast_mode_everything_durable() {
        let pool = PmPool::new(PoolConfig::new(1024));
        pool.write(0, &[1, 2, 3]).unwrap();
        let img = pool.crash_image(CrashSpec::DropUnpersisted);
        assert_eq!(&img.bytes()[..3], &[1, 2, 3]);
    }

    #[test]
    fn unflushed_store_lost_on_crash() {
        let pool = tracked_pool();
        pool.write(100, &[0xAB; 8]).unwrap();
        let img = pool.crash_image(CrashSpec::DropUnpersisted);
        assert_eq!(&img.bytes()[100..108], &[0u8; 8]);
        let img = pool.crash_image(CrashSpec::KeepAll);
        assert_eq!(&img.bytes()[100..108], &[0xAB; 8]);
    }

    #[test]
    fn flush_without_fence_still_volatile() {
        let pool = tracked_pool();
        pool.write(0, &[7; 4]).unwrap();
        pool.flush(0, 4).unwrap();
        let img = pool.crash_image(CrashSpec::DropUnpersisted);
        assert_eq!(&img.bytes()[..4], &[0u8; 4]);
    }

    #[test]
    fn persist_makes_durable() {
        let pool = tracked_pool();
        pool.write(0, &[7; 4]).unwrap();
        pool.persist(0, 4).unwrap();
        let img = pool.crash_image(CrashSpec::DropUnpersisted);
        assert_eq!(&img.bytes()[..4], &[7u8; 4]);
    }

    #[test]
    fn partial_flush_leaves_store_dirty() {
        let pool = tracked_pool();
        // Store spans two cache lines; flush only the first.
        pool.write(60, &[9; 8]).unwrap();
        pool.flush(60, 4).unwrap();
        pool.fence();
        let img = pool.crash_image(CrashSpec::DropUnpersisted);
        // The whole store is dropped: it was never fully flushed.
        assert_eq!(&img.bytes()[60..68], &[0u8; 8]);
        // Completing the flush persists it.
        pool.flush(64, 4).unwrap();
        pool.fence();
        let img = pool.crash_image(CrashSpec::DropUnpersisted);
        assert_eq!(&img.bytes()[60..68], &[9u8; 8]);
    }

    #[test]
    fn overlapping_stores_subset_semantics() {
        let pool = tracked_pool();
        pool.write(0, &[1; 4]).unwrap(); // seq 0
        pool.write(0, &[2; 4]).unwrap(); // seq 1 (flush of A is seq.. actually stores get seqs 0 and 1)
        let seqs = pool.unpersisted_seqs();
        assert_eq!(seqs.len(), 2);
        // Keep only the *second* store: bytes must be the second store's.
        let img = pool.crash_image(CrashSpec::KeepSubset(vec![seqs[1]]));
        assert_eq!(&img.bytes()[..4], &[2u8; 4]);
        // Keep only the *first*: bytes revert to the first store's.
        let img = pool.crash_image(CrashSpec::KeepSubset(vec![seqs[0]]));
        assert_eq!(&img.bytes()[..4], &[1u8; 4]);
        // Keep neither.
        let img = pool.crash_image(CrashSpec::DropUnpersisted);
        assert_eq!(&img.bytes()[..4], &[0u8; 4]);
    }

    #[test]
    fn resolve_faults_outside_mapping() {
        let pool = PmPool::new(PoolConfig::new(1024));
        let base = pool.base();
        assert!(pool.resolve(base, 8).is_ok());
        assert!(pool.resolve(base + 1016, 8).is_ok());
        assert_eq!(
            pool.resolve(base + 1017, 8),
            Err(PmError::Fault {
                va: base + 1017,
                len: 8
            })
        );
        assert_eq!(
            pool.resolve(base - 1, 1),
            Err(PmError::Fault {
                va: base - 1,
                len: 1
            })
        );
        // An address with bit 62 set (a kept overflow bit) always faults.
        let ov = (1u64 << 62) | base;
        assert!(matches!(pool.resolve(ov, 1), Err(PmError::Fault { .. })));
    }

    #[test]
    fn out_of_range_pool_relative() {
        let pool = PmPool::new(PoolConfig::new(128));
        let mut b = [0u8; 16];
        assert!(matches!(
            pool.read(120, &mut b),
            Err(PmError::OutOfRange { .. })
        ));
        assert!(matches!(
            pool.write(u64::MAX, &b),
            Err(PmError::OutOfRange { .. })
        ));
    }

    #[test]
    fn from_image_roundtrip() {
        let pool = tracked_pool();
        pool.write(10, b"persist").unwrap();
        pool.persist(10, 7).unwrap();
        pool.write(200, b"volatile").unwrap();
        let img = pool.crash_image(CrashSpec::DropUnpersisted);
        let reopened = PmPool::from_image(img, PoolConfig::new(4096).mode(Mode::Tracked));
        let mut buf = [0u8; 7];
        reopened.read(10, &mut buf).unwrap();
        assert_eq!(&buf, b"persist");
        let mut buf = [0u8; 8];
        reopened.read(200, &mut buf).unwrap();
        assert_eq!(&buf, &[0u8; 8]);
    }

    #[test]
    fn event_log_records_marks() {
        let pool = tracked_pool();
        pool.mark("tx_begin");
        pool.write(0, &[1]).unwrap();
        pool.mark("tx_commit");
        let log = pool.event_log().unwrap();
        let labels: Vec<_> = log
            .events()
            .iter()
            .filter_map(|e| match e {
                PmEvent::Mark { label, .. } => Some(label.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec!["tx_begin", "tx_commit"]);
    }

    #[test]
    fn event_log_requires_tracked() {
        let pool = PmPool::new(PoolConfig::new(128));
        assert_eq!(pool.event_log().unwrap_err(), PmError::NotTracked);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("spp_pm_test_image.bin");
        let pool = PmPool::new(PoolConfig::new(4096));
        pool.write(100, b"durable-image").unwrap();
        pool.persist(100, 13).unwrap();
        pool.save_to_file(&dir).unwrap();
        let loaded = PmPool::load_from_file(&dir, PoolConfig::new(0)).unwrap();
        assert_eq!(loaded.size(), 4096);
        let mut b = [0u8; 13];
        loaded.read(100, &mut b).unwrap();
        assert_eq!(&b, b"durable-image");
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn boundary_tap_fires_on_flush_and_fence() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = tracked_pool();
        let flushes = Arc::new(AtomicUsize::new(0));
        let fences = Arc::new(AtomicUsize::new(0));
        let (f, n) = (Arc::clone(&flushes), Arc::clone(&fences));
        pool.set_boundary_tap(Box::new(move |p, b| {
            // The tracking lock is free: crash-state queries must work.
            let _ = p.crash_image(CrashSpec::DropUnpersisted);
            match b {
                Boundary::Flush => f.fetch_add(1, Ordering::Relaxed),
                Boundary::Fence => n.fetch_add(1, Ordering::Relaxed),
            };
        }));
        pool.write(0, &[1; 8]).unwrap();
        pool.persist(0, 8).unwrap();
        pool.fence();
        assert_eq!(flushes.load(Ordering::Relaxed), 1);
        assert_eq!(fences.load(Ordering::Relaxed), 2);
        pool.clear_boundary_tap();
        pool.persist(0, 8).unwrap();
        assert_eq!(flushes.load(Ordering::Relaxed), 1);
        assert_eq!(fences.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn boundary_tap_reentrant_boundaries_suppressed() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = Arc::new(tracked_pool());
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        pool.set_boundary_tap(Box::new(move |p, _| {
            c.fetch_add(1, Ordering::Relaxed);
            // A misbehaving tap persisting to the same pool must not
            // recurse or deadlock.
            p.write(512, &[3]).unwrap();
            let _ = p.persist(512, 1);
        }));
        pool.write(0, &[1]).unwrap();
        pool.persist(0, 1).unwrap();
        // Exactly two firings (flush + fence), none from the tap's own
        // persist.
        assert_eq!(count.load(Ordering::Relaxed), 2);
        // The tap survives for the next boundary.
        pool.fence();
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    /// A tap that installs another tap from inside its own callback is a
    /// re-entrancy bug: the nested install would displace the running tap
    /// when `fire_tap` returns. Debug builds must refuse it loudly.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "boundary tap replaced while a tap was running")]
    fn boundary_tap_nested_install_asserts() {
        use std::sync::Arc;
        let pool = Arc::new(tracked_pool());
        let p2 = Arc::clone(&pool);
        pool.set_boundary_tap(Box::new(move |_, _| {
            p2.set_boundary_tap(Box::new(|_, _| {}));
        }));
        pool.write(0, &[1]).unwrap();
        pool.persist(0, 1).unwrap();
    }

    #[test]
    fn boundary_tap_silent_in_fast_mode() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = PmPool::new(PoolConfig::new(1024));
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        pool.set_boundary_tap(Box::new(move |_, _| {
            c.fetch_add(1, Ordering::Relaxed);
        }));
        pool.write(0, &[1]).unwrap();
        pool.persist(0, 1).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn stats_counters() {
        let pool = PmPool::new(PoolConfig::new(1024));
        pool.write(0, &[0; 32]).unwrap();
        let mut b = [0u8; 16];
        pool.read(0, &mut b).unwrap();
        pool.persist(0, 32).unwrap();
        let s = pool.stats();
        assert_eq!(s.bytes_written(), 32);
        assert_eq!(s.bytes_read(), 16);
        assert_eq!(s.flushes(), 1);
        assert_eq!(s.fences(), 1);
    }
}
