/// Raw simulated PM media: a flat byte array supporting concurrent access
/// from multiple threads, like real memory-mapped PM.
///
/// # Safety contract
///
/// `Media` deliberately mirrors the semantics of an `mmap`ed device: it
/// performs no synchronisation of its own. Callers (the allocator, the
/// transaction engine, the data structures built on top) must guarantee that
/// concurrently executing writes never overlap reads or writes of the same
/// byte range, exactly as they must on real hardware. All higher layers in
/// this workspace uphold that contract with locks around shared metadata and
/// ownership of object payloads.
pub(crate) struct Media {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: see the struct-level safety contract — disjointness of concurrent
// accesses is delegated to callers, matching raw memory semantics.
unsafe impl Sync for Media {}
unsafe impl Send for Media {}

impl Media {
    pub(crate) fn zeroed(size: usize) -> Self {
        Media::from_bytes(vec![0u8; size])
    }

    pub(crate) fn from_bytes(bytes: Vec<u8>) -> Self {
        let boxed: Box<[u8]> = bytes.into_boxed_slice();
        let len = boxed.len();
        let ptr = Box::into_raw(boxed) as *mut u8;
        Media { ptr, len }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Copy `buf.len()` bytes starting at `off` into `buf`.
    ///
    /// Caller must have validated bounds.
    pub(crate) fn read(&self, off: usize, buf: &mut [u8]) {
        debug_assert!(off + buf.len() <= self.len);
        // SAFETY: bounds validated by caller; concurrent disjointness is the
        // caller's contract (see struct docs).
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(off), buf.as_mut_ptr(), buf.len());
        }
    }

    /// Copy `data` into the media starting at `off`.
    ///
    /// Caller must have validated bounds.
    pub(crate) fn write(&self, off: usize, data: &[u8]) {
        debug_assert!(off + data.len() <= self.len);
        // SAFETY: as in `read`.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr.add(off), data.len());
        }
    }

    /// Fill `len` bytes starting at `off` with `byte`.
    pub(crate) fn fill(&self, off: usize, byte: u8, len: usize) {
        debug_assert!(off + len <= self.len);
        // SAFETY: as in `read`.
        unsafe {
            std::ptr::write_bytes(self.ptr.add(off), byte, len);
        }
    }

    /// Snapshot the entire media contents.
    pub(crate) fn snapshot(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len];
        self.read(0, &mut out);
        out
    }
}

impl Drop for Media {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from `Box::into_raw` of a boxed slice of
        // exactly this length, and are dropped exactly once.
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                self.ptr, self.len,
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_roundtrip() {
        let m = Media::zeroed(128);
        assert_eq!(m.len(), 128);
        let mut buf = [0xAAu8; 16];
        m.read(0, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        m.write(8, &[1, 2, 3, 4]);
        m.read(8, &mut buf[..4]);
        assert_eq!(&buf[..4], &[1, 2, 3, 4]);
    }

    #[test]
    fn fill_and_snapshot() {
        let m = Media::zeroed(64);
        m.fill(16, 0x5A, 8);
        let snap = m.snapshot();
        assert!(snap[16..24].iter().all(|&b| b == 0x5A));
        assert!(snap[..16].iter().all(|&b| b == 0));
        assert!(snap[24..].iter().all(|&b| b == 0));
    }

    #[test]
    fn from_bytes_preserves_contents() {
        let m = Media::from_bytes(vec![7u8; 32]);
        let mut b = [0u8; 32];
        m.read(0, &mut b);
        assert!(b.iter().all(|&x| x == 7));
    }

    #[test]
    fn concurrent_disjoint_writes() {
        use std::sync::Arc;
        let m = Arc::new(Media::zeroed(4096));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let off = t as usize * 1024;
                m.fill(off, t + 1, 1024);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = m.snapshot();
        for t in 0..4usize {
            assert!(snap[t * 1024..(t + 1) * 1024]
                .iter()
                .all(|&b| b == t as u8 + 1));
        }
    }
}
