//! Event log for tracked pools: the raw material for crash-state
//! enumeration (`pmreorder`) and flush/fence rule checking (`pmemcheck`).

/// Durability state of a store event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreState {
    /// Written to the (simulated) CPU cache; may or may not survive a crash.
    Dirty,
    /// Covered by a flush (`CLWB`) but not yet ordered by a fence; may or may
    /// not survive a crash.
    Flushed,
    /// Flushed and fenced: guaranteed durable.
    Persisted,
}

/// One entry in a tracked pool's event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmEvent {
    /// A store of `new` over `old` at pool offset `off`.
    Store {
        /// Monotonic sequence number.
        seq: u64,
        /// Pool-relative offset.
        off: u64,
        /// Bytes overwritten (for crash-state reconstruction).
        old: Box<[u8]>,
        /// Bytes written.
        new: Box<[u8]>,
        /// Durability state at the time of inspection.
        state: StoreState,
    },
    /// A cache-line flush covering `[off, off + len)`.
    Flush {
        /// Monotonic sequence number.
        seq: u64,
        /// Pool-relative offset (cache-line aligned span start).
        off: u64,
        /// Span length.
        len: u64,
    },
    /// A store fence (`SFENCE`): all previously flushed stores become durable.
    Fence {
        /// Monotonic sequence number.
        seq: u64,
    },
    /// An application-level marker (e.g. transaction begin/commit), used by
    /// the pmemcheck rules and by crash-point selection in tests.
    Mark {
        /// Monotonic sequence number.
        seq: u64,
        /// Free-form label.
        label: String,
    },
}

impl PmEvent {
    /// The monotonic sequence number of this event.
    pub fn seq(&self) -> u64 {
        match self {
            PmEvent::Store { seq, .. }
            | PmEvent::Flush { seq, .. }
            | PmEvent::Fence { seq }
            | PmEvent::Mark { seq, .. } => *seq,
        }
    }
}

/// An ordered log of PM events recorded by a pool in tracked mode.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    pub(crate) events: Vec<PmEvent>,
    pub(crate) next_seq: u64,
}

impl EventLog {
    /// Create an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded events in program order.
    pub fn events(&self) -> &[PmEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub(crate) fn push(&mut self, mk: impl FnOnce(u64) -> PmEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(mk(seq));
        seq
    }

    /// Iterate over store events that are not yet durable.
    pub fn unpersisted_stores(&self) -> impl Iterator<Item = &PmEvent> {
        self.events.iter().filter(
            |e| matches!(e, PmEvent::Store { state, .. } if *state != StoreState::Persisted),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_monotonic_seq() {
        let mut log = EventLog::new();
        let a = log.push(|seq| PmEvent::Fence { seq });
        let b = log.push(|seq| PmEvent::Mark {
            seq,
            label: "x".into(),
        });
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[1].seq(), 1);
    }

    #[test]
    fn unpersisted_filter() {
        let mut log = EventLog::new();
        log.push(|seq| PmEvent::Store {
            seq,
            off: 0,
            old: Box::new([0]),
            new: Box::new([1]),
            state: StoreState::Dirty,
        });
        log.push(|seq| PmEvent::Store {
            seq,
            off: 8,
            old: Box::new([0]),
            new: Box::new([2]),
            state: StoreState::Persisted,
        });
        assert_eq!(log.unpersisted_stores().count(), 1);
    }
}
