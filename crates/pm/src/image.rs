//! Crash images and crash-state enumeration.

use crate::pool::{CrashSpec, PmPool};

/// The durable bytes of a pool at a simulated power failure.
///
/// Produced by [`PmPool::crash_image`]; re-opened with
/// [`PmPool::from_image`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashImage {
    bytes: Vec<u8>,
}

impl CrashImage {
    pub(crate) fn new(bytes: Vec<u8>) -> Self {
        CrashImage { bytes }
    }

    /// Construct an image from raw durable bytes (used by external crash
    /// replayers such as `spp-pmemcheck`).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        CrashImage { bytes }
    }

    /// The surviving pool contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume the image, returning the surviving pool contents.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Enumerates the crash states reachable from a pool's current point of
/// execution — the `pmreorder` state space.
///
/// Every persisted store survives in every state; each unpersisted store
/// independently may or may not survive. With `n` unpersisted stores there
/// are `2^n` states; the iterator enumerates them exhaustively when
/// `n <= exhaustive_limit` and otherwise yields the two extremes plus
/// deterministically-strided subsets, which is the sampling strategy
/// `pmreorder`'s `ReorderPartial` engine uses.
#[derive(Debug)]
pub struct CrashStateIter<'p> {
    pool: &'p PmPool,
    seqs: Vec<u64>,
    next: u64,
    total: u64,
    stride: u64,
}

impl<'p> CrashStateIter<'p> {
    /// Default cap on the number of unpersisted stores enumerated
    /// exhaustively (`2^12 = 4096` states).
    pub const EXHAUSTIVE_LIMIT: usize = 12;

    /// Maximum number of sampled states when beyond the exhaustive limit.
    pub const SAMPLE_BUDGET: u64 = 4096;

    /// Create an iterator over crash states of `pool` at this moment.
    pub fn new(pool: &'p PmPool) -> Self {
        let seqs = pool.unpersisted_seqs();
        let n = seqs.len();
        if n <= Self::EXHAUSTIVE_LIMIT {
            let total = 1u64 << n;
            CrashStateIter {
                pool,
                seqs,
                next: 0,
                total,
                stride: 1,
            }
        } else {
            // Sample: always include masks 0 (drop all) and 2^n-1 (keep all)
            // plus a deterministic stride through the space. n can exceed 63;
            // in that case we walk prefix masks (keep-first-k), which covers
            // the "crash at each program point" states — the ones recovery
            // code must actually handle.
            if n >= 63 {
                CrashStateIter {
                    pool,
                    seqs,
                    next: 0,
                    total: n as u64 + 1,
                    stride: u64::MAX,
                }
            } else {
                let space = 1u64 << n;
                let stride = (space / Self::SAMPLE_BUDGET).max(1) | 1; // odd stride
                CrashStateIter {
                    pool,
                    seqs,
                    next: 0,
                    total: space.min(Self::SAMPLE_BUDGET),
                    stride,
                }
            }
        }
    }

    /// Number of crash states this iterator will yield.
    pub fn state_count(&self) -> u64 {
        self.total
    }
}

impl Iterator for CrashStateIter<'_> {
    type Item = CrashImage;

    fn next(&mut self) -> Option<CrashImage> {
        if self.next >= self.total {
            return None;
        }
        let k = self.next;
        self.next += 1;
        let keep: Vec<u64> = if self.stride == u64::MAX {
            // Prefix mode: keep the first k stores (program-order crash points).
            self.seqs.iter().take(k as usize).copied().collect()
        } else {
            let mask = (k * self.stride) % (1u64 << self.seqs.len());
            self.seqs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1u64 << i) != 0)
                .map(|(_, &s)| s)
                .collect()
        };
        Some(self.pool.crash_image(if keep.is_empty() {
            CrashSpec::DropUnpersisted
        } else {
            CrashSpec::KeepSubset(keep)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{Mode, PoolConfig};

    #[test]
    fn exhaustive_enumeration_small() {
        let pool = PmPool::new(PoolConfig::new(1024).mode(Mode::Tracked));
        pool.write(0, &[1]).unwrap();
        pool.write(8, &[2]).unwrap();
        let it = CrashStateIter::new(&pool);
        assert_eq!(it.state_count(), 4);
        let images: Vec<_> = it.collect();
        assert_eq!(images.len(), 4);
        // All four combinations of the two stores must appear.
        let mut combos: Vec<(u8, u8)> = images
            .iter()
            .map(|im| (im.bytes()[0], im.bytes()[8]))
            .collect();
        combos.sort_unstable();
        combos.dedup();
        assert_eq!(combos, vec![(0, 0), (0, 2), (1, 0), (1, 2)]);
    }

    #[test]
    fn persisted_survive_in_every_state() {
        let pool = PmPool::new(PoolConfig::new(1024).mode(Mode::Tracked));
        pool.write(0, &[9]).unwrap();
        pool.persist(0, 1).unwrap();
        pool.write(8, &[1]).unwrap();
        for img in CrashStateIter::new(&pool) {
            assert_eq!(img.bytes()[0], 9);
        }
    }

    #[test]
    fn sampled_enumeration_large() {
        let pool = PmPool::new(PoolConfig::new(1 << 16).mode(Mode::Tracked));
        for i in 0..20u64 {
            pool.write(i * 8, &[i as u8 + 1]).unwrap();
        }
        let it = CrashStateIter::new(&pool);
        let n = it.state_count();
        assert!(n <= CrashStateIter::SAMPLE_BUDGET);
        assert_eq!(it.count() as u64, n);
    }

    #[test]
    fn prefix_mode_for_very_many_stores() {
        let pool = PmPool::new(PoolConfig::new(1 << 16).mode(Mode::Tracked));
        for i in 0..70u64 {
            pool.write(i * 8, &[1]).unwrap();
        }
        let it = CrashStateIter::new(&pool);
        assert_eq!(it.state_count(), 71);
        // The k-th prefix image has exactly k surviving stores.
        for (k, img) in CrashStateIter::new(&pool).enumerate() {
            let survivors = (0..70).filter(|i| img.bytes()[i * 8] == 1).count();
            assert_eq!(survivors, k);
        }
    }
}
