//! Crash images and crash-state enumeration.

use crate::pool::{CrashSpec, PmPool};

/// The durable bytes of a pool at a simulated power failure.
///
/// Produced by [`PmPool::crash_image`]; re-opened with
/// [`PmPool::from_image`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashImage {
    bytes: Vec<u8>,
}

impl CrashImage {
    pub(crate) fn new(bytes: Vec<u8>) -> Self {
        CrashImage { bytes }
    }

    /// Construct an image from raw durable bytes (used by external crash
    /// replayers such as `spp-pmemcheck`).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        CrashImage { bytes }
    }

    /// The surviving pool contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume the image, returning the surviving pool contents.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Enumerates the crash states reachable from a pool's current point of
/// execution — the `pmreorder` state space.
///
/// Every persisted store survives in every state; each unpersisted store
/// independently may or may not survive. With `n` unpersisted stores there
/// are `2^n` states; the iterator enumerates them exhaustively when
/// `n <= exhaustive_limit` and otherwise yields the two extremes plus
/// deterministically-strided subsets, which is the sampling strategy
/// `pmreorder`'s `ReorderPartial` engine uses.
#[derive(Debug)]
pub struct CrashStateIter<'p> {
    pool: &'p PmPool,
    seqs: Vec<u64>,
    next: u64,
    total: u64,
    stride: u64,
    /// Pre-planned keep-lists (seeded sampling mode); `None` for the lazy
    /// exhaustive/strided/prefix modes.
    planned: Option<Vec<Vec<u64>>>,
}

impl<'p> CrashStateIter<'p> {
    /// Default cap on the number of unpersisted stores enumerated
    /// exhaustively (`2^12 = 4096` states).
    pub const EXHAUSTIVE_LIMIT: usize = 12;

    /// Maximum number of sampled states when beyond the exhaustive limit.
    pub const SAMPLE_BUDGET: u64 = 4096;

    /// Create an iterator over crash states of `pool` at this moment.
    pub fn new(pool: &'p PmPool) -> Self {
        let seqs = pool.unpersisted_seqs();
        let n = seqs.len();
        if n <= Self::EXHAUSTIVE_LIMIT {
            let total = 1u64 << n;
            CrashStateIter {
                pool,
                seqs,
                next: 0,
                total,
                stride: 1,
                planned: None,
            }
        } else {
            // Sample: always include masks 0 (drop all) and 2^n-1 (keep all)
            // plus a deterministic stride through the space. n can exceed 63;
            // in that case we walk prefix masks (keep-first-k), which covers
            // the "crash at each program point" states — the ones recovery
            // code must actually handle.
            if n >= 63 {
                CrashStateIter {
                    pool,
                    seqs,
                    next: 0,
                    total: n as u64 + 1,
                    stride: u64::MAX,
                    planned: None,
                }
            } else {
                let space = 1u64 << n;
                let stride = (space / Self::SAMPLE_BUDGET).max(1) | 1; // odd stride
                CrashStateIter {
                    pool,
                    seqs,
                    next: 0,
                    total: space.min(Self::SAMPLE_BUDGET),
                    stride,
                    planned: None,
                }
            }
        }
    }

    /// Create a seeded, budgeted iterator over crash states of `pool`.
    ///
    /// When the full `2^n` space fits within `max_states` the enumeration
    /// is exhaustive (and `seed` is irrelevant). Otherwise the iterator
    /// yields the two extremes — drop-everything and keep-everything —
    /// plus distinct pseudo-random keep-subsets derived from `seed`, up to
    /// `max_states` states in total. The same `(pool state, max_states,
    /// seed)` always produces the same sequence of images, which is what
    /// makes torture-rig failures reproducible from a reported seed.
    pub fn sampled(pool: &'p PmPool, max_states: u64, seed: u64) -> Self {
        let seqs = pool.unpersisted_seqs();
        let n = seqs.len();
        let max_states = max_states.max(1);
        if n < 63 && (1u64 << n) <= max_states {
            return Self::new(pool);
        }
        // Plan keep-lists eagerly: extremes first, then seeded subsets.
        // Masks are dedup'd so the budget buys distinct states; the word-
        // vector key also covers n >= 64 (multi-word masks).
        let words = n.div_ceil(64).max(1);
        let mut seen: std::collections::HashSet<Vec<u64>> = std::collections::HashSet::new();
        let mut planned: Vec<Vec<u64>> = Vec::new();
        let mut push = |mask: Vec<u64>, planned: &mut Vec<Vec<u64>>| {
            if seen.insert(mask.clone()) {
                planned.push(
                    seqs.iter()
                        .enumerate()
                        .filter(|(i, _)| mask[i / 64] & (1u64 << (i % 64)) != 0)
                        .map(|(_, &s)| s)
                        .collect(),
                );
            }
        };
        let mut full = vec![u64::MAX; words];
        if !n.is_multiple_of(64) {
            full[words - 1] = (1u64 << (n % 64)) - 1;
        }
        push(vec![0; words], &mut planned);
        push(full.clone(), &mut planned);
        let mut state = seed;
        // 4x oversampling bounds the loop when the space is nearly
        // exhausted by duplicates.
        let mut attempts = 4 * max_states.max(16);
        while (planned.len() as u64) < max_states && attempts > 0 {
            attempts -= 1;
            let mut mask: Vec<u64> = (0..words).map(|_| splitmix64(&mut state)).collect();
            for (w, f) in mask.iter_mut().zip(full.iter()) {
                *w &= f;
            }
            push(mask, &mut planned);
        }
        let total = planned.len() as u64;
        CrashStateIter {
            pool,
            seqs,
            next: 0,
            total,
            stride: 0,
            planned: Some(planned),
        }
    }

    /// Number of crash states this iterator will yield.
    pub fn state_count(&self) -> u64 {
        self.total
    }

    /// The sequence numbers of the unpersisted stores this iterator ranges
    /// over. Dropping a subset of these is what distinguishes the states.
    pub fn unpersisted(&self) -> &[u64] {
        &self.seqs
    }

    /// The keep-set (surviving unpersisted store sequence numbers) of the
    /// `k`-th crash state. Lets an explorer that found a failing state
    /// reconstruct and then *shrink* the exact store-drop set behind it.
    ///
    /// # Panics
    ///
    /// If `k >= state_count()`.
    pub fn keep_for(&self, k: u64) -> Vec<u64> {
        assert!(k < self.total, "crash state index out of range");
        if let Some(planned) = &self.planned {
            planned[k as usize].clone()
        } else if self.stride == u64::MAX {
            // Prefix mode: keep the first k stores (program-order crash points).
            self.seqs.iter().take(k as usize).copied().collect()
        } else {
            let mask = (k * self.stride) % (1u64 << self.seqs.len());
            self.seqs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1u64 << i) != 0)
                .map(|(_, &s)| s)
                .collect()
        }
    }
}

/// SplitMix64 step — the deterministic generator behind
/// [`CrashStateIter::sampled`]. Kept local so `spp-pm` stays free of a
/// rand dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Iterator for CrashStateIter<'_> {
    type Item = CrashImage;

    fn next(&mut self) -> Option<CrashImage> {
        if self.next >= self.total {
            return None;
        }
        let k = self.next;
        self.next += 1;
        let keep = self.keep_for(k);
        Some(self.pool.crash_image(if keep.is_empty() {
            CrashSpec::DropUnpersisted
        } else {
            CrashSpec::KeepSubset(keep)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{Mode, PoolConfig};

    #[test]
    fn exhaustive_enumeration_small() {
        let pool = PmPool::new(PoolConfig::new(1024).mode(Mode::Tracked));
        pool.write(0, &[1]).unwrap();
        pool.write(8, &[2]).unwrap();
        let it = CrashStateIter::new(&pool);
        assert_eq!(it.state_count(), 4);
        let images: Vec<_> = it.collect();
        assert_eq!(images.len(), 4);
        // All four combinations of the two stores must appear.
        let mut combos: Vec<(u8, u8)> = images
            .iter()
            .map(|im| (im.bytes()[0], im.bytes()[8]))
            .collect();
        combos.sort_unstable();
        combos.dedup();
        assert_eq!(combos, vec![(0, 0), (0, 2), (1, 0), (1, 2)]);
    }

    #[test]
    fn persisted_survive_in_every_state() {
        let pool = PmPool::new(PoolConfig::new(1024).mode(Mode::Tracked));
        pool.write(0, &[9]).unwrap();
        pool.persist(0, 1).unwrap();
        pool.write(8, &[1]).unwrap();
        for img in CrashStateIter::new(&pool) {
            assert_eq!(img.bytes()[0], 9);
        }
    }

    #[test]
    fn sampled_enumeration_large() {
        let pool = PmPool::new(PoolConfig::new(1 << 16).mode(Mode::Tracked));
        for i in 0..20u64 {
            pool.write(i * 8, &[i as u8 + 1]).unwrap();
        }
        let it = CrashStateIter::new(&pool);
        let n = it.state_count();
        assert!(n <= CrashStateIter::SAMPLE_BUDGET);
        assert_eq!(it.count() as u64, n);
    }

    #[test]
    fn sampled_small_space_is_exhaustive() {
        let pool = PmPool::new(PoolConfig::new(1024).mode(Mode::Tracked));
        pool.write(0, &[1]).unwrap();
        pool.write(8, &[2]).unwrap();
        let it = CrashStateIter::sampled(&pool, 100, 42);
        assert_eq!(it.state_count(), 4);
        assert_eq!(it.count(), 4);
    }

    #[test]
    fn sampled_respects_budget_and_includes_extremes() {
        let pool = PmPool::new(PoolConfig::new(1 << 16).mode(Mode::Tracked));
        for i in 0..20u64 {
            pool.write(i * 8, &[i as u8 + 1]).unwrap();
        }
        let it = CrashStateIter::sampled(&pool, 64, 7);
        assert_eq!(it.state_count(), 64);
        let images: Vec<_> = it.collect();
        // First two images are the extremes.
        assert!((0..20).all(|i| images[0].bytes()[i * 8] == 0));
        assert!((0..20usize).all(|i| images[1].bytes()[i * 8] == i as u8 + 1));
        // All sampled states are distinct.
        let mut keys: Vec<Vec<u8>> = images
            .iter()
            .map(|im| (0..20).map(|i| im.bytes()[i * 8]).collect())
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 64);
    }

    #[test]
    fn sampled_is_deterministic_per_seed() {
        let pool = PmPool::new(PoolConfig::new(1 << 16).mode(Mode::Tracked));
        for i in 0..30u64 {
            pool.write(i * 8, &[1]).unwrap();
        }
        let a: Vec<_> = CrashStateIter::sampled(&pool, 32, 99).collect();
        let b: Vec<_> = CrashStateIter::sampled(&pool, 32, 99).collect();
        assert_eq!(a, b);
        let c: Vec<_> = CrashStateIter::sampled(&pool, 32, 100).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_handles_more_than_64_stores() {
        let pool = PmPool::new(PoolConfig::new(1 << 16).mode(Mode::Tracked));
        for i in 0..70u64 {
            pool.write(i * 8, &[1]).unwrap();
        }
        let images: Vec<_> = CrashStateIter::sampled(&pool, 16, 5).collect();
        assert_eq!(images.len(), 16);
        // Keep-all extreme must cover every one of the 70 stores.
        assert!((0..70).all(|i| images[1].bytes()[i * 8] == 1));
    }

    #[test]
    fn prefix_mode_for_very_many_stores() {
        let pool = PmPool::new(PoolConfig::new(1 << 16).mode(Mode::Tracked));
        for i in 0..70u64 {
            pool.write(i * 8, &[1]).unwrap();
        }
        let it = CrashStateIter::new(&pool);
        assert_eq!(it.state_count(), 71);
        // The k-th prefix image has exactly k surviving stores.
        for (k, img) in CrashStateIter::new(&pool).enumerate() {
            let survivors = (0..70).filter(|i| img.bytes()[i * 8] == 1).count();
            assert_eq!(survivors, k);
        }
    }
}
