//! # spp-pm — simulated byte-addressable persistent memory
//!
//! This crate is the hardware substrate for the SPP reproduction. It models a
//! byte-addressable persistent-memory (PM) device the way PM programming
//! toolchains see one:
//!
//! * a **pool** of persistent bytes mapped at a *simulated virtual address*
//!   (`base`), accessed with load/store operations at byte granularity
//!   ([`PmPool::read`], [`PmPool::write`]);
//! * a volatile **CPU-cache model**: in [`Mode::Tracked`], stores are *not*
//!   durable until they are covered by a [`PmPool::flush`] and a subsequent
//!   [`PmPool::fence`] (`CLWB` + `SFENCE` semantics);
//! * **crash injection**: [`PmPool::crash_image`] materialises the bytes that
//!   would survive a power failure, optionally dropping any subset of the
//!   not-yet-persisted stores ([`CrashSpec`]), which is the state space
//!   `pmreorder` explores;
//! * an **event log** ([`PmEvent`]) consumed by the `spp-pmemcheck` crate to
//!   validate flush/fence ordering rules;
//! * optional **latency modelling** ([`LatencyModel`]) to emulate PM media
//!   that is slower than DRAM — including wall-clock *overlappable* device
//!   waits for thread-scaling experiments;
//! * an always-on **contention profile** ([`contention`]): named, sharded
//!   lock/event counters that the whole stack (stripe locks, tx lanes, the
//!   tracked-mode event log) reports into, snapshot-able by benches and the
//!   load generator to locate hot-path serialization.
//!
//! Accesses outside the pool mapping return [`PmError::Fault`] — the
//! simulator's analogue of a SIGSEGV/SIGBUS. This is the primitive SPP's
//! overflow bit relies on: a tagged pointer whose overflow bit survives
//! masking resolves to a virtual address far outside any mapping.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), spp_pm::PmError> {
//! use spp_pm::{PmPool, PoolConfig, Mode};
//!
//! let pool = PmPool::new(PoolConfig::new(1 << 20).mode(Mode::Tracked));
//! pool.write(64, b"hello")?;
//! pool.persist(64, 5)?; // flush + fence
//! let img = pool.crash_image(spp_pm::CrashSpec::DropUnpersisted);
//! assert_eq!(&img.bytes()[64..69], b"hello");
//! # Ok(())
//! # }
//! ```

pub mod contention;
mod error;
mod events;
mod image;
mod latency;
mod media;
mod pool;
mod stats;

pub use contention::{LockCounter, LockSnapshot, ProfiledMutex, ProfiledRwLock};
pub use error::PmError;
pub use events::{EventLog, PmEvent, StoreState};
pub use image::{CrashImage, CrashStateIter};
pub use latency::LatencyModel;
pub use pool::{Boundary, BoundaryTap, CrashSpec, Mode, PmPool, PoolConfig, CACHE_LINE};
pub use stats::PmStats;

/// A simulated virtual address within the 64-bit simulated address space.
pub type VirtAddr = u64;

/// An offset relative to the beginning of a pool.
pub type PoolOffset = u64;

/// Result alias for PM operations.
pub type Result<T> = std::result::Result<T, PmError>;

/// Default simulated base virtual address for pool mappings.
///
/// SPP configures PMDK (via `PMEM_MMAP_HINT=0`) to map pools in the *lower*
/// part of the address space so that the encoding's address bits suffice to
/// address the whole mapping (§IV-F / §V-B of the paper). SPP+T spends 7 of
/// those bits on the allocation-generation field, leaving 29 address bits
/// (512 MiB) under the default 26-bit tag — so we default to 128 MiB,
/// comfortably inside that range for every evaluated configuration.
pub const DEFAULT_POOL_BASE: VirtAddr = 0x0800_0000;
