//! Always-on contention profiling for the hot-path locks of the stack.
//!
//! Every serialization point in the workspace (kvstore stripe locks, pmdk
//! lanes, the tracked-mode event-log lock, the allocator's shared
//! wilderness) registers a named [`LockCounter`] here and reports each
//! acquisition through it. The counters answer the question the scaling
//! benchmarks keep raising: *which* lock is the wall. They are cheap enough
//! to leave on in release builds — the uncontended path is a `try_lock`
//! plus one relaxed `fetch_add` into a cache-line-padded per-thread shard,
//! and wall-clock timing only happens on the contended path.
//!
//! The registry is process-global on purpose: benches and the load
//! generator snapshot it with [`snapshot`]/[`dump`] after a measured phase
//! (and [`reset_all`] between phases) without having to thread a profiler
//! handle through every layer.
//!
//! Counter taxonomy (see DESIGN.md "Contention profile"):
//! * `acquisitions` — total lock acquisitions (reads + writes for rwlocks).
//! * `contended` — acquisitions that did not succeed on the first
//!   `try_lock`; the acquirer had to spin, block, or park.
//! * `wait_ns` — wall-clock nanoseconds spent waiting on contended
//!   acquisitions (the serialization actually paid, not a sample).
//! * `events` — subsystem-specific event count for non-lock counters
//!   (e.g. `pm.flush` / `pm.fence` boundary totals).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of padded shards per counter. Threads hash onto shards so that
/// concurrent recording does not serialize on one cache line.
pub const PROFILE_SHARDS: usize = 8;

/// Process-wide source of per-thread shard indices.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's stable shard index in `[0, PROFILE_SHARDS)`.
#[inline]
pub(crate) fn shard_idx() -> usize {
    SHARD.with(|s| {
        if s.get() == usize::MAX {
            s.set(NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % PROFILE_SHARDS);
        }
        s.get()
    })
}

/// One cache-line-padded counter shard. 128-byte alignment covers the
/// adjacent-line prefetcher on common x86 parts.
#[repr(align(128))]
#[derive(Debug, Default)]
struct Shard {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait_ns: AtomicU64,
    events: AtomicU64,
}

/// A named, sharded set of contention counters.
///
/// Obtain one with [`counter`]; instances are interned by name and live for
/// the whole process (`&'static`), so locks can embed the reference and
/// record with zero lookups.
#[derive(Debug)]
pub struct LockCounter {
    name: &'static str,
    shards: [Shard; PROFILE_SHARDS],
}

impl LockCounter {
    fn new(name: &'static str) -> Self {
        LockCounter {
            name,
            shards: std::array::from_fn(|_| Shard::default()),
        }
    }

    /// The name this counter was registered under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record an acquisition that succeeded on the first try.
    #[inline]
    pub fn record_uncontended(&self) {
        self.shards[shard_idx()]
            .acquisitions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record an acquisition that had to wait `waited` of wall-clock time.
    #[inline]
    pub fn record_contended(&self, waited: Duration) {
        let shard = &self.shards[shard_idx()];
        shard.acquisitions.fetch_add(1, Ordering::Relaxed);
        shard.contended.fetch_add(1, Ordering::Relaxed);
        shard
            .wait_ns
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record a subsystem event (e.g. one flush boundary).
    #[inline]
    pub fn record_event(&self) {
        self.shards[shard_idx()]
            .events
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Sum the shards into one snapshot.
    pub fn snapshot(&self) -> LockSnapshot {
        let mut s = LockSnapshot {
            name: self.name,
            acquisitions: 0,
            contended: 0,
            wait_ns: 0,
            events: 0,
        };
        for shard in &self.shards {
            s.acquisitions += shard.acquisitions.load(Ordering::Relaxed);
            s.contended += shard.contended.load(Ordering::Relaxed);
            s.wait_ns += shard.wait_ns.load(Ordering::Relaxed);
            s.events += shard.events.load(Ordering::Relaxed);
        }
        s
    }

    fn reset(&self) {
        for shard in &self.shards {
            shard.acquisitions.store(0, Ordering::Relaxed);
            shard.contended.store(0, Ordering::Relaxed);
            shard.wait_ns.store(0, Ordering::Relaxed);
            shard.events.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time totals for one [`LockCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockSnapshot {
    /// Registered counter name (`subsystem.lock`).
    pub name: &'static str,
    /// Total acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that failed the first `try_lock`.
    pub contended: u64,
    /// Wall-clock nanoseconds spent waiting, summed over contended
    /// acquisitions.
    pub wait_ns: u64,
    /// Subsystem-specific event count.
    pub events: u64,
}

impl LockSnapshot {
    /// Fraction of acquisitions that were contended, in `[0, 1]`.
    pub fn contended_fraction(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }
}

fn registry() -> &'static StdMutex<Vec<&'static LockCounter>> {
    static REGISTRY: OnceLock<StdMutex<Vec<&'static LockCounter>>> = OnceLock::new();
    REGISTRY.get_or_init(|| StdMutex::new(Vec::new()))
}

/// Get or register the process-wide counter named `name`.
///
/// Names are interned: every call with the same name returns the same
/// counter, so multiple pools/stores of the same subsystem aggregate into
/// one line of the profile. Call once at construction and embed the
/// returned reference; this function takes a registry lock.
pub fn counter(name: &'static str) -> &'static LockCounter {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(c) = reg.iter().find(|c| c.name == name) {
        return c;
    }
    let c: &'static LockCounter = Box::leak(Box::new(LockCounter::new(name)));
    reg.push(c);
    c
}

/// Snapshot every registered counter, sorted by total wait time
/// (descending) then name — the order a contention dump should be read in.
pub fn snapshot() -> Vec<LockSnapshot> {
    let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    let mut rows: Vec<LockSnapshot> = reg.iter().map(|c| c.snapshot()).collect();
    rows.sort_by(|a, b| b.wait_ns.cmp(&a.wait_ns).then(a.name.cmp(b.name)));
    rows
}

/// The `n` most-contended counters (by wait time), skipping counters that
/// never saw contention.
pub fn top_contended(n: usize) -> Vec<LockSnapshot> {
    snapshot()
        .into_iter()
        .filter(|s| s.contended > 0)
        .take(n)
        .collect()
}

/// Zero every registered counter. Benches call this between measured
/// phases so each dump attributes contention to one phase.
pub fn reset_all() {
    let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    for c in reg.iter() {
        c.reset();
    }
}

/// Render the full profile as an aligned text table.
pub fn dump() -> String {
    let rows = snapshot();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>8} {:>12} {:>12}\n",
        "lock", "acq", "contended", "cont%", "wait_ms", "events"
    ));
    for s in rows {
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>7.2}% {:>12.3} {:>12}\n",
            s.name,
            s.acquisitions,
            s.contended,
            100.0 * s.contended_fraction(),
            s.wait_ns as f64 / 1e6,
            s.events,
        ));
    }
    out
}

/// A mutex that reports every acquisition to a [`LockCounter`].
///
/// Uncontended cost over the raw lock: one failed-or-successful `try_lock`
/// plus a relaxed sharded increment. `Instant::now` is only taken when the
/// fast path fails.
#[derive(Debug)]
pub struct ProfiledMutex<T> {
    inner: Mutex<T>,
    counter: &'static LockCounter,
}

impl<T> ProfiledMutex<T> {
    /// Wrap `value`, reporting to `counter`.
    pub fn new(counter: &'static LockCounter, value: T) -> Self {
        ProfiledMutex {
            inner: Mutex::new(value),
            counter,
        }
    }

    /// Wrap `value`, reporting to the registry counter named `name`.
    pub fn with_name(name: &'static str, value: T) -> Self {
        Self::new(counter(name), value)
    }

    /// Lock, recording whether the acquisition was contended.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(g) = self.inner.try_lock() {
            self.counter.record_uncontended();
            return g;
        }
        let start = Instant::now();
        let g = self.inner.lock();
        self.counter.record_contended(start.elapsed());
        g
    }

    /// Non-blocking lock attempt; records only on success.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = self.inner.try_lock();
        if g.is_some() {
            self.counter.record_uncontended();
        }
        g
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

/// A reader-writer lock that reports every acquisition to a
/// [`LockCounter`]. Reader and writer acquisitions aggregate into the same
/// counter: what the profile cares about is time serialized, not mode.
#[derive(Debug)]
pub struct ProfiledRwLock<T> {
    inner: RwLock<T>,
    counter: &'static LockCounter,
}

impl<T> ProfiledRwLock<T> {
    /// Wrap `value`, reporting to `counter`.
    pub fn new(counter: &'static LockCounter, value: T) -> Self {
        ProfiledRwLock {
            inner: RwLock::new(value),
            counter,
        }
    }

    /// Wrap `value`, reporting to the registry counter named `name`.
    pub fn with_name(name: &'static str, value: T) -> Self {
        Self::new(counter(name), value)
    }

    /// Shared lock, recording whether the acquisition was contended.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if let Some(g) = self.inner.try_read() {
            self.counter.record_uncontended();
            return g;
        }
        let start = Instant::now();
        let g = self.inner.read();
        self.counter.record_contended(start.elapsed());
        g
    }

    /// Exclusive lock, recording whether the acquisition was contended.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if let Some(g) = self.inner.try_write() {
            self.counter.record_uncontended();
            return g;
        }
        let start = Instant::now();
        let g = self.inner.write();
        self.counter.record_contended(start.elapsed());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// The registry is process-global and some tests reset it; tests that
    /// read or reset counter totals serialize here so parallel test threads
    /// cannot zero each other's counters mid-assertion.
    fn registry_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn counter_interned_by_name() {
        let a = counter("test.intern");
        let b = counter("test.intern");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn uncontended_and_contended_recorded() {
        let _serial = registry_test_lock();
        let c = counter("test.mutex");
        let base = c.snapshot();
        let m = Arc::new(ProfiledMutex::new(c, 0u64));
        *m.lock() += 1;
        let after_one = c.snapshot();
        assert_eq!(after_one.acquisitions, base.acquisitions + 1);

        // Force contention: hold the lock while another thread acquires.
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let h = std::thread::spawn(move || {
            *m2.lock() += 1;
        });
        std::thread::sleep(Duration::from_millis(10));
        drop(g);
        h.join().unwrap();
        let s = c.snapshot();
        assert!(s.contended >= 1, "blocked acquisition must count: {s:?}");
        assert!(s.wait_ns > 0, "contended wait must accumulate time: {s:?}");
    }

    #[test]
    fn rwlock_reader_does_not_contend_reader() {
        let _serial = registry_test_lock();
        let c = counter("test.rwlock");
        let base = c.snapshot();
        let l = ProfiledRwLock::new(c, 7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        let s = c.snapshot();
        assert_eq!(s.acquisitions - base.acquisitions, 2);
        assert_eq!(s.contended, base.contended);
    }

    #[test]
    fn snapshot_reset_and_dump() {
        let _serial = registry_test_lock();
        let c = counter("test.dumpable");
        c.record_event();
        c.record_uncontended();
        let rows = snapshot();
        assert!(rows.iter().any(|s| s.name == "test.dumpable"));
        let text = dump();
        assert!(text.contains("test.dumpable"));
        assert!(text.lines().next().unwrap().contains("wait_ms"));
        reset_all();
        assert_eq!(counter("test.dumpable").snapshot().events, 0);
    }

    #[test]
    fn top_contended_skips_clean_locks() {
        let _serial = registry_test_lock();
        reset_all();
        let clean = counter("test.clean");
        clean.record_uncontended();
        let dirty = counter("test.dirty");
        dirty.record_contended(Duration::from_micros(5));
        let top = top_contended(10);
        assert!(top.iter().any(|s| s.name == "test.dirty"));
        assert!(!top.iter().any(|s| s.name == "test.clean"));
    }

    #[test]
    fn contended_fraction_bounds() {
        let s = LockSnapshot {
            name: "x",
            acquisitions: 0,
            contended: 0,
            wait_ns: 0,
            events: 0,
        };
        assert_eq!(s.contended_fraction(), 0.0);
        let s = LockSnapshot {
            acquisitions: 4,
            contended: 1,
            ..s
        };
        assert!((s.contended_fraction() - 0.25).abs() < 1e-12);
    }
}
