use std::error::Error;
use std::fmt;

/// Errors produced by the simulated PM device.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PmError {
    /// A load or store touched a simulated virtual address outside every
    /// mapping — the analogue of a SIGSEGV/SIGBUS on real hardware.
    ///
    /// This is the error an SPP-tagged pointer with its overflow bit set
    /// produces on dereference.
    Fault {
        /// The faulting simulated virtual address.
        va: u64,
        /// Length of the attempted access in bytes.
        len: usize,
    },
    /// A pool-relative offset was outside the pool.
    OutOfRange {
        /// The offending pool offset.
        off: u64,
        /// Length of the attempted access in bytes.
        len: usize,
        /// Size of the pool.
        pool_size: u64,
    },
    /// The requested pool size was zero or not cache-line aligned.
    BadPoolSize(u64),
    /// An operation required [`crate::Mode::Tracked`] but the pool runs in
    /// [`crate::Mode::Fast`].
    NotTracked,
}

impl fmt::Display for PmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmError::Fault { va, len } => {
                write!(f, "fault: access of {len} bytes at unmapped address {va:#x}")
            }
            PmError::OutOfRange { off, len, pool_size } => write!(
                f,
                "pool-relative access out of range: {len} bytes at offset {off:#x} (pool size {pool_size:#x})"
            ),
            PmError::BadPoolSize(sz) => {
                write!(f, "bad pool size {sz:#x}: must be nonzero and cache-line aligned")
            }
            PmError::NotTracked => {
                write!(f, "operation requires a pool in tracked mode")
            }
        }
    }
}

impl Error for PmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            PmError::Fault {
                va: 0x4000_0000_0000_0000,
                len: 8,
            },
            PmError::OutOfRange {
                off: 10,
                len: 4,
                pool_size: 8,
            },
            PmError::BadPoolSize(0),
            PmError::NotTracked,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PmError>();
    }
}
