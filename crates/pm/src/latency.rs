//! Optional PM access-latency model.
//!
//! Optane-class PM media is 2–4× slower than DRAM for reads and has lower
//! store bandwidth. The evaluation figures in the paper depend only on the
//! *relative* cost of the safety mechanisms, so latency emulation defaults to
//! off; the model exists to let experiments study how slower media shrinks
//! the relative overhead of SPP's register-only tag arithmetic (§VI-B notes
//! SPP's relative overhead drops as PM access cost grows).
//!
//! Two injection mechanisms, for two different questions:
//!
//! * **Spin latency** (`*_spins`) burns CPU per access. It models *CPU-side*
//!   cost and is what the overhead-shape experiments use. It cannot model
//!   concurrency: a spinning thread occupies a core, so N threads spinning
//!   serialize on an oversubscribed machine.
//! * **Wait latency** (`*_wait_ns`) stalls for wall-clock time while
//!   *yielding the core*. It models *device-side* latency — the time a real
//!   PM DIMM's write-pending queue holds a flush — during which other
//!   threads can run. This is what makes thread-scaling measurable: N
//!   threads overlap their device waits exactly as N cores overlap stalls
//!   on real hardware, so workloads whose locks are off the device path
//!   scale until they become CPU-bound, and workloads that hold a lock
//!   across a device wait visibly serialize. The scaling rows of fig5/fig7
//!   run under this model.

use std::time::{Duration, Instant};

/// Per-access latency injection. See the module docs for the spin/wait
/// distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyModel {
    /// Spin iterations added per read access.
    pub read_spins: u32,
    /// Spin iterations added per write access.
    pub write_spins: u32,
    /// Extra spin iterations per 64 bytes accessed (bandwidth modelling).
    pub per_line_spins: u32,
    /// Wall-clock nanoseconds of overlappable device wait per read access.
    pub read_wait_ns: u32,
    /// Wall-clock nanoseconds of overlappable device wait per write access.
    pub write_wait_ns: u32,
    /// Wall-clock nanoseconds of overlappable device wait per flush
    /// (`CLWB` reaching the media — the dominant durability cost).
    pub flush_wait_ns: u32,
}

impl LatencyModel {
    /// No latency injection (default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A rough Optane App-Direct profile: reads ~3× DRAM latency, writes
    /// buffered but bandwidth-limited. The absolute spin counts are
    /// calibration-free; only their ratios matter for overhead *shapes*.
    pub fn optane_like() -> Self {
        LatencyModel {
            read_spins: 60,
            write_spins: 20,
            per_line_spins: 30,
            ..Self::default()
        }
    }

    /// Overlappable device-wait profile for thread-scaling experiments:
    /// flushes pay `flush_ns` of wall-clock wait (yielding the core),
    /// reads pay `read_ns`. Writes are posted (buffered) and free — their
    /// cost lands on the flush that makes them durable, as on real PM.
    pub fn device_wait(read_ns: u32, flush_ns: u32) -> Self {
        LatencyModel {
            read_wait_ns: read_ns,
            flush_wait_ns: flush_ns,
            ..Self::default()
        }
    }

    /// True if the model injects nothing (every hook is a no-op).
    pub fn is_none(&self) -> bool {
        *self == Self::default()
    }

    #[inline]
    pub(crate) fn on_read(&self, len: usize) {
        if self.read_spins != 0 || self.per_line_spins != 0 {
            spin(self.read_spins + self.per_line_spins * (len as u32).div_ceil(64));
        }
        if self.read_wait_ns != 0 {
            wait(self.read_wait_ns);
        }
    }

    #[inline]
    pub(crate) fn on_write(&self, len: usize) {
        if self.write_spins != 0 || self.per_line_spins != 0 {
            spin(self.write_spins + self.per_line_spins * (len as u32).div_ceil(64));
        }
        if self.write_wait_ns != 0 {
            wait(self.write_wait_ns);
        }
    }

    #[inline]
    pub(crate) fn on_flush(&self) {
        if self.flush_wait_ns != 0 {
            wait(self.flush_wait_ns);
        }
    }
}

#[inline]
fn spin(iters: u32) {
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

/// Stall for `ns` of wall-clock time while yielding the core.
///
/// Deliberately *not* `thread::sleep`: sleep's timer-slack floor is tens of
/// microseconds, far above PM latencies. A yield loop keeps wall-clock
/// fidelity at the ~1µs scale while handing the CPU to any other runnable
/// thread — which is the whole point of the overlappable model.
#[inline]
fn wait(ns: u32) {
    let deadline = Instant::now() + Duration::from_nanos(u64::from(ns));
    while Instant::now() < deadline {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero() {
        let m = LatencyModel::none();
        assert_eq!(m.read_spins, 0);
        assert_eq!(m.write_spins, 0);
        assert!(m.is_none());
        // Must not hang or panic.
        m.on_read(4096);
        m.on_write(4096);
        m.on_flush();
    }

    #[test]
    fn optane_like_spins_complete() {
        let m = LatencyModel::optane_like();
        assert!(!m.is_none());
        m.on_read(64);
        m.on_write(256);
    }

    #[test]
    fn device_wait_stalls_wall_clock() {
        let m = LatencyModel::device_wait(0, 200_000); // 200µs flush
        assert!(!m.is_none());
        let start = Instant::now();
        m.on_flush();
        assert!(start.elapsed() >= Duration::from_micros(200));
        // Reads and writes are free in this profile.
        let start = Instant::now();
        m.on_write(4096);
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn device_waits_overlap_across_threads() {
        // Four threads waiting 20ms each would serialize to 80ms; because
        // waiters yield the core, they overlap even on one CPU and the
        // whole scope finishes far sooner. The margin is wide so parallel
        // test load cannot flake it.
        let m = LatencyModel::device_wait(0, 20_000_000);
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| m.on_flush());
            }
        });
        assert!(
            start.elapsed() < Duration::from_millis(60),
            "waits serialized: {:?}",
            start.elapsed()
        );
    }
}
