//! Optional PM access-latency model.
//!
//! Optane-class PM media is 2–4× slower than DRAM for reads and has lower
//! store bandwidth. The evaluation figures in the paper depend only on the
//! *relative* cost of the safety mechanisms, so latency emulation defaults to
//! off; the model exists to let experiments study how slower media shrinks
//! the relative overhead of SPP's register-only tag arithmetic (§VI-B notes
//! SPP's relative overhead drops as PM access cost grows).

/// Spin-based latency injection per PM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyModel {
    /// Spin iterations added per read access.
    pub read_spins: u32,
    /// Spin iterations added per write access.
    pub write_spins: u32,
    /// Extra spin iterations per 64 bytes accessed (bandwidth modelling).
    pub per_line_spins: u32,
}

impl LatencyModel {
    /// No latency injection (default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A rough Optane App-Direct profile: reads ~3× DRAM latency, writes
    /// buffered but bandwidth-limited. The absolute spin counts are
    /// calibration-free; only their ratios matter for overhead *shapes*.
    pub fn optane_like() -> Self {
        LatencyModel {
            read_spins: 60,
            write_spins: 20,
            per_line_spins: 30,
        }
    }

    #[inline]
    pub(crate) fn on_read(&self, len: usize) {
        if self.read_spins != 0 || self.per_line_spins != 0 {
            spin(self.read_spins + self.per_line_spins * (len as u32).div_ceil(64));
        }
    }

    #[inline]
    pub(crate) fn on_write(&self, len: usize) {
        if self.write_spins != 0 || self.per_line_spins != 0 {
            spin(self.write_spins + self.per_line_spins * (len as u32).div_ceil(64));
        }
    }
}

#[inline]
fn spin(iters: u32) {
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero() {
        let m = LatencyModel::none();
        assert_eq!(m.read_spins, 0);
        assert_eq!(m.write_spins, 0);
        // Must not hang or panic.
        m.on_read(4096);
        m.on_write(4096);
    }

    #[test]
    fn optane_like_spins_complete() {
        let m = LatencyModel::optane_like();
        m.on_read(64);
        m.on_write(256);
    }
}
