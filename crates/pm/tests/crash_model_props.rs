//! Property tests: the tracked pool's crash-image construction agrees with
//! an independent reference model of store/flush/fence durability.

use proptest::prelude::*;

use spp_pm::{CrashSpec, Mode, PmPool, PoolConfig, CACHE_LINE};

const SIZE: u64 = 4096;

#[derive(Debug, Clone)]
enum Op {
    Store { off: u64, bytes: Vec<u8> },
    Flush { off: u64, len: u64 },
    Fence,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..SIZE - 32, prop::collection::vec(any::<u8>(), 1..24))
            .prop_map(|(off, bytes)| Op::Store { off, bytes }),
        (0u64..SIZE - 128, 1u64..128).prop_map(|(off, len)| Op::Flush { off, len }),
        Just(Op::Fence),
    ]
}

/// Reference model: replay ops tracking per-store durability exactly as the
/// documentation promises (a store survives `DropUnpersisted` iff all its
/// bytes' cache lines were flushed and a fence followed).
#[derive(Default)]
struct Model {
    durable: Vec<u8>,
    /// pending stores: (off, bytes, fully_flushed)
    pending: Vec<(u64, Vec<u8>, bool)>,
    /// unflushed ranges per pending store
    unflushed: Vec<Vec<(u64, u64)>>,
}

impl Model {
    fn new() -> Self {
        Model {
            durable: vec![0; SIZE as usize],
            ..Default::default()
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Store { off, bytes } => {
                self.pending.push((*off, bytes.clone(), false));
                self.unflushed.push(vec![(*off, *off + bytes.len() as u64)]);
            }
            Op::Flush { off, len } => {
                let lo = off / CACHE_LINE * CACHE_LINE;
                let hi = (off + len).div_ceil(CACHE_LINE) * CACHE_LINE;
                for (i, ranges) in self.unflushed.iter_mut().enumerate() {
                    let mut out = Vec::new();
                    for &(a, b) in ranges.iter() {
                        if b <= lo || a >= hi {
                            out.push((a, b));
                        } else {
                            if a < lo {
                                out.push((a, lo));
                            }
                            if b > hi {
                                out.push((hi, b));
                            }
                        }
                    }
                    *ranges = out;
                    if ranges.is_empty() {
                        self.pending[i].2 = true;
                    }
                }
            }
            Op::Fence => {
                let mut keep = Vec::new();
                let mut keep_ranges = Vec::new();
                for ((off, bytes, flushed), ranges) in
                    self.pending.drain(..).zip(self.unflushed.drain(..))
                {
                    if flushed {
                        self.durable[off as usize..off as usize + bytes.len()]
                            .copy_from_slice(&bytes);
                    } else {
                        keep.push((off, bytes, flushed));
                        keep_ranges.push(ranges);
                    }
                }
                self.pending = keep;
                self.unflushed = keep_ranges;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn drop_unpersisted_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let pool = PmPool::new(PoolConfig::new(SIZE).mode(Mode::Tracked));
        let mut model = Model::new();
        for op in &ops {
            match op {
                Op::Store { off, bytes } => pool.write(*off, bytes).unwrap(),
                Op::Flush { off, len } => pool.flush(*off, *len as usize).unwrap(),
                Op::Fence => pool.fence(),
            }
            model.apply(op);
        }
        let img = pool.crash_image(CrashSpec::DropUnpersisted);
        prop_assert_eq!(img.bytes(), &model.durable[..], "durable image diverges from model");
    }

    #[test]
    fn keep_all_equals_current_contents(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let pool = PmPool::new(PoolConfig::new(SIZE).mode(Mode::Tracked));
        for op in &ops {
            match op {
                Op::Store { off, bytes } => pool.write(*off, bytes).unwrap(),
                Op::Flush { off, len } => pool.flush(*off, *len as usize).unwrap(),
                Op::Fence => pool.fence(),
            }
        }
        let img = pool.crash_image(CrashSpec::KeepAll);
        prop_assert_eq!(img.bytes().to_vec(), pool.contents());
    }

    #[test]
    fn persist_always_makes_it_durable(off in 0u64..SIZE-16, bytes in prop::collection::vec(any::<u8>(), 1..16)) {
        let pool = PmPool::new(PoolConfig::new(SIZE).mode(Mode::Tracked));
        pool.write(off, &bytes).unwrap();
        pool.persist(off, bytes.len()).unwrap();
        let img = pool.crash_image(CrashSpec::DropUnpersisted);
        prop_assert_eq!(&img.bytes()[off as usize..off as usize + bytes.len()], &bytes[..]);
    }
}
