//! The persistent shadow region and its poisoning operations.

use spp_core::{Result, SppError};
use spp_pmdk::ObjPool;

/// Bytes of application memory covered by one shadow byte.
pub const SHADOW_GRANULE: u64 = 8;

/// Right-redzone padding appended to every allocation.
pub const REDZONE_BYTES: u64 = 16;

/// Fully addressable granule.
const ADDRESSABLE: u8 = 8;

/// A view over the shadow object inside the pool.
///
/// The shadow covers the whole pool at 1/8 scale:
/// `shadow_byte(off) = shadow_base + off / 8`. The shadow object itself is
/// an ordinary pool allocation whose offset is stored in the pool's durable
/// user slot, so it is found again on reopen.
#[derive(Debug, Clone, Copy)]
pub struct Shadow {
    base: u64,
    covered: u64,
}

impl Shadow {
    /// Size of the shadow object needed to cover `pool_size` bytes.
    pub fn required_size(pool_size: u64) -> u64 {
        pool_size.div_ceil(SHADOW_GRANULE)
    }

    /// Create a view given the shadow object's pool offset.
    pub fn new(base: u64, pool_size: u64) -> Self {
        Shadow {
            base,
            covered: pool_size,
        }
    }

    /// Pool offset of the shadow byte covering application offset `off`.
    #[inline]
    fn byte_of(&self, off: u64) -> u64 {
        self.base + off / SHADOW_GRANULE
    }

    /// Check that `[off, off + len)` is fully addressable.
    ///
    /// # Errors
    ///
    /// [`SppError::OverflowDetected`] (mechanism `"shadow"`) on the first
    /// poisoned byte.
    pub fn check(&self, pool: &ObjPool, off: u64, len: u64) -> Result<()> {
        debug_assert!(len > 0);
        let first_g = off / SHADOW_GRANULE;
        let last_g = (off + len - 1) / SHADOW_GRANULE;
        let n_g = (last_g - first_g + 1) as usize;
        let mut shadow = [0u8; 64];
        let mut checked = 0usize;
        while checked < n_g {
            let chunk = (n_g - checked).min(64);
            pool.read(self.base + first_g + checked as u64, &mut shadow[..chunk])?;
            for (i, &s) in shadow[..chunk].iter().enumerate() {
                let g = first_g + (checked + i) as u64;
                // First byte within this granule that the access touches.
                let lo = off.max(g * SHADOW_GRANULE);
                // Last byte within this granule that the access touches.
                let hi = (off + len - 1).min(g * SHADOW_GRANULE + SHADOW_GRANULE - 1);
                let need = (hi - g * SHADOW_GRANULE) + 1; // prefix length needed
                if (s as u64) < need {
                    return Err(SppError::OverflowDetected {
                        va: lo,
                        len,
                        mechanism: "shadow",
                    });
                }
            }
            checked += chunk;
        }
        Ok(())
    }

    /// Mark `[off, off + size)` addressable and persist the shadow update.
    ///
    /// `off` must be granule-aligned (pool payloads are 16-aligned).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn unpoison(&self, pool: &ObjPool, off: u64, size: u64) -> Result<()> {
        debug_assert_eq!(off % SHADOW_GRANULE, 0);
        let full = size / SHADOW_GRANULE;
        let partial = size % SHADOW_GRANULE;
        let start = self.byte_of(off);
        if full > 0 {
            pool.pm().fill(start, ADDRESSABLE, full as usize)?;
        }
        if partial > 0 {
            pool.write(start + full, &[partial as u8])?;
        }
        let total = full + u64::from(partial > 0);
        pool.persist(start, total.max(1) as usize)?;
        Ok(())
    }

    /// Poison `[off, off + size)` and persist the shadow update.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn poison(&self, pool: &ObjPool, off: u64, size: u64) -> Result<()> {
        debug_assert_eq!(off % SHADOW_GRANULE, 0);
        let granules = size.div_ceil(SHADOW_GRANULE);
        let start = self.byte_of(off);
        pool.pm().fill(start, 0, granules as usize)?;
        pool.persist(start, granules.max(1) as usize)?;
        Ok(())
    }

    /// Total application bytes covered.
    pub fn covered(&self) -> u64 {
        self.covered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_pm::{PmPool, PoolConfig};
    use spp_pmdk::PoolOpts;
    use std::sync::Arc;

    fn setup() -> (ObjPool, Shadow) {
        let pm = Arc::new(PmPool::new(PoolConfig::new(1 << 20)));
        let pool = ObjPool::create(pm, PoolOpts::small()).unwrap();
        let size = Shadow::required_size(pool.pm().size());
        let obj = pool.zalloc(size).unwrap();
        let shadow = Shadow::new(obj.off, pool.pm().size());
        (pool, shadow)
    }

    #[test]
    fn default_is_poisoned() {
        let (pool, shadow) = setup();
        let err = shadow.check(&pool, 0x8000, 8).unwrap_err();
        assert!(matches!(
            err,
            SppError::OverflowDetected {
                mechanism: "shadow",
                ..
            }
        ));
    }

    #[test]
    fn unpoison_exact_range() {
        let (pool, shadow) = setup();
        shadow.unpoison(&pool, 0x8000, 20).unwrap();
        shadow.check(&pool, 0x8000, 20).unwrap();
        shadow.check(&pool, 0x8000 + 16, 4).unwrap();
        // Byte 20 is within the last granule's slack (20 % 8 = 4): bytes
        // 20..24 are *not* addressable.
        assert!(shadow.check(&pool, 0x8000 + 20, 1).is_err());
        // Past the last granule: poisoned.
        assert!(shadow.check(&pool, 0x8000 + 24, 1).is_err());
        // An access spanning the boundary is caught.
        assert!(shadow.check(&pool, 0x8000 + 16, 8).is_err());
    }

    #[test]
    fn poison_after_free() {
        let (pool, shadow) = setup();
        shadow.unpoison(&pool, 0x8000, 64).unwrap();
        shadow.check(&pool, 0x8000, 64).unwrap();
        shadow.poison(&pool, 0x8000, 64).unwrap();
        assert!(shadow.check(&pool, 0x8000, 1).is_err());
    }

    #[test]
    fn granule_math_spans_chunks() {
        let (pool, shadow) = setup();
        // > 64 granules to exercise the chunked loop.
        shadow.unpoison(&pool, 0x10000, 1024).unwrap();
        shadow.check(&pool, 0x10000, 1024).unwrap();
        assert!(shadow.check(&pool, 0x10000, 1025).is_err());
        assert!(shadow.check(&pool, 0x10000 + 512, 513).is_err());
    }

    #[test]
    fn required_size_covers_pool() {
        assert_eq!(Shadow::required_size(1 << 20), 1 << 17);
        assert_eq!(Shadow::required_size(100), 13);
    }
}
