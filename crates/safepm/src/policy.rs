//! The SafePM [`MemoryPolicy`] implementation.

use std::sync::Arc;

use spp_core::{MemoryPolicy, Result, SppError};
use spp_pmdk::{ObjPool, OidDest, OidKind, PmemOid};

use crate::shadow::{Shadow, REDZONE_BYTES};

/// The `SafePM` variant of Table I: per-access persistent shadow checks.
#[derive(Debug, Clone)]
pub struct SafePmPolicy {
    pool: Arc<ObjPool>,
    shadow: Shadow,
}

impl SafePmPolicy {
    /// Instrument a *fresh* pool: allocates the shadow object (1/8 of the
    /// pool) and records it in the pool's durable user slot.
    ///
    /// # Errors
    ///
    /// Allocation errors (the pool must have room for the shadow).
    pub fn create(pool: Arc<ObjPool>) -> Result<Self> {
        let size = Shadow::required_size(pool.pm().size());
        let obj = pool.zalloc(size)?;
        pool.set_user_slot(obj.off)?;
        let shadow = Shadow::new(obj.off, pool.pm().size());
        Ok(SafePmPolicy { pool, shadow })
    }

    /// Re-attach to a pool previously instrumented with
    /// [`SafePmPolicy::create`] — the shadow (and therefore all safety
    /// metadata) survived the restart inside the pool.
    ///
    /// # Errors
    ///
    /// [`SppError::Pmdk`] if the pool has no shadow recorded.
    pub fn open(pool: Arc<ObjPool>) -> Result<Self> {
        let off = pool.user_slot()?;
        if off == 0 {
            return Err(SppError::Pmdk(spp_pmdk::PmdkError::BadPool(
                "pool was not instrumented with SafePM (no shadow recorded)".into(),
            )));
        }
        let shadow = Shadow::new(off, pool.pm().size());
        Ok(SafePmPolicy { pool, shadow })
    }

    /// The shadow view (exposed for tests and diagnostics).
    pub fn shadow(&self) -> &Shadow {
        &self.shadow
    }

    /// Padded allocation size: payload + right redzone.
    fn padded(size: u64) -> u64 {
        size + REDZONE_BYTES
    }
}

impl MemoryPolicy for SafePmPolicy {
    fn name(&self) -> &'static str {
        "SafePM"
    }

    fn oid_kind(&self) -> OidKind {
        OidKind::Pmdk
    }

    fn pool(&self) -> &Arc<ObjPool> {
        &self.pool
    }

    #[inline]
    fn direct(&self, oid: PmemOid) -> u64 {
        if oid.is_null() {
            return 0;
        }
        self.pool.direct(oid)
    }

    #[inline]
    fn gep(&self, ptr: u64, delta: i64) -> u64 {
        ptr.wrapping_add(delta as u64)
    }

    #[inline]
    fn resolve(&self, ptr: u64, len: u64) -> Result<u64> {
        let off = self.pool.pm().resolve(ptr, len as usize)?;
        self.shadow.check(&self.pool, off, len.max(1))?;
        Ok(off)
    }

    fn alloc_oid(&self, dest: Option<OidDest>, size: u64, zero: bool) -> Result<PmemOid> {
        // Allocate payload + redzone, unpoison the payload, then publish —
        // so a crash never leaves a reachable-but-poisoned object.
        let padded = Self::padded(size);
        let oid = if zero {
            self.pool.zalloc(padded)?
        } else {
            self.pool.alloc(padded)?
        };
        self.shadow.unpoison(&self.pool, oid.off, size)?;
        if let Some(d) = dest {
            self.pool
                .publish_oid(d, PmemOid::new(oid.pool_uuid, oid.off, size))?;
        }
        Ok(PmemOid::new(oid.pool_uuid, oid.off, size))
    }

    fn free_oid(&self, dest: Option<OidDest>, oid: PmemOid) -> Result<()> {
        // Unpublish first (no dangling valid oid), then poison, then free.
        if let Some(d) = dest {
            self.pool.unpublish_oid(d)?;
        }
        let usable = self.pool.usable_size(oid)?;
        self.shadow.poison(&self.pool, oid.off, usable)?;
        self.pool
            .free(PmemOid::new(oid.pool_uuid, oid.off, usable))?;
        Ok(())
    }

    fn tx_alloc(&self, tx: &mut spp_pmdk::Tx<'_>, size: u64, zero: bool) -> Result<PmemOid> {
        let padded = Self::padded(size);
        let oid = if zero {
            tx.zalloc(padded)?
        } else {
            tx.alloc(padded)?
        };
        self.shadow.unpoison(&self.pool, oid.off, size)?;
        Ok(PmemOid::new(oid.pool_uuid, oid.off, size))
    }

    fn tx_free(&self, tx: &mut spp_pmdk::Tx<'_>, oid: PmemOid) -> Result<()> {
        // Poison eagerly. (If the transaction aborts after a tx_free, the
        // surviving object stays poisoned — a conservative false positive;
        // SafePM proper re-unpoisons via its tx callbacks.)
        let usable = self.pool.usable_size(oid)?;
        self.shadow.poison(&self.pool, oid.off, usable)?;
        tx.free(PmemOid::new(oid.pool_uuid, oid.off, usable))?;
        Ok(())
    }

    fn realloc_oid(&self, dest: OidDest, oid: PmemOid, new_size: u64) -> Result<PmemOid> {
        let new = self.alloc_oid(None, new_size, false)?;
        let old_usable = self.pool.usable_size(oid)?;
        let copy = (old_usable - REDZONE_BYTES.min(old_usable)).min(new_size);
        if copy > 0 {
            // Raw copy: both regions are live and in bounds by construction.
            let mut buf = vec![0u8; copy as usize];
            self.pool.read(oid.off, &mut buf)?;
            self.pool.write(new.off, &buf)?;
            self.pool.persist(new.off, copy as usize)?;
        }
        self.pool.publish_oid(dest, new)?;
        self.shadow.poison(&self.pool, oid.off, old_usable)?;
        self.pool
            .free(PmemOid::new(oid.pool_uuid, oid.off, old_usable))?;
        Ok(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_pm::{PmPool, PoolConfig};
    use spp_pmdk::PoolOpts;

    fn policy() -> SafePmPolicy {
        let pm = Arc::new(PmPool::new(PoolConfig::new(1 << 20)));
        let pool = Arc::new(ObjPool::create(pm, PoolOpts::small()).unwrap());
        SafePmPolicy::create(pool).unwrap()
    }

    #[test]
    fn in_bounds_ok() {
        let p = policy();
        let oid = p.zalloc(64).unwrap();
        let ptr = p.direct(oid);
        p.store_u64(ptr, 1).unwrap();
        p.store_u64(p.gep(ptr, 56), 2).unwrap();
        assert_eq!(p.load_u64(ptr).unwrap(), 1);
    }

    #[test]
    fn overflow_detected_at_granule_precision() {
        let p = policy();
        let oid = p.zalloc(64).unwrap();
        let ptr = p.direct(oid);
        // 64 is granule-aligned: first byte past the end is caught.
        let err = p.store(p.gep(ptr, 64), &[1]).unwrap_err();
        assert!(matches!(
            err,
            SppError::OverflowDetected {
                mechanism: "shadow",
                ..
            }
        ));
    }

    #[test]
    fn last_granule_prefix_is_byte_precise() {
        // The shadow byte encodes the addressable prefix, so contiguous
        // overflows are caught byte-precisely even mid-granule (42 % 8 = 2).
        let p = policy();
        let oid = p.zalloc(42).unwrap();
        let ptr = p.direct(oid);
        p.store(p.gep(ptr, 41), &[1]).unwrap(); // last valid byte
        assert!(p.store(p.gep(ptr, 42), &[1]).is_err());
    }

    #[test]
    fn redzone_jump_is_the_known_miss() {
        // The gap SPP closes: a *non-contiguous* overflow that leaps past
        // the redzone into another live allocation looks like a perfectly
        // valid access to the shadow — redzone-based tools cannot attribute
        // the target to the wrong object. SPP's distance tag catches this
        // (see `spp_core::spp_policy` tests); SafePM does not, which is why
        // it misses more RIPE attacks than SPP (Table IV).
        let p = policy();
        let a = p.zalloc(32).unwrap();
        let b = p.zalloc(32).unwrap();
        let pa = p.direct(a);
        let jump = (b.off - a.off) as i64; // well past a's redzone
        p.store_u64(p.gep(pa, jump), 0x41).unwrap(); // silent corruption of b
        assert_eq!(p.load_u64(p.direct(b)).unwrap(), 0x41);
    }

    #[test]
    fn free_poisons_whole_block() {
        let p = policy();
        let oid = p.zalloc(64).unwrap();
        let ptr = p.direct(oid);
        p.store_u64(ptr, 1).unwrap();
        p.free(oid).unwrap();
        let err = p.load_u64(ptr).unwrap_err();
        assert!(matches!(
            err,
            SppError::OverflowDetected {
                mechanism: "shadow",
                ..
            }
        ));
    }

    #[test]
    fn shadow_survives_reopen() {
        let pm = Arc::new(PmPool::new(
            PoolConfig::new(1 << 20).mode(spp_pm::Mode::Tracked),
        ));
        let pool = Arc::new(ObjPool::create(Arc::clone(&pm), PoolOpts::small()).unwrap());
        let p = SafePmPolicy::create(Arc::clone(&pool)).unwrap();
        let oid = p.zalloc(32).unwrap();
        let freed = p.zalloc(32).unwrap();
        p.free(freed).unwrap();
        // Crash and reopen: metadata must still protect.
        let img = pm.crash_image(spp_pm::CrashSpec::DropUnpersisted);
        let pm2 = Arc::new(PmPool::from_image(img, PoolConfig::new(0)));
        let pool2 = Arc::new(ObjPool::open(pm2).unwrap());
        let p2 = SafePmPolicy::open(pool2).unwrap();
        let ptr = p2.direct(oid);
        p2.load_u64(ptr).unwrap(); // live object still addressable
        let err = p2.load_u64(p2.gep(ptr, 32)).unwrap_err(); // overflow caught
        assert!(err.is_violation());
        let err = p2.load_u64(p2.direct(freed)).unwrap_err(); // freed caught
        assert!(err.is_violation());
    }

    #[test]
    fn alloc_into_publishes_after_unpoison() {
        let p = policy();
        let home = p.zalloc(64).unwrap();
        let hp = p.direct(home);
        let obj = p.zalloc_into_ptr(hp, 32).unwrap();
        let loaded = p.load_oid(hp).unwrap();
        assert_eq!(loaded.off, obj.off);
        p.store_u64(p.direct(loaded), 5).unwrap();
        p.free_from_ptr(hp, loaded).unwrap();
        assert!(p.load_oid(hp).unwrap().is_null());
    }

    #[test]
    fn realloc_moves_and_protects() {
        let p = policy();
        let home = p.zalloc(64).unwrap();
        let hp = p.direct(home);
        let obj = p.zalloc_into_ptr(hp, 32).unwrap();
        p.store(p.direct(obj), b"abcdefgh").unwrap();
        let new = p.realloc_from_ptr(hp, obj, 128).unwrap();
        let mut b = [0u8; 8];
        p.load(p.direct(new), &mut b).unwrap();
        assert_eq!(&b, b"abcdefgh");
        // Old location is poisoned now.
        assert!(p.load_u64(p.direct(obj)).unwrap_err().is_violation());
        // New bounds enforced at byte... granule precision.
        assert!(p.store(p.gep(p.direct(new), 128), &[1]).is_err());
    }

    #[test]
    fn open_requires_instrumented_pool() {
        let pm = Arc::new(PmPool::new(PoolConfig::new(1 << 20)));
        let pool = Arc::new(ObjPool::create(pm, PoolOpts::small()).unwrap());
        assert!(SafePmPolicy::open(pool).is_err());
    }
}
