//! # spp-safepm — the SafePM baseline
//!
//! SafePM (EuroSys '22) is the state-of-the-art PM memory-safety tool the
//! paper compares against: an AddressSanitizer-style *shadow memory*
//! approach where every 8-byte granule of the pool has one shadow byte, the
//! shadow itself lives **inside the PM pool** (so safety metadata survives
//! crashes), and objects are surrounded by poisoned redzones.
//!
//! This crate reimplements that mechanism as a [`spp_core::MemoryPolicy`] so
//! the same workloads run under `PMDK` / `SPP` / `SafePM` — the three
//! variants of the paper's Table I:
//!
//! * every access consults the persistent shadow (extra PM reads on the
//!   critical path — the cost the evaluation figures show);
//! * allocations are padded with a right redzone and the shadow is
//!   poisoned/unpoisoned and **persisted** on every heap operation;
//! * detection granularity is 8 bytes: overflows that stay within the last
//!   partially-addressable granule escape, which is exactly why SafePM
//!   misses a handful of RIPE attacks that SPP's byte-precise tag catches
//!   (Table IV: 6 vs 4 successful attacks).
//!
//! ## Shadow encoding
//!
//! Unlike ASan (0 = addressable), the durable default must be *poisoned* so
//! that a fresh pool needs no giant shadow initialisation write:
//!
//! | shadow byte | meaning                          |
//! |-------------|----------------------------------|
//! | `0`         | poisoned (unallocated / redzone) |
//! | `1..=7`     | first *k* bytes addressable      |
//! | `8`         | all 8 bytes addressable          |

mod policy;
mod shadow;

pub use policy::SafePmPolicy;
pub use shadow::{Shadow, REDZONE_BYTES, SHADOW_GRANULE};
