//! The wire protocol: compact length-prefixed frames.
//!
//! Every frame is `[u32 LE length][u8 opcode][payload]`, where `length`
//! counts the opcode byte plus the payload (so the minimum legal value is
//! 1). Requests and responses share the envelope; opcodes above `0x80` are
//! responses.
//!
//! | opcode | frame            | payload                              |
//! |--------|------------------|--------------------------------------|
//! | `0x01` | `PUT`            | `[u16 LE klen][key][value]`          |
//! | `0x02` | `GET`            | `[key]`                              |
//! | `0x03` | `DEL`            | `[key]`                              |
//! | `0x04` | `STATS`          | empty                                |
//! | `0x05` | `FLUSH`          | empty                                |
//! | `0x06` | `SHUTDOWN`       | empty                                |
//! | `0x07` | `PING`           | empty                                |
//! | `0x08` | `MULTI`          | `[u16 LE count][count nested frames]`|
//! | `0x09` | `REPL_BATCH`     | `[u32 LE shard][u64 LE seq][u16 LE count][count entries]` |
//! | `0x0A` | `PROMOTE`        | empty                                |
//! | `0x0B` | `REPL_HELLO`     | `[u32 LE shard count]`               |
//! | `0x80` | `OK`             | empty                                |
//! | `0x81` | `VALUE`          | `[value]`                            |
//! | `0x82` | `NOT_FOUND`      | empty                                |
//! | `0x83` | `ERR`            | UTF-8 message                        |
//! | `0x84` | `BUSY`           | empty                                |
//! | `0x85` | `STATS_BODY`     | UTF-8 `key=value` lines              |
//! | `0x86` | `PONG`           | empty                                |
//! | `0x87` | `MULTI_BODY`     | `[u16 LE count][count nested frames]`|
//! | `0x88` | `REPL_ACK`       | `[u32 LE shard][u64 LE seq]`         |
//!
//! `MULTI` carries a batch of complete nested frames (each with its own
//! length prefix) and is answered by a single `MULTI_BODY` with one nested
//! response per nested request, in order. Nesting is one level deep:
//! `MULTI` inside `MULTI` and `SHUTDOWN` inside `MULTI` are body errors,
//! rejected by opcode *before* the nested payload is parsed so a
//! pathological frame cannot recurse. The whole batch is validated eagerly
//! at parse time — a malformed nested frame is a body error on the outer
//! frame (the outer length prefix still bounds it, so the stream stays in
//! sync).
//!
//! `REPL_BATCH` is the primary→backup log-shipping frame: the redo payload
//! of one group-commit batch (`count` put/del entries, each
//! `[u8 kind][u16 LE klen][key]` plus `[u32 LE vlen][value]` for puts) for
//! shard `shard`, sequence-numbered per shard. Sequence numbers are dense
//! (each shipped frame consumes exactly one), so the backup validates them
//! and poisons the shard's stream on any gap, duplicate, or reorder. A
//! logical commit batch larger than one frame is chunked by the shipper
//! into several consecutive `REPL_BATCH`es; [`MAX_PUT_PAYLOAD`] guarantees
//! every accepted write's entry fits a frame. The backup applies each
//! frame behind its own durability boundary and answers `REPL_ACK` echoing
//! the same `(shard, seq)`. `REPL_HELLO` opens a replication connection:
//! the primary announces its shard count and the backup refuses a
//! mismatch. `PROMOTE` flips a backup into a primary: it drains in-flight
//! replication, fences every shard, and rejects further `REPL_BATCH`es.
//! Like `SHUTDOWN`, no replication frame may ride inside a `MULTI`, and
//! the batch body is validated eagerly at parse time.
//!
//! Decoding is zero-copy: [`decode_frame`] borrows the payload from the
//! connection buffer and [`parse_request`]/[`parse_response`] return
//! key/value slices into it. Errors split into two severities the server
//! relies on: *envelope* errors ([`WireError::is_envelope`]) mean the
//! length prefix cannot be trusted and the connection must be torn down
//! after an `ERR`, while *body* errors leave the frame boundary intact so
//! the stream stays in sync and service continues with the next frame.

use std::fmt;

/// Hard cap on `length` (opcode + payload). Values in this workspace are
/// ~1 KiB; 1 MiB leaves generous headroom while bounding per-connection
/// buffering.
pub const MAX_FRAME: usize = 1 << 20;

/// Envelope size: the `u32` length prefix.
pub const PREFIX: usize = 4;

/// Hard cap on a `PUT`'s key+value bytes, a shade under [`MAX_FRAME`]. The
/// slack is what makes every accepted write *replicable*: a redo entry
/// wraps the same key and value in 7 bytes of entry framing, and the
/// `REPL_BATCH` frame adds an opcode plus a 14-byte header — without this
/// cap a maximal `PUT` would be committed locally yet impossible to frame
/// for the backup. Enforced at parse time (body error) and asserted by the
/// encoder.
pub const MAX_PUT_PAYLOAD: usize = MAX_FRAME - 64;

// Request opcodes.
pub(crate) const OP_PUT: u8 = 0x01;
pub(crate) const OP_GET: u8 = 0x02;
pub(crate) const OP_DEL: u8 = 0x03;
pub(crate) const OP_STATS: u8 = 0x04;
pub(crate) const OP_FLUSH: u8 = 0x05;
pub(crate) const OP_SHUTDOWN: u8 = 0x06;
pub(crate) const OP_PING: u8 = 0x07;
pub(crate) const OP_MULTI: u8 = 0x08;
pub(crate) const OP_REPL_BATCH: u8 = 0x09;
pub(crate) const OP_PROMOTE: u8 = 0x0A;
pub(crate) const OP_REPL_HELLO: u8 = 0x0B;

// Response opcodes.
pub(crate) const OP_OK: u8 = 0x80;
pub(crate) const OP_VALUE: u8 = 0x81;
pub(crate) const OP_NOT_FOUND: u8 = 0x82;
pub(crate) const OP_ERR: u8 = 0x83;
pub(crate) const OP_BUSY: u8 = 0x84;
pub(crate) const OP_STATS_BODY: u8 = 0x85;
pub(crate) const OP_PONG: u8 = 0x86;
pub(crate) const OP_MULTI_BODY: u8 = 0x87;
pub(crate) const OP_REPL_ACK: u8 = 0x88;

/// A client request, borrowing key/value bytes from the receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request<'a> {
    /// Insert or update; acked only after the write is flushed + fenced.
    Put {
        /// The key.
        key: &'a [u8],
        /// The value.
        value: &'a [u8],
    },
    /// Look up a key.
    Get {
        /// The key.
        key: &'a [u8],
    },
    /// Remove a key.
    Del {
        /// The key.
        key: &'a [u8],
    },
    /// Engine introspection (key count, resident bytes, chain shape).
    Stats,
    /// Drain outstanding device writes (flush + fence).
    Flush,
    /// Graceful server shutdown: acked, then the listener quiesces.
    Shutdown,
    /// Liveness probe.
    Ping,
    /// A pipelined batch of nested requests, validated at parse time.
    /// Iterate with [`MultiBody::requests`].
    Multi(MultiBody<'a>),
    /// One replicated group-commit batch shipped primary→backup, validated
    /// at parse time. Iterate with [`ReplBatchBody::ops`].
    ReplBatch(ReplBatchBody<'a>),
    /// Promote a backup to primary: fence every shard and stop accepting
    /// `REPL_BATCH`.
    Promote,
    /// Replication handshake: the primary announces its shard count and
    /// the backup acks `OK` only when it matches its own layout, so
    /// mismatched ring configurations are refused before any batch ships.
    ReplHello {
        /// The primary's shard count.
        shards: u32,
    },
}

/// A server response, borrowing payload bytes from the receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response<'a> {
    /// Operation applied (and, for writes, durable).
    Ok,
    /// `GET` hit.
    Value(&'a [u8]),
    /// `GET`/`DEL` miss.
    NotFound,
    /// Protocol or engine error; the message is human-readable.
    Err(&'a str),
    /// Backpressure: the bounded request queue (or connection limit) is
    /// saturated; retry later.
    Busy,
    /// `STATS` body: UTF-8 `key=value` lines.
    Stats(&'a str),
    /// `PING` reply.
    Pong,
    /// Batched responses to a `MULTI`, one per nested request, in order.
    /// Iterate with [`MultiBody::responses`].
    Multi(MultiBody<'a>),
    /// The backup's acknowledgement that a `REPL_BATCH` is durable on its
    /// side, echoing the batch's shard and sequence number.
    ReplAck {
        /// The shard whose batch is being acknowledged.
        shard: u32,
        /// The per-shard batch sequence number being acknowledged.
        seq: u64,
    },
}

/// The validated body of a `MULTI`/`MULTI_BODY` frame: `count` nested
/// frames packed back to back, each with its own length prefix. Produced
/// only by [`parse_request`]/[`parse_response`], which verify every nested
/// frame up front, so the iterators below cannot fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiBody<'a> {
    count: u16,
    body: &'a [u8],
}

impl<'a> MultiBody<'a> {
    /// Number of nested frames in the batch (always ≥ 1).
    pub fn count(&self) -> u16 {
        self.count
    }

    /// Iterate the nested requests of a validated `MULTI` body.
    pub fn requests(&self) -> impl Iterator<Item = Request<'a>> + '_ {
        NestedFrames {
            body: self.body,
            remaining: self.count,
        }
        .map(|f| parse_request(&f).expect("MultiBody was validated at parse time"))
    }

    /// Iterate the nested responses of a validated `MULTI_BODY` body.
    pub fn responses(&self) -> impl Iterator<Item = Response<'a>> + '_ {
        NestedFrames {
            body: self.body,
            remaining: self.count,
        }
        .map(|f| parse_response(&f).expect("MultiBody was validated at parse time"))
    }
}

/// Raw-frame iterator over a validated nested-frame run.
struct NestedFrames<'a> {
    body: &'a [u8],
    remaining: u16,
}

impl<'a> Iterator for NestedFrames<'a> {
    type Item = RawFrame<'a>;

    fn next(&mut self) -> Option<RawFrame<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let f = decode_frame(self.body)
            .expect("MultiBody was validated at parse time")
            .expect("MultiBody was validated at parse time");
        self.body = &self.body[f.consumed..];
        Some(f)
    }
}

/// One redo entry inside a `REPL_BATCH`, borrowing from the receive
/// buffer. The entry kinds mirror the group committer's write batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplOp<'a> {
    /// Insert or update `key` with `value`.
    Put {
        /// The key.
        key: &'a [u8],
        /// The value.
        value: &'a [u8],
    },
    /// Remove `key`.
    Del {
        /// The key.
        key: &'a [u8],
    },
}

/// Entry-kind byte for a replicated put.
const REPL_KIND_PUT: u8 = 0;
/// Entry-kind byte for a replicated delete.
const REPL_KIND_DEL: u8 = 1;
/// Fixed `REPL_BATCH` header: `[u32 shard][u64 seq][u16 count]`.
const REPL_HEADER: usize = 4 + 8 + 2;

/// Most entry bytes one `REPL_BATCH` frame may carry: [`MAX_FRAME`] minus
/// the opcode byte and the fixed header. The shipping side chunks a
/// logical batch into frames that each respect this budget; thanks to
/// [`MAX_PUT_PAYLOAD`], any single accepted write's entry always fits.
pub(crate) const REPL_MAX_ENTRY_BYTES: usize = MAX_FRAME - 1 - REPL_HEADER;

/// Encoded size of one redo entry, mirroring [`encode_repl_batch`].
pub(crate) fn repl_entry_size(op: &ReplOp<'_>) -> usize {
    match op {
        ReplOp::Put { key, value } => 1 + 2 + key.len() + 4 + value.len(),
        ReplOp::Del { key } => 1 + 2 + key.len(),
    }
}

/// The validated body of a `REPL_BATCH` frame. Produced only by
/// [`parse_request`], which verifies every entry up front, so [`ops`]
/// cannot fail.
///
/// [`ops`]: ReplBatchBody::ops
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplBatchBody<'a> {
    /// The shard this batch belongs to.
    pub shard: u32,
    /// Per-shard monotonic batch sequence number.
    pub seq: u64,
    count: u16,
    entries: &'a [u8],
}

impl<'a> ReplBatchBody<'a> {
    /// Number of redo entries in the batch (always ≥ 1).
    pub fn count(&self) -> u16 {
        self.count
    }

    /// Iterate the validated redo entries.
    pub fn ops(&self) -> impl Iterator<Item = ReplOp<'a>> + '_ {
        ReplEntries {
            entries: self.entries,
            remaining: self.count,
        }
    }
}

/// Entry iterator over a validated `REPL_BATCH` body.
struct ReplEntries<'a> {
    entries: &'a [u8],
    remaining: u16,
}

impl<'a> Iterator for ReplEntries<'a> {
    type Item = ReplOp<'a>;

    fn next(&mut self) -> Option<ReplOp<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (op, rest) =
            split_repl_entry(self.entries).expect("ReplBatchBody was validated at parse time");
        self.entries = rest;
        Some(op)
    }
}

/// Split one redo entry off `e`, returning it and the remaining bytes.
fn split_repl_entry(e: &[u8]) -> Result<(ReplOp<'_>, &[u8]), &'static str> {
    let (&kind, e) = e.split_first().ok_or("truncated entry kind")?;
    if e.len() < 2 {
        return Err("missing key-length prefix");
    }
    let klen = u16::from_le_bytes([e[0], e[1]]) as usize;
    let e = &e[2..];
    if e.len() < klen {
        return Err("key length exceeds payload");
    }
    let (key, e) = e.split_at(klen);
    match kind {
        REPL_KIND_DEL => Ok((ReplOp::Del { key }, e)),
        REPL_KIND_PUT => {
            if e.len() < 4 {
                return Err("missing value-length prefix");
            }
            let vlen = u32::from_le_bytes([e[0], e[1], e[2], e[3]]) as usize;
            let e = &e[4..];
            if e.len() < vlen {
                return Err("value length exceeds payload");
            }
            let (value, e) = e.split_at(vlen);
            Ok((ReplOp::Put { key, value }, e))
        }
        _ => Err("unknown entry kind"),
    }
}

/// Validate a `REPL_BATCH` payload: the fixed header followed by exactly
/// `count` well-formed entries and nothing else.
fn validate_repl_batch(p: &[u8]) -> Result<ReplBatchBody<'_>, WireError> {
    let bad = |reason| WireError::BadPayload {
        opcode: OP_REPL_BATCH,
        reason,
    };
    if p.len() < REPL_HEADER {
        return Err(bad("truncated header"));
    }
    let shard = u32::from_le_bytes([p[0], p[1], p[2], p[3]]);
    let seq = u64::from_le_bytes([p[4], p[5], p[6], p[7], p[8], p[9], p[10], p[11]]);
    let count = u16::from_le_bytes([p[12], p[13]]);
    if count == 0 {
        return Err(bad("empty batch"));
    }
    let entries = &p[REPL_HEADER..];
    let mut rest = entries;
    for _ in 0..count {
        rest = split_repl_entry(rest).map_err(bad)?.1;
    }
    if !rest.is_empty() {
        return Err(bad("trailing bytes after final entry"));
    }
    Ok(ReplBatchBody {
        shard,
        seq,
        count,
        entries,
    })
}

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_FRAME`]; the stream cannot be
    /// trusted to resynchronise.
    FrameTooLarge {
        /// The declared length.
        len: usize,
    },
    /// The length prefix is zero (no opcode byte); envelope-level garbage.
    EmptyFrame,
    /// Unknown opcode; the frame boundary is still known.
    BadOpcode(u8),
    /// The payload does not match the opcode's schema.
    BadPayload {
        /// The opcode whose payload was malformed.
        opcode: u8,
        /// What was wrong.
        reason: &'static str,
    },
}

impl WireError {
    /// Whether this is an envelope error — the framing itself is broken, so
    /// the connection must be closed (after an `ERR`) rather than resynced.
    pub fn is_envelope(&self) -> bool {
        matches!(
            self,
            WireError::FrameTooLarge { .. } | WireError::EmptyFrame
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds maximum {MAX_FRAME}")
            }
            WireError::EmptyFrame => write!(f, "zero-length frame (no opcode)"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadPayload { opcode, reason } => {
                write!(f, "malformed payload for opcode {opcode:#04x}: {reason}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A framed-but-unparsed message: opcode, borrowed payload, and the number
/// of buffer bytes the frame occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawFrame<'a> {
    /// The opcode byte.
    pub opcode: u8,
    /// The payload, borrowed from the receive buffer.
    pub payload: &'a [u8],
    /// Total encoded size (prefix + opcode + payload): advance the buffer
    /// by this much once the frame is handled.
    pub consumed: usize,
}

/// Split the next frame off `buf`. `Ok(None)` means more bytes are needed
/// (a truncated prefix or partial payload is not an error — the peer may
/// still be sending); errors are envelope-level only.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] / [`WireError::EmptyFrame`].
pub fn decode_frame(buf: &[u8]) -> Result<Option<RawFrame<'_>>, WireError> {
    if buf.len() < PREFIX {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len == 0 {
        return Err(WireError::EmptyFrame);
    }
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge { len });
    }
    if buf.len() < PREFIX + len {
        return Ok(None);
    }
    Ok(Some(RawFrame {
        opcode: buf[PREFIX],
        payload: &buf[PREFIX + 1..PREFIX + len],
        consumed: PREFIX + len,
    }))
}

/// Parse a request body. Body errors leave the stream in sync.
///
/// # Errors
///
/// [`WireError::BadOpcode`] / [`WireError::BadPayload`].
pub fn parse_request<'a>(frame: &RawFrame<'a>) -> Result<Request<'a>, WireError> {
    let p = frame.payload;
    let bad = |reason| WireError::BadPayload {
        opcode: frame.opcode,
        reason,
    };
    match frame.opcode {
        OP_PUT => {
            if p.len() < 2 {
                return Err(bad("missing key-length prefix"));
            }
            let klen = u16::from_le_bytes([p[0], p[1]]) as usize;
            if p.len() < 2 + klen {
                return Err(bad("key length exceeds payload"));
            }
            if p.len() > 2 + MAX_PUT_PAYLOAD {
                return Err(bad("key+value exceed MAX_PUT_PAYLOAD"));
            }
            Ok(Request::Put {
                key: &p[2..2 + klen],
                value: &p[2 + klen..],
            })
        }
        OP_GET => Ok(Request::Get { key: p }),
        OP_DEL => Ok(Request::Del { key: p }),
        OP_STATS => expect_empty(p, Request::Stats, bad),
        OP_FLUSH => expect_empty(p, Request::Flush, bad),
        OP_SHUTDOWN => expect_empty(p, Request::Shutdown, bad),
        OP_PING => expect_empty(p, Request::Ping, bad),
        OP_MULTI => Ok(Request::Multi(validate_multi(p, frame.opcode, true)?)),
        OP_REPL_BATCH => Ok(Request::ReplBatch(validate_repl_batch(p)?)),
        OP_PROMOTE => expect_empty(p, Request::Promote, bad),
        OP_REPL_HELLO => {
            if p.len() != 4 {
                return Err(bad("REPL_HELLO payload must be 4 bytes"));
            }
            Ok(Request::ReplHello {
                shards: u32::from_le_bytes([p[0], p[1], p[2], p[3]]),
            })
        }
        op => Err(WireError::BadOpcode(op)),
    }
}

/// Validate a `MULTI`/`MULTI_BODY` payload: `[u16 LE count]` followed by
/// exactly `count` well-formed nested frames and nothing else. Nested
/// `MULTI`/`SHUTDOWN` opcodes are rejected *before* their payloads are
/// parsed, so recursion never goes more than one level deep regardless of
/// input.
fn validate_multi(p: &[u8], opcode: u8, is_request: bool) -> Result<MultiBody<'_>, WireError> {
    let bad = |reason| WireError::BadPayload { opcode, reason };
    if p.len() < 2 {
        return Err(bad("missing batch count"));
    }
    let count = u16::from_le_bytes([p[0], p[1]]);
    if count == 0 {
        return Err(bad("empty batch"));
    }
    let body = &p[2..];
    let mut rest = body;
    for _ in 0..count {
        let frame = match decode_frame(rest) {
            Ok(Some(f)) => f,
            Ok(None) => return Err(bad("truncated nested frame")),
            Err(_) => return Err(bad("nested frame envelope is malformed")),
        };
        // Opcode screen first: keeps validation non-recursive.
        if frame.opcode == OP_MULTI || frame.opcode == OP_MULTI_BODY {
            return Err(bad("MULTI may not nest"));
        }
        if frame.opcode == OP_SHUTDOWN {
            return Err(bad("SHUTDOWN may not ride in a MULTI"));
        }
        if frame.opcode == OP_REPL_BATCH
            || frame.opcode == OP_PROMOTE
            || frame.opcode == OP_REPL_HELLO
        {
            return Err(bad("replication frames may not ride in a MULTI"));
        }
        let parsed = if is_request {
            parse_request(&frame).map(|_| ())
        } else {
            parse_response(&frame).map(|_| ())
        };
        if parsed.is_err() {
            return Err(bad("malformed nested frame body"));
        }
        rest = &rest[frame.consumed..];
    }
    if !rest.is_empty() {
        return Err(bad("trailing bytes after final nested frame"));
    }
    Ok(MultiBody { count, body })
}

/// Parse a response body.
///
/// # Errors
///
/// [`WireError::BadOpcode`] / [`WireError::BadPayload`].
pub fn parse_response<'a>(frame: &RawFrame<'a>) -> Result<Response<'a>, WireError> {
    let p = frame.payload;
    let bad = |reason| WireError::BadPayload {
        opcode: frame.opcode,
        reason,
    };
    match frame.opcode {
        OP_OK => expect_empty(p, Response::Ok, bad),
        OP_VALUE => Ok(Response::Value(p)),
        OP_NOT_FOUND => expect_empty(p, Response::NotFound, bad),
        OP_ERR => Ok(Response::Err(
            std::str::from_utf8(p).map_err(|_| bad("ERR message is not UTF-8"))?,
        )),
        OP_BUSY => expect_empty(p, Response::Busy, bad),
        OP_STATS_BODY => Ok(Response::Stats(
            std::str::from_utf8(p).map_err(|_| bad("STATS body is not UTF-8"))?,
        )),
        OP_PONG => expect_empty(p, Response::Pong, bad),
        OP_MULTI_BODY => Ok(Response::Multi(validate_multi(p, frame.opcode, false)?)),
        OP_REPL_ACK => {
            if p.len() != 12 {
                return Err(bad("REPL_ACK payload must be 12 bytes"));
            }
            Ok(Response::ReplAck {
                shard: u32::from_le_bytes([p[0], p[1], p[2], p[3]]),
                seq: u64::from_le_bytes([p[4], p[5], p[6], p[7], p[8], p[9], p[10], p[11]]),
            })
        }
        op => Err(WireError::BadOpcode(op)),
    }
}

fn expect_empty<T>(
    payload: &[u8],
    ok: T,
    bad: impl Fn(&'static str) -> WireError,
) -> Result<T, WireError> {
    if payload.is_empty() {
        Ok(ok)
    } else {
        Err(bad("payload must be empty"))
    }
}

/// Decode one complete request (envelope + body) from `buf`.
///
/// # Errors
///
/// Any [`WireError`].
pub fn decode_request(buf: &[u8]) -> Result<Option<(Request<'_>, usize)>, WireError> {
    match decode_frame(buf)? {
        None => Ok(None),
        Some(frame) => Ok(Some((parse_request(&frame)?, frame.consumed))),
    }
}

/// Decode one complete response (envelope + body) from `buf`.
///
/// # Errors
///
/// Any [`WireError`].
pub fn decode_response(buf: &[u8]) -> Result<Option<(Response<'_>, usize)>, WireError> {
    match decode_frame(buf)? {
        None => Ok(None),
        Some(frame) => Ok(Some((parse_response(&frame)?, frame.consumed))),
    }
}

fn frame_header(out: &mut Vec<u8>, opcode: u8, payload_len: usize) {
    debug_assert!(payload_len < MAX_FRAME, "frame exceeds MAX_FRAME");
    out.extend_from_slice(&((1 + payload_len) as u32).to_le_bytes());
    out.push(opcode);
}

/// Append the encoding of `req` to `out`.
///
/// # Panics
///
/// Panics if a `PUT` key exceeds `u16::MAX` bytes or its key+value exceed
/// [`MAX_PUT_PAYLOAD`] (the blocking client validates sizes before
/// encoding).
pub fn encode_request(out: &mut Vec<u8>, req: &Request<'_>) {
    match req {
        Request::Put { key, value } => {
            assert!(key.len() <= u16::MAX as usize, "PUT key too long");
            assert!(
                key.len() + value.len() <= MAX_PUT_PAYLOAD,
                "PUT payload exceeds MAX_PUT_PAYLOAD"
            );
            frame_header(out, OP_PUT, 2 + key.len() + value.len());
            out.extend_from_slice(&(key.len() as u16).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(value);
        }
        Request::Get { key } => {
            frame_header(out, OP_GET, key.len());
            out.extend_from_slice(key);
        }
        Request::Del { key } => {
            frame_header(out, OP_DEL, key.len());
            out.extend_from_slice(key);
        }
        Request::Stats => frame_header(out, OP_STATS, 0),
        Request::Flush => frame_header(out, OP_FLUSH, 0),
        Request::Shutdown => frame_header(out, OP_SHUTDOWN, 0),
        Request::Ping => frame_header(out, OP_PING, 0),
        Request::Multi(mb) => {
            frame_header(out, OP_MULTI, 2 + mb.body.len());
            out.extend_from_slice(&mb.count.to_le_bytes());
            out.extend_from_slice(mb.body);
        }
        Request::ReplBatch(rb) => {
            frame_header(out, OP_REPL_BATCH, REPL_HEADER + rb.entries.len());
            out.extend_from_slice(&rb.shard.to_le_bytes());
            out.extend_from_slice(&rb.seq.to_le_bytes());
            out.extend_from_slice(&rb.count.to_le_bytes());
            out.extend_from_slice(rb.entries);
        }
        Request::Promote => frame_header(out, OP_PROMOTE, 0),
        Request::ReplHello { shards } => {
            frame_header(out, OP_REPL_HELLO, 4);
            out.extend_from_slice(&shards.to_le_bytes());
        }
    }
}

/// Encode one replicated group-commit batch as a `REPL_BATCH` frame
/// appended to `out`.
///
/// # Panics
///
/// Panics if the batch is empty, exceeds `u16::MAX` entries, a key exceeds
/// `u16::MAX` bytes, a value exceeds `u32::MAX` bytes, or the assembled
/// frame would exceed [`MAX_FRAME`].
pub fn encode_repl_batch(out: &mut Vec<u8>, shard: u32, seq: u64, ops: &[ReplOp<'_>]) {
    assert!(!ops.is_empty(), "REPL_BATCH must be non-empty");
    assert!(ops.len() <= u16::MAX as usize, "REPL_BATCH too large");
    let mut entries = Vec::new();
    for op in ops {
        match op {
            ReplOp::Put { key, value } => {
                assert!(key.len() <= u16::MAX as usize, "REPL_BATCH key too long");
                assert!(
                    value.len() <= u32::MAX as usize,
                    "REPL_BATCH value too long"
                );
                entries.push(REPL_KIND_PUT);
                entries.extend_from_slice(&(key.len() as u16).to_le_bytes());
                entries.extend_from_slice(key);
                entries.extend_from_slice(&(value.len() as u32).to_le_bytes());
                entries.extend_from_slice(value);
            }
            ReplOp::Del { key } => {
                assert!(key.len() <= u16::MAX as usize, "REPL_BATCH key too long");
                entries.push(REPL_KIND_DEL);
                entries.extend_from_slice(&(key.len() as u16).to_le_bytes());
                entries.extend_from_slice(key);
            }
        }
    }
    assert!(
        1 + REPL_HEADER + entries.len() <= MAX_FRAME,
        "REPL_BATCH exceeds MAX_FRAME"
    );
    frame_header(out, OP_REPL_BATCH, REPL_HEADER + entries.len());
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u16).to_le_bytes());
    out.extend_from_slice(&entries);
}

/// Encode a batch of requests as one `MULTI` frame appended to `out`.
///
/// # Panics
///
/// Panics if the batch is empty, exceeds `u16::MAX` entries, contains a
/// nested `Multi` or `Shutdown`, or the assembled frame would exceed
/// [`MAX_FRAME`].
pub fn encode_multi_request(out: &mut Vec<u8>, reqs: &[Request<'_>]) {
    assert!(!reqs.is_empty(), "MULTI batch must be non-empty");
    assert!(reqs.len() <= u16::MAX as usize, "MULTI batch too large");
    let mut body = Vec::new();
    for r in reqs {
        assert!(
            !matches!(
                r,
                Request::Multi(_)
                    | Request::Shutdown
                    | Request::ReplBatch(_)
                    | Request::Promote
                    | Request::ReplHello { .. }
            ),
            "MULTI may not nest MULTI, SHUTDOWN, or replication frames"
        );
        encode_request(&mut body, r);
    }
    assert!(1 + 2 + body.len() <= MAX_FRAME, "MULTI exceeds MAX_FRAME");
    frame_header(out, OP_MULTI, 2 + body.len());
    out.extend_from_slice(&(reqs.len() as u16).to_le_bytes());
    out.extend_from_slice(&body);
}

/// Encode a batch of responses as one `MULTI_BODY` frame appended to `out`.
///
/// # Panics
///
/// Panics under the same conditions as [`encode_multi_request`].
pub fn encode_multi_response(out: &mut Vec<u8>, resps: &[Response<'_>]) {
    assert!(
        try_encode_multi_response(out, resps),
        "MULTI_BODY exceeds MAX_FRAME"
    );
}

/// Fallible variant of [`encode_multi_response`] for the server side, where
/// aggregate size is driven by stored values a client chose (a `MULTI` of
/// `GET`s can fan out to more bytes than the request frame): returns `false`
/// and leaves `out` untouched when the assembled frame would exceed
/// [`MAX_FRAME`], instead of panicking.
///
/// # Panics
///
/// Still panics on programmer errors: an empty batch, more than `u16::MAX`
/// entries, or a nested `Multi`.
pub fn try_encode_multi_response(out: &mut Vec<u8>, resps: &[Response<'_>]) -> bool {
    assert!(!resps.is_empty(), "MULTI_BODY batch must be non-empty");
    assert!(
        resps.len() <= u16::MAX as usize,
        "MULTI_BODY batch too large"
    );
    let mut body = Vec::new();
    for r in resps {
        assert!(
            !matches!(r, Response::Multi(_)),
            "MULTI_BODY may not nest MULTI_BODY"
        );
        encode_response(&mut body, r);
    }
    if 1 + 2 + body.len() > MAX_FRAME {
        return false;
    }
    frame_header(out, OP_MULTI_BODY, 2 + body.len());
    out.extend_from_slice(&(resps.len() as u16).to_le_bytes());
    out.extend_from_slice(&body);
    true
}

/// Append the encoding of `resp` to `out`.
pub fn encode_response(out: &mut Vec<u8>, resp: &Response<'_>) {
    match resp {
        Response::Ok => frame_header(out, OP_OK, 0),
        Response::Value(v) => {
            frame_header(out, OP_VALUE, v.len());
            out.extend_from_slice(v);
        }
        Response::NotFound => frame_header(out, OP_NOT_FOUND, 0),
        Response::Err(msg) => {
            frame_header(out, OP_ERR, msg.len());
            out.extend_from_slice(msg.as_bytes());
        }
        Response::Busy => frame_header(out, OP_BUSY, 0),
        Response::Stats(body) => {
            frame_header(out, OP_STATS_BODY, body.len());
            out.extend_from_slice(body.as_bytes());
        }
        Response::Pong => frame_header(out, OP_PONG, 0),
        Response::Multi(mb) => {
            frame_header(out, OP_MULTI_BODY, 2 + mb.body.len());
            out.extend_from_slice(&mb.count.to_le_bytes());
            out.extend_from_slice(mb.body);
        }
        Response::ReplAck { shard, seq } => {
            frame_header(out, OP_REPL_ACK, 12);
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let reqs = [
            Request::Put {
                key: b"0123456789abcdef",
                value: b"hello",
            },
            Request::Put {
                key: b"",
                value: b"",
            },
            Request::Get { key: b"k" },
            Request::Del { key: b"gone" },
            Request::Stats,
            Request::Flush,
            Request::Shutdown,
            Request::Ping,
        ];
        let mut buf = Vec::new();
        for r in &reqs {
            encode_request(&mut buf, r);
        }
        let mut off = 0;
        for r in &reqs {
            let (got, n) = decode_request(&buf[off..]).unwrap().unwrap();
            assert_eq!(&got, r);
            off += n;
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn response_roundtrips() {
        let resps = [
            Response::Ok,
            Response::Value(b"v"),
            Response::Value(b""),
            Response::NotFound,
            Response::Err("bad \u{1F525}"),
            Response::Busy,
            Response::Stats("keys=3\nbytes=99\n"),
            Response::Pong,
        ];
        let mut buf = Vec::new();
        for r in &resps {
            encode_response(&mut buf, r);
        }
        let mut off = 0;
        for r in &resps {
            let (got, n) = decode_response(&buf[off..]).unwrap().unwrap();
            assert_eq!(&got, r);
            off += n;
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn truncated_prefix_and_payload_want_more() {
        let mut buf = Vec::new();
        encode_request(&mut buf, &Request::Get { key: b"wanted" });
        for cut in 0..buf.len() {
            assert_eq!(decode_request(&buf[..cut]).unwrap(), None, "cut={cut}");
        }
    }

    #[test]
    fn oversized_frame_is_envelope_error() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        buf.push(OP_GET);
        let err = decode_frame(&buf).unwrap_err();
        assert!(matches!(err, WireError::FrameTooLarge { .. }));
        assert!(err.is_envelope());
    }

    #[test]
    fn zero_frame_is_envelope_error() {
        let buf = 0u32.to_le_bytes();
        let err = decode_frame(&buf).unwrap_err();
        assert_eq!(err, WireError::EmptyFrame);
        assert!(err.is_envelope());
    }

    #[test]
    fn bad_opcode_is_body_error_with_known_boundary() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[0x7F, 1, 2]);
        let frame = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(frame.consumed, buf.len());
        let err = parse_request(&frame).unwrap_err();
        assert_eq!(err, WireError::BadOpcode(0x7F));
        assert!(!err.is_envelope());
    }

    #[test]
    fn put_key_longer_than_payload_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.push(OP_PUT);
        buf.extend_from_slice(&100u16.to_le_bytes());
        buf.push(b'k');
        let frame = decode_frame(&buf).unwrap().unwrap();
        assert!(matches!(
            parse_request(&frame).unwrap_err(),
            WireError::BadPayload { .. }
        ));
    }

    #[test]
    fn nonempty_payload_on_empty_ops_rejected() {
        for op in [OP_STATS, OP_FLUSH, OP_SHUTDOWN, OP_PING, OP_OK, OP_PONG] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&2u32.to_le_bytes());
            buf.extend_from_slice(&[op, 0xEE]);
            let frame = decode_frame(&buf).unwrap().unwrap();
            let res = if op < 0x80 {
                parse_request(&frame).map(|_| ())
            } else {
                parse_response(&frame).map(|_| ())
            };
            assert!(matches!(res, Err(WireError::BadPayload { .. })), "{op:#x}");
        }
    }

    #[test]
    fn multi_request_roundtrips() {
        let reqs = [
            Request::Put {
                key: b"0123456789abcdef",
                value: b"v0",
            },
            Request::Get { key: b"k" },
            Request::Del { key: b"gone" },
            Request::Ping,
            Request::Stats,
            Request::Flush,
        ];
        let mut buf = Vec::new();
        encode_multi_request(&mut buf, &reqs);
        let (got, n) = decode_request(&buf).unwrap().unwrap();
        assert_eq!(n, buf.len());
        let Request::Multi(mb) = got else {
            panic!("expected Multi, got {got:?}");
        };
        assert_eq!(mb.count() as usize, reqs.len());
        let nested: Vec<_> = mb.requests().collect();
        assert_eq!(nested, reqs);
    }

    #[test]
    fn multi_response_roundtrips() {
        let resps = [
            Response::Ok,
            Response::Value(b"payload"),
            Response::NotFound,
            Response::Err("engine said no"),
            Response::Busy,
            Response::Pong,
        ];
        let mut buf = Vec::new();
        encode_multi_response(&mut buf, &resps);
        let (got, n) = decode_response(&buf).unwrap().unwrap();
        assert_eq!(n, buf.len());
        let Response::Multi(mb) = got else {
            panic!("expected Multi, got {got:?}");
        };
        let nested: Vec<_> = mb.responses().collect();
        assert_eq!(nested, resps);
    }

    #[test]
    fn multi_reencodes_byte_identically() {
        let reqs = [Request::Get { key: b"a" }, Request::Ping];
        let mut buf = Vec::new();
        encode_multi_request(&mut buf, &reqs);
        let (got, _) = decode_request(&buf).unwrap().unwrap();
        let mut again = Vec::new();
        encode_request(&mut again, &got);
        assert_eq!(again, buf);
    }

    #[test]
    fn multi_rejects_nested_multi_and_shutdown() {
        // Hand-build MULTI bodies: count=1, one nested frame.
        for inner_op in [OP_MULTI, OP_MULTI_BODY, OP_SHUTDOWN] {
            let mut nested = Vec::new();
            frame_header(&mut nested, inner_op, 0);
            let mut buf = Vec::new();
            frame_header(&mut buf, OP_MULTI, 2 + nested.len());
            buf.extend_from_slice(&1u16.to_le_bytes());
            buf.extend_from_slice(&nested);
            let frame = decode_frame(&buf).unwrap().unwrap();
            let err = parse_request(&frame).unwrap_err();
            assert!(
                matches!(err, WireError::BadPayload { .. }),
                "{inner_op:#x}: {err:?}"
            );
            assert!(!err.is_envelope());
        }
    }

    #[test]
    fn multi_rejects_zero_count_truncation_and_trailing_bytes() {
        // count = 0
        let mut buf = Vec::new();
        frame_header(&mut buf, OP_MULTI, 2);
        buf.extend_from_slice(&0u16.to_le_bytes());
        let f = decode_frame(&buf).unwrap().unwrap();
        assert!(parse_request(&f).is_err());

        // count = 2 but only one nested frame present
        let mut nested = Vec::new();
        encode_request(&mut nested, &Request::Ping);
        let mut buf = Vec::new();
        frame_header(&mut buf, OP_MULTI, 2 + nested.len());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&nested);
        let f = decode_frame(&buf).unwrap().unwrap();
        assert!(parse_request(&f).is_err());

        // count = 1 with garbage after the nested frame
        let mut buf = Vec::new();
        frame_header(&mut buf, OP_MULTI, 2 + nested.len() + 1);
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&nested);
        buf.push(0xEE);
        let f = decode_frame(&buf).unwrap().unwrap();
        assert!(parse_request(&f).is_err());
    }

    #[test]
    fn malformed_multi_keeps_stream_in_sync() {
        // A MULTI whose nested frame is bodily malformed, followed by a
        // PING: the MULTI is a body error and the PING still parses.
        let mut nested = Vec::new();
        frame_header(&mut nested, OP_STATS, 1);
        nested.push(0xAA); // STATS payload must be empty
        let mut buf = Vec::new();
        frame_header(&mut buf, OP_MULTI, 2 + nested.len());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&nested);
        encode_request(&mut buf, &Request::Ping);

        let f = decode_frame(&buf).unwrap().unwrap();
        let err = parse_request(&f).unwrap_err();
        assert!(!err.is_envelope());
        let (next, _) = decode_request(&buf[f.consumed..]).unwrap().unwrap();
        assert_eq!(next, Request::Ping);
    }

    #[test]
    fn deeply_nested_multi_does_not_recurse() {
        // MULTI(MULTI(MULTI(...))) stacked ~100k deep must be rejected in
        // O(1) without walking (or recursing into) the nesting.
        let mut inner = Vec::new();
        frame_header(&mut inner, OP_PING, 0);
        for _ in 0..100_000 {
            let mut outer = Vec::new();
            frame_header(&mut outer, OP_MULTI, 2 + inner.len());
            outer.extend_from_slice(&1u16.to_le_bytes());
            outer.extend_from_slice(&inner);
            if outer.len() > MAX_FRAME {
                break;
            }
            inner = outer;
        }
        let f = decode_frame(&inner).unwrap().unwrap();
        assert!(matches!(
            parse_request(&f).unwrap_err(),
            WireError::BadPayload { .. }
        ));
    }

    #[test]
    fn repl_batch_roundtrips() {
        let ops = [
            ReplOp::Put {
                key: b"0123456789abcdef",
                value: b"v0",
            },
            ReplOp::Del { key: b"gone" },
            ReplOp::Put {
                key: b"k",
                value: b"",
            },
        ];
        let mut buf = Vec::new();
        encode_repl_batch(&mut buf, 3, 42, &ops);
        let (got, n) = decode_request(&buf).unwrap().unwrap();
        assert_eq!(n, buf.len());
        let Request::ReplBatch(rb) = got else {
            panic!("expected ReplBatch, got {got:?}");
        };
        assert_eq!((rb.shard, rb.seq, rb.count() as usize), (3, 42, ops.len()));
        let nested: Vec<_> = rb.ops().collect();
        assert_eq!(nested, ops);

        // Re-encoding the parsed body is byte-identical.
        let mut again = Vec::new();
        encode_request(&mut again, &Request::ReplBatch(rb));
        assert_eq!(again, buf);
    }

    #[test]
    fn promote_and_repl_ack_roundtrip() {
        let mut buf = Vec::new();
        encode_request(&mut buf, &Request::Promote);
        let (got, _) = decode_request(&buf).unwrap().unwrap();
        assert_eq!(got, Request::Promote);

        let mut buf = Vec::new();
        encode_response(&mut buf, &Response::ReplAck { shard: 7, seq: 900 });
        let (got, n) = decode_response(&buf).unwrap().unwrap();
        assert_eq!(n, buf.len());
        assert_eq!(got, Response::ReplAck { shard: 7, seq: 900 });
    }

    #[test]
    fn repl_batch_rejects_malformed_bodies() {
        // Truncated header.
        let mut buf = Vec::new();
        frame_header(&mut buf, OP_REPL_BATCH, 5);
        buf.extend_from_slice(&[0; 5]);
        let f = decode_frame(&buf).unwrap().unwrap();
        assert!(matches!(
            parse_request(&f).unwrap_err(),
            WireError::BadPayload { .. }
        ));

        // count = 0.
        let mut buf = Vec::new();
        frame_header(&mut buf, OP_REPL_BATCH, REPL_HEADER);
        buf.extend_from_slice(&[0; REPL_HEADER]);
        let f = decode_frame(&buf).unwrap().unwrap();
        assert!(parse_request(&f).is_err());

        // Entry with an unknown kind byte.
        let mut buf = Vec::new();
        frame_header(&mut buf, OP_REPL_BATCH, REPL_HEADER + 1);
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.push(9);
        let f = decode_frame(&buf).unwrap().unwrap();
        assert!(parse_request(&f).is_err());

        // Valid single-entry batch with trailing garbage.
        let mut good = Vec::new();
        encode_repl_batch(&mut good, 0, 1, &[ReplOp::Del { key: b"k" }]);
        let mut buf = good[..PREFIX].to_vec();
        let len = u32::from_le_bytes([good[0], good[1], good[2], good[3]]) + 1;
        buf.clear();
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&good[PREFIX..]);
        buf.push(0xEE);
        let f = decode_frame(&buf).unwrap().unwrap();
        assert!(parse_request(&f).is_err());
    }

    #[test]
    fn repl_hello_roundtrips_and_rejects_bad_payloads() {
        let mut buf = Vec::new();
        encode_request(&mut buf, &Request::ReplHello { shards: 7 });
        let (got, n) = decode_request(&buf).unwrap().unwrap();
        assert_eq!(n, buf.len());
        assert_eq!(got, Request::ReplHello { shards: 7 });

        // Anything but exactly 4 payload bytes is a body error.
        for plen in [0usize, 3, 5] {
            let mut buf = Vec::new();
            frame_header(&mut buf, OP_REPL_HELLO, plen);
            buf.extend(std::iter::repeat_n(0u8, plen));
            let f = decode_frame(&buf).unwrap().unwrap();
            let err = parse_request(&f).unwrap_err();
            assert!(matches!(err, WireError::BadPayload { .. }), "{plen}");
            assert!(!err.is_envelope());
        }
    }

    #[test]
    fn put_over_payload_cap_is_body_error() {
        // Hand-build a PUT whose key+value exceed MAX_PUT_PAYLOAD but whose
        // frame is still within MAX_FRAME: the envelope is legal, the body
        // is rejected, and the stream stays in sync.
        let key = [0u8; 16];
        let vlen = MAX_PUT_PAYLOAD - key.len() + 1;
        let mut buf = Vec::new();
        frame_header(&mut buf, OP_PUT, 2 + key.len() + vlen);
        buf.extend_from_slice(&(key.len() as u16).to_le_bytes());
        buf.extend_from_slice(&key);
        buf.extend(std::iter::repeat_n(0xABu8, vlen));
        encode_request(&mut buf, &Request::Ping);

        let f = decode_frame(&buf).unwrap().unwrap();
        let err = parse_request(&f).unwrap_err();
        assert!(matches!(err, WireError::BadPayload { .. }), "{err:?}");
        assert!(!err.is_envelope());
        let (next, _) = decode_request(&buf[f.consumed..]).unwrap().unwrap();
        assert_eq!(next, Request::Ping);

        // One byte less is accepted — the cap is exact.
        let vlen = MAX_PUT_PAYLOAD - key.len();
        let mut buf = Vec::new();
        frame_header(&mut buf, OP_PUT, 2 + key.len() + vlen);
        buf.extend_from_slice(&(key.len() as u16).to_le_bytes());
        buf.extend_from_slice(&key);
        buf.extend(std::iter::repeat_n(0xABu8, vlen));
        let f = decode_frame(&buf).unwrap().unwrap();
        assert!(parse_request(&f).is_ok());
    }

    #[test]
    #[should_panic(expected = "MAX_PUT_PAYLOAD")]
    fn encoding_oversized_put_panics() {
        let value = vec![0u8; MAX_PUT_PAYLOAD + 1];
        let mut buf = Vec::new();
        encode_request(
            &mut buf,
            &Request::Put {
                key: b"",
                value: &value,
            },
        );
    }

    #[test]
    fn max_put_entry_always_fits_a_repl_frame() {
        // The invariant MAX_PUT_PAYLOAD exists for: the largest accepted
        // write's redo entry must fit a REPL_BATCH frame's entry budget.
        let largest_entry = 1 + 2 + 4 + MAX_PUT_PAYLOAD;
        assert!(largest_entry <= REPL_MAX_ENTRY_BYTES);
    }

    #[test]
    fn repl_frames_may_not_ride_in_multi() {
        for build in [
            |nested: &mut Vec<u8>| encode_repl_batch(nested, 0, 1, &[ReplOp::Del { key: b"k" }]),
            |nested: &mut Vec<u8>| encode_request(nested, &Request::Promote),
            |nested: &mut Vec<u8>| encode_request(nested, &Request::ReplHello { shards: 1 }),
        ] {
            let mut nested = Vec::new();
            build(&mut nested);
            let mut buf = Vec::new();
            frame_header(&mut buf, OP_MULTI, 2 + nested.len());
            buf.extend_from_slice(&1u16.to_le_bytes());
            buf.extend_from_slice(&nested);
            let f = decode_frame(&buf).unwrap().unwrap();
            let err = parse_request(&f).unwrap_err();
            assert!(matches!(err, WireError::BadPayload { .. }), "{err:?}");
            assert!(!err.is_envelope());
        }
    }

    #[test]
    fn decode_is_zero_copy() {
        let mut buf = Vec::new();
        encode_request(
            &mut buf,
            &Request::Put {
                key: b"key0",
                value: b"value0",
            },
        );
        let (req, _) = decode_request(&buf).unwrap().unwrap();
        if let Request::Put { key, value } = req {
            // Borrowed slices point into the receive buffer itself.
            let range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
            assert!(range.contains(&(key.as_ptr() as usize)));
            assert!(range.contains(&(value.as_ptr() as usize)));
        } else {
            panic!("wrong request");
        }
    }
}
