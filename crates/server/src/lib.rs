//! `spp-server` — a network-facing persistent KV service over the
//! workspace's memory-safety policies.
//!
//! This crate turns the [`spp_kvstore`] cmap-analogue into something a
//! `memcached`-style deployment would actually run: a compact
//! length-prefixed [wire protocol](wire), a TCP [server] with two
//! selectable front ends (blocking thread-per-connection, or sharded
//! epoll reactors via `--io-mode epoll` so idle connections stop costing
//! threads), a bounded worker pool with explicit backpressure, a
//! closed-loop [client], and (as binaries) the `spp-server` daemon plus
//! the `spp-loadgen` load generator. The served store is selected per
//! process with `--policy pmdk|spp|safepm`, so the three policies are
//! compared end-to-end — syscalls, framing, and fences included — rather
//! than in a tight loop.
//!
//! The headline property is **acked-write durability**: a `PUT` is acked
//! only after the engine's transactional commit has flushed and fenced the
//! update, so every acked write survives a crash. The root
//! `server_crash_restart` test drives this over real sockets with
//! crash-injection and full recovery.

#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod engine;
pub mod group;
mod poll;
pub mod queue;
mod reactor;
mod repl;
pub mod ring;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, Reply, RespKind};
pub use engine::{
    fresh_server_pool, fresh_server_pool_wait, KvEngine, PolicyKind, WriteOp, WriteReply,
};
pub use group::{GroupCommitter, GroupConfig, SubmitError};
pub use poll::raise_nofile_limit;
pub use queue::{BoundedQueue, Job, PushError, WorkerPool};
pub use ring::Ring;
pub use server::{IoMode, ReplAckMode, ReplConfig, ReplStats, Server, ServerConfig};
pub use wire::{MultiBody, ReplBatchBody, ReplOp, Request, Response, WireError};
