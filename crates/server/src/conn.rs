//! Connection-level protocol state shared by both server front ends.
//!
//! The blocking front end ([`crate::server`]) and the epoll reactor
//! ([`crate::reactor`]) execute the *same* run discipline: every complete
//! frame already buffered is decoded into one ordered run
//! ([`decode_run`]), the run executes as a single worker job, and replies
//! are encoded back in request order. Keeping the decode step in one
//! function is what lets the crash-restart and group-commit atomicity
//! proofs carry over to the reactor unchanged — both front ends feed
//! byte-identical runs into [`crate::server`]'s `execute_ops`.
//!
//! [`Conn`] is the reactor's per-connection state machine: receive/send
//! buffers with partial-write positions, the in-flight or parked run, and
//! the bookkeeping (interest mask, idle clock, generation) the reactor
//! needs to drive it off readiness events.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::engine::WriteOp;
use crate::wire::{
    decode_frame, encode_response, parse_request, try_encode_multi_response, ReplOp, Request,
    Response,
};

/// A request copied out of the receive buffer so it can cross to a worker.
pub(crate) enum OwnedRequest {
    /// `PUT key value`.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// `DEL key`.
    Del {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `GET key`.
    Get {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `STATS`.
    Stats,
    /// `FLUSH` (fence).
    Flush,
    /// `PING`.
    Ping,
    /// An atomic `MULTI` batch.
    Multi(Vec<OwnedRequest>),
    /// One replicated batch shipped from a primary, applied behind this
    /// server's own durability boundary.
    ReplBatch {
        /// Owning shard.
        shard: u32,
        /// Per-shard batch sequence number, echoed in the ack.
        seq: u64,
        /// The decoded redo ops.
        ops: Vec<WriteOp>,
    },
    /// `PROMOTE`: become a primary, refuse further replication.
    Promote,
    /// `REPL_HELLO`: a primary opening a replication connection announces
    /// its shard count for layout verification.
    ReplHello {
        /// The primary's shard count.
        shards: u32,
    },
}

/// A worker's reply, written back on the connection in request order.
pub(crate) enum OwnedResponse {
    /// Success.
    Ok,
    /// `GET` hit.
    Value(Vec<u8>),
    /// Key absent.
    NotFound,
    /// Failed request.
    Err(String),
    /// Rendered stats body.
    Stats(String),
    /// `PING` reply.
    Pong,
    /// Explicit backpressure rejection.
    Busy,
    /// Replies to a `MULTI` batch, in order.
    Multi(Vec<OwnedResponse>),
    /// `REPL_BATCH` applied and durable on this side.
    ReplAck {
        /// The acknowledged shard.
        shard: u32,
        /// The acknowledged batch sequence number.
        seq: u64,
    },
}

/// Why a decode run stopped early.
pub(crate) enum Stop {
    /// A `SHUTDOWN` frame: finish the run, ack, trigger shutdown, close.
    Shutdown,
    /// Envelope error: the length prefix is garbage, the stream cannot
    /// resync. Finish the run, report, close.
    Envelope(String),
}

pub(crate) fn owned_of(req: &Request<'_>) -> Option<OwnedRequest> {
    match req {
        Request::Put { key, value } => Some(OwnedRequest::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        }),
        Request::Get { key } => Some(OwnedRequest::Get { key: key.to_vec() }),
        Request::Del { key } => Some(OwnedRequest::Del { key: key.to_vec() }),
        Request::Stats => Some(OwnedRequest::Stats),
        Request::Flush => Some(OwnedRequest::Flush),
        Request::Ping => Some(OwnedRequest::Ping),
        Request::Multi(mb) => Some(OwnedRequest::Multi(
            mb.requests()
                .map(|r| owned_of(&r).expect("validated: no SHUTDOWN inside MULTI"))
                .collect(),
        )),
        Request::ReplBatch(rb) => Some(OwnedRequest::ReplBatch {
            shard: rb.shard,
            seq: rb.seq,
            ops: rb
                .ops()
                .map(|op| match op {
                    ReplOp::Put { key, value } => WriteOp::Put {
                        key: key.to_vec(),
                        value: value.to_vec(),
                    },
                    ReplOp::Del { key } => WriteOp::Del { key: key.to_vec() },
                })
                .collect(),
        }),
        Request::Promote => Some(OwnedRequest::Promote),
        Request::ReplHello { shards } => Some(OwnedRequest::ReplHello { shards: *shards }),
        Request::Shutdown => None,
    }
}

/// Borrow an [`OwnedResponse`] as a wire [`Response`]. Nested `Multi` is
/// impossible (wire validation rejects it on the way in), so this only has
/// to cover leaf responses.
pub(crate) fn response_of(resp: &OwnedResponse) -> Response<'_> {
    match resp {
        OwnedResponse::Ok => Response::Ok,
        OwnedResponse::Value(v) => Response::Value(v),
        OwnedResponse::NotFound => Response::NotFound,
        OwnedResponse::Err(m) => Response::Err(m),
        OwnedResponse::Stats(s) => Response::Stats(s),
        OwnedResponse::Pong => Response::Pong,
        OwnedResponse::Busy => Response::Busy,
        OwnedResponse::ReplAck { shard, seq } => Response::ReplAck {
            shard: *shard,
            seq: *seq,
        },
        OwnedResponse::Multi(_) => unreachable!("MULTI cannot nest"),
    }
}

pub(crate) fn encode_owned(out: &mut Vec<u8>, resp: &OwnedResponse) {
    match resp {
        OwnedResponse::Multi(rs) => {
            let borrowed: Vec<Response<'_>> = rs.iter().map(response_of).collect();
            // A MULTI of GETs can fan out past MAX_FRAME even though the
            // request fit; degrade to an ERR frame (the batch's writes are
            // already durable — only the reply couldn't be framed).
            if !try_encode_multi_response(out, &borrowed) {
                encode_response(out, &Response::Err("MULTI response exceeds frame limit"));
            }
        }
        leaf => encode_response(out, &response_of(leaf)),
    }
}

/// One ordered run decoded out of a receive buffer: inline answers
/// (`PONG`, body-error `ERR`) already sit in their reply slots; engine
/// requests are in `execs` with their slot indices in `exec_slots`.
pub(crate) struct DecodedRun {
    /// Bytes of `rbuf` consumed by the decoded frames (drain these).
    pub(crate) consumed: usize,
    /// One slot per decoded frame, in request order; `None` slots await
    /// the worker's reply.
    pub(crate) replies: Vec<Option<OwnedResponse>>,
    /// Engine-bound requests, in order.
    pub(crate) execs: Vec<OwnedRequest>,
    /// `replies` index for each entry of `execs`.
    pub(crate) exec_slots: Vec<usize>,
    /// Early-stop condition (`SHUTDOWN` frame or envelope error), if any.
    pub(crate) stop: Option<Stop>,
}

/// Decode EVERY complete frame already buffered into one ordered run —
/// this is the pipelining: a client that streamed N requests gets them
/// executed as a unit (writes group-committed) instead of N queue round
/// trips. Incomplete trailing bytes are left untouched (`consumed` stops
/// before them); fragmentation at any byte boundary only delays the frame
/// until its last byte arrives.
pub(crate) fn decode_run(rbuf: &[u8]) -> DecodedRun {
    let mut consumed = 0;
    let mut replies: Vec<Option<OwnedResponse>> = Vec::new();
    let mut execs: Vec<OwnedRequest> = Vec::new();
    let mut exec_slots: Vec<usize> = Vec::new();
    let mut stop: Option<Stop> = None;
    loop {
        let frame = match decode_frame(&rbuf[consumed..]) {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(e) => {
                debug_assert!(e.is_envelope());
                stop = Some(Stop::Envelope(e.to_string()));
                break;
            }
        };
        consumed += frame.consumed;
        match parse_request(&frame) {
            Ok(Request::Ping) => replies.push(Some(OwnedResponse::Pong)),
            Ok(Request::Shutdown) => {
                stop = Some(Stop::Shutdown);
                break;
            }
            Ok(req) => {
                exec_slots.push(replies.len());
                execs.push(owned_of(&req).expect("Ping/Shutdown handled above"));
                replies.push(None);
            }
            Err(e) => {
                // Body error: the frame boundary is known — answer ERR
                // in place and keep the stream in sync.
                debug_assert!(!e.is_envelope());
                replies.push(Some(OwnedResponse::Err(e.to_string())));
            }
        }
    }
    DecodedRun {
        consumed,
        replies,
        execs,
        exec_slots,
        stop,
    }
}

// ---------------------------------------------------------------------------
// Reactor-side per-connection state
// ---------------------------------------------------------------------------

/// Where a reactor connection is in the run pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ConnState {
    /// No run in flight: readable bytes are decoded immediately.
    Idle,
    /// One run is executing on the worker pool; reads are disarmed until
    /// its completion comes back (one job in flight per connection keeps
    /// ordering structural, exactly like the blocking front end).
    Running,
    /// A decoded run could not be queued (pool saturated): reads stay
    /// disarmed and the run is retried when capacity frees up — pausing
    /// instead of BUSY-failing the whole pipelined run.
    Parked,
}

/// Once the send buffer backs up past this, read interest is dropped until
/// the peer drains it — flow control by readiness, not by buffering.
pub(crate) const WBUF_HIGH_WATER: usize = 256 * 1024;

/// Reactor-owned state for one client socket.
pub(crate) struct Conn {
    /// The nonblocking socket.
    pub(crate) stream: TcpStream,
    /// Bytes received, not yet decoded.
    pub(crate) rbuf: Vec<u8>,
    /// Bytes encoded, not yet fully written.
    pub(crate) wbuf: Vec<u8>,
    /// How far into `wbuf` the kernel has accepted (partial writes).
    pub(crate) wpos: usize,
    /// Run-pipeline state.
    pub(crate) state: ConnState,
    /// The already-built worker job of a saturated-queue run, retried
    /// verbatim when capacity frees up (`state == Parked`).
    pub(crate) parked_job: Option<crate::queue::Job>,
    /// Reply slots of the in-flight run, when `state == Running`.
    pub(crate) pending_replies: Vec<Option<OwnedResponse>>,
    /// Exec slot indices of the in-flight run.
    pub(crate) pending_slots: Vec<usize>,
    /// Stop to apply once the in-flight/parked run is written back.
    pub(crate) pending_stop: Option<Stop>,
    /// Flush `wbuf`, then close (set by `SHUTDOWN` ack / envelope error).
    pub(crate) closing: bool,
    /// Peer sent FIN: stop arming reads, close once quiesced.
    pub(crate) peer_eof: bool,
    /// Last time bytes moved on this connection (idle-timeout clock).
    pub(crate) last_activity: Instant,
    /// The epoll interest mask currently registered for this socket.
    pub(crate) interest: u32,
    /// Slab generation, embedded in the epoll token so stale events and
    /// stale worker completions for a recycled slot are discarded.
    pub(crate) generation: u32,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, generation: u32, now: Instant) -> Conn {
        Conn {
            stream,
            rbuf: Vec::with_capacity(4096),
            wbuf: Vec::with_capacity(4096),
            wpos: 0,
            state: ConnState::Idle,
            parked_job: None,
            pending_replies: Vec::new(),
            pending_slots: Vec::new(),
            pending_stop: None,
            closing: false,
            peer_eof: false,
            last_activity: now,
            interest: 0,
            generation,
        }
    }

    /// Unwritten response bytes still pending.
    pub(crate) fn has_backlog(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Pump `wbuf` into the socket until it would block. Returns `false`
    /// on a fatal socket error (caller closes the connection).
    pub(crate) fn pump_writes(&mut self, now: Instant) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.wpos += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.wpos == self.wbuf.len() && self.wpos > 0 {
            self.wbuf.clear();
            self.wpos = 0;
        }
        true
    }

    /// Drain readable bytes into `rbuf` until the socket would block (or a
    /// cap per round, to keep one chatty peer from starving the rest).
    /// Returns `Ok(true)` if any bytes arrived, `Ok(false)` if none;
    /// `Err(())` means the socket is dead.
    pub(crate) fn pump_reads(&mut self, now: Instant) -> Result<bool, ()> {
        const ROUND_CAP: usize = 64 * 1024;
        let mut chunk = [0u8; 16 * 1024];
        let mut got = 0usize;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_activity = now;
                    got += n;
                    if got >= ROUND_CAP {
                        // Level-triggered epoll re-reports the remainder.
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        Ok(got > 0)
    }

    /// The interest mask this connection should be registered with right
    /// now: reads only while idle (and not closing/EOF/backpressured),
    /// writes only while a backlog exists.
    pub(crate) fn desired_interest(&self) -> u32 {
        let mut want = 0;
        if self.has_backlog() {
            want |= crate::poll::EPOLLOUT;
        }
        let read_ok = self.state == ConnState::Idle
            && !self.closing
            && !self.peer_eof
            && self.wbuf.len().saturating_sub(self.wpos) < WBUF_HIGH_WATER;
        if read_ok {
            want |= crate::poll::EPOLLIN;
        }
        want
    }

    /// Whether the connection has fully quiesced and should be closed:
    /// peer is gone (or we are closing) and nothing remains to execute or
    /// flush.
    pub(crate) fn drained(&self) -> bool {
        let no_work = self.state == ConnState::Idle && !self.has_backlog();
        no_work && (self.closing || self.peer_eof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_multi_request, encode_request, MAX_FRAME};

    fn put(key: &[u8], value: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_request(&mut out, &Request::Put { key, value });
        out
    }

    #[test]
    fn decode_run_batches_all_complete_frames() {
        let mut buf = Vec::new();
        encode_request(&mut buf, &Request::Ping);
        buf.extend_from_slice(&put(b"k1", b"v1"));
        encode_request(&mut buf, &Request::Get { key: b"k1" });
        let tail_start = buf.len();
        // Trailing partial frame: must be left unconsumed.
        buf.extend_from_slice(&put(b"k2", b"v2")[..3]);

        let run = decode_run(&buf);
        assert_eq!(run.consumed, tail_start);
        assert_eq!(run.replies.len(), 3);
        assert!(matches!(run.replies[0], Some(OwnedResponse::Pong)));
        assert!(run.replies[1].is_none());
        assert!(run.replies[2].is_none());
        assert_eq!(run.execs.len(), 2);
        assert_eq!(run.exec_slots, vec![1, 2]);
        assert!(run.stop.is_none());
    }

    #[test]
    fn decode_run_stops_at_shutdown_frame() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&put(b"k", b"v"));
        encode_request(&mut buf, &Request::Shutdown);
        // Frames after SHUTDOWN are not decoded (the connection closes).
        encode_request(&mut buf, &Request::Ping);

        let run = decode_run(&buf);
        assert!(matches!(run.stop, Some(Stop::Shutdown)));
        assert_eq!(run.replies.len(), 1);
        assert_eq!(run.execs.len(), 1);
    }

    #[test]
    fn decode_run_envelope_error_stops_without_consuming_garbage() {
        let mut buf = Vec::new();
        encode_request(&mut buf, &Request::Ping);
        let good = buf.len();
        // Oversized length prefix: an envelope error.
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        buf.push(0x01);

        let run = decode_run(&buf);
        assert_eq!(run.consumed, good, "garbage stays unconsumed");
        assert!(matches!(run.stop, Some(Stop::Envelope(_))));
        assert!(matches!(run.replies[0], Some(OwnedResponse::Pong)));
    }

    #[test]
    fn decode_run_reassembles_byte_at_a_time_delivery() {
        // The reactor ingests arbitrary fragments; a run must appear
        // exactly when the last byte of a frame lands, never earlier,
        // and decoded order must match send order.
        let mut stream = Vec::new();
        stream.extend_from_slice(&put(b"alpha", b"1"));
        let inner = [
            Request::Put {
                key: b"beta",
                value: b"2",
            },
            Request::Del { key: b"alpha" },
        ];
        encode_multi_request(&mut stream, &inner);
        stream.extend_from_slice(&put(b"gamma", b"3"));

        let mut rbuf = Vec::new();
        let mut decoded = 0usize;
        for (i, b) in stream.iter().enumerate() {
            rbuf.push(*b);
            let run = decode_run(&rbuf);
            if run.consumed > 0 {
                rbuf.drain(..run.consumed);
                decoded += run.execs.len();
                assert!(run.stop.is_none(), "no stop at byte {i}");
            }
        }
        assert!(rbuf.is_empty(), "every byte consumed at the end");
        assert_eq!(decoded, 3, "PUT + MULTI + PUT all decoded");
    }

    #[test]
    fn conn_desired_interest_follows_state() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let now = Instant::now();
        let mut conn = Conn::new(stream, 1, now);

        assert_eq!(conn.desired_interest(), crate::poll::EPOLLIN);

        conn.state = ConnState::Running;
        assert_eq!(conn.desired_interest(), 0, "reads disarmed while running");

        conn.state = ConnState::Idle;
        conn.wbuf = vec![0u8; 8];
        assert_eq!(
            conn.desired_interest(),
            crate::poll::EPOLLIN | crate::poll::EPOLLOUT
        );

        conn.wbuf = vec![0u8; WBUF_HIGH_WATER + 1];
        assert_eq!(
            conn.desired_interest(),
            crate::poll::EPOLLOUT,
            "send backlog past high water drops read interest"
        );

        conn.wbuf.clear();
        conn.closing = true;
        assert_eq!(conn.desired_interest(), 0);
        assert!(conn.drained());
    }
}
