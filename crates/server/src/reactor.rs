//! The epoll front end: sharded reactor threads driving many connections
//! each, so mostly-idle connections cost a slab entry instead of an OS
//! thread.
//!
//! Ownership model — everything single-writer:
//!
//! * each reactor thread exclusively owns its [`Epoll`] instance and a
//!   slab of [`Conn`] state machines; no connection is ever touched by two
//!   reactors;
//! * reactor 0 additionally owns the nonblocking listener. Accepted
//!   sockets are dealt round-robin: locally registered, or pushed onto the
//!   target reactor's `inbox` followed by an [`EventFd`] wakeup;
//! * workers never touch sockets. A run's job executes through the same
//!   `execute_ops` → [`crate::group::GroupCommitter`] path as the blocking
//!   front end and then pushes `(token, replies)` onto the owning
//!   reactor's `completions` queue and rings its eventfd — the reactor
//!   patches the reply slots and writes back in request order.
//!
//! Because runs are decoded by the shared [`decode_run`] and executed by
//! the shared `execute_ops`, the Raad-et-al-style ordering rules (writes
//! batch up to a shared flush+fence boundary; reads and `MULTI` bodies are
//! batch barriers; acks only after the boundary) are *identical* across
//! front ends — the crash-restart and group-commit atomicity proofs run
//! against both.
//!
//! Backpressure is by readiness interest, not by refusal: a saturated
//! worker queue parks the decoded run (keeping the built job) and drops
//! `EPOLLIN`; kernel socket buffers and TCP flow control push back on the
//! client. The parked job is retried on every completion/wakeup and on a
//! short tick, so capacity is never left idle. A send backlog past the
//! high-water mark likewise drops read interest until the peer drains it.
//!
//! Slab slots carry a generation, and the epoll token is
//! `slot << 32 | generation` — stale readiness events and stale worker
//! completions for a recycled slot fail the generation check and are
//! discarded.

use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::conn::{decode_run, encode_owned, Conn, ConnState, OwnedRequest, OwnedResponse, Stop};
use crate::poll::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::queue::{Job, PushError};
use crate::server::{execute_ops, reject_busy, Shared};
use crate::wire::{encode_response, Response};

/// Token for the reactor's own wakeup eventfd.
const TOKEN_WAKE: u64 = u64::MAX;
/// Token for the listener (reactor 0 only).
const TOKEN_LISTENER: u64 = u64::MAX - 1;

/// Grace period for flushing send backlogs during shutdown drain.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

fn conn_token(idx: usize, generation: u32) -> u64 {
    ((idx as u64) << 32) | generation as u64
}

/// The cross-thread face of one reactor: what other threads (the acceptor
/// reactor, workers, shutdown) may touch.
pub(crate) struct ReactorShared {
    /// Doorbell: readable whenever `inbox`/`completions` changed or a
    /// shutdown wants attention.
    pub(crate) wake: EventFd,
    /// Accepted sockets handed over by reactor 0.
    pub(crate) inbox: Mutex<Vec<TcpStream>>,
    /// Finished runs: `(token, replies)` pushed by worker jobs.
    pub(crate) completions: Mutex<VecDeque<(u64, Vec<OwnedResponse>)>>,
}

impl ReactorShared {
    pub(crate) fn new() -> std::io::Result<ReactorShared> {
        Ok(ReactorShared {
            wake: EventFd::new()?,
            inbox: Mutex::new(Vec::new()),
            completions: Mutex::new(VecDeque::new()),
        })
    }
}

struct Reactor {
    idx: usize,
    epoll: Epoll,
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    me: Arc<ReactorShared>,
    peers: Vec<Arc<ReactorShared>>,
    slab: Vec<Option<Conn>>,
    generations: Vec<u32>,
    free: Vec<usize>,
    rr: usize,
    parked: usize,
    draining: bool,
    drain_deadline: Option<Instant>,
    last_idle_sweep: Instant,
}

/// Body of one reactor thread. Runs until shutdown has been triggered and
/// every owned connection has drained (or the grace period expires).
pub(crate) fn reactor_main(
    idx: usize,
    epoll: Epoll,
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    me: Arc<ReactorShared>,
    peers: Vec<Arc<ReactorShared>>,
) {
    let mut r = Reactor {
        idx,
        epoll,
        listener,
        shared,
        me,
        peers,
        slab: Vec::new(),
        generations: Vec::new(),
        free: Vec::new(),
        rr: 0,
        parked: 0,
        draining: false,
        drain_deadline: None,
        last_idle_sweep: Instant::now(),
    };
    r.epoll
        .add(r.me.wake.raw(), EPOLLIN, TOKEN_WAKE)
        .expect("register reactor wakeup fd");
    if let Some(l) = &r.listener {
        l.set_nonblocking(true).expect("nonblocking listener");
        r.epoll
            .add(l.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
            .expect("register listener");
    }
    r.run();
}

impl Reactor {
    fn run(&mut self) {
        let mut events = [EpollEvent::zeroed(); 256];
        loop {
            let timeout = self.wait_timeout_ms();
            let n = self.epoll.wait(&mut events, timeout).unwrap_or(0);
            let mut accept_ready = false;
            for ev in &events[..n] {
                match ev.token() {
                    TOKEN_WAKE => {
                        self.me.wake.drain();
                    }
                    TOKEN_LISTENER => accept_ready = true,
                    tok => self.handle_conn_event(tok, ev.events()),
                }
            }
            if accept_ready {
                self.accept_ready();
            }
            self.adopt_inbox();
            self.apply_completions();
            self.retry_parked();
            self.sweep_idle();
            if self.shared.shutdown.load(Ordering::SeqCst) && self.drain_step() {
                return;
            }
        }
    }

    /// How long the next wait may block: short ticks while work is parked
    /// or draining, long ticks otherwise (wakeups cover the common paths).
    fn wait_timeout_ms(&self) -> i32 {
        if self.draining {
            10
        } else if self.parked > 0 {
            5
        } else if self.shared.cfg.idle_timeout.is_some() {
            100
        } else {
            250
        }
    }

    // -- accept path --------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        continue; // accepted during shutdown: drop
                    }
                    if self.shared.conns.load(Ordering::SeqCst) >= self.shared.cfg.max_conns {
                        reject_busy(stream);
                        continue;
                    }
                    self.shared.conns.fetch_add(1, Ordering::SeqCst);
                    let target = self.rr % self.peers.len();
                    self.rr = self.rr.wrapping_add(1);
                    if target == self.idx {
                        self.register_conn(stream);
                    } else {
                        self.peers[target]
                            .inbox
                            .lock()
                            .expect("reactor inbox")
                            .push(stream);
                        self.peers[target].wake.signal();
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn adopt_inbox(&mut self) {
        let streams = std::mem::take(&mut *self.me.inbox.lock().expect("reactor inbox"));
        for stream in streams {
            self.register_conn(stream);
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            self.shared.conns.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.generations.push(1);
            self.slab.len() - 1
        });
        let generation = self.generations[idx];
        let mut conn = Conn::new(stream, generation, Instant::now());
        match self.epoll.add(
            conn.stream.as_raw_fd(),
            EPOLLIN,
            conn_token(idx, generation),
        ) {
            Ok(()) => {
                conn.interest = EPOLLIN;
                self.slab[idx] = Some(conn);
            }
            Err(_) => {
                self.free.push(idx);
                self.shared.conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    // -- readiness path -----------------------------------------------------

    fn handle_conn_event(&mut self, token: u64, events: u32) {
        let idx = (token >> 32) as usize;
        let generation = token as u32;
        let mut dead = false;
        {
            let Some(conn) = self.slab.get_mut(idx).and_then(|s| s.as_mut()) else {
                return;
            };
            if conn.generation != generation {
                return; // stale event for a recycled slot
            }
            let now = Instant::now();
            if events & EPOLLERR != 0 {
                dead = true;
            }
            if !dead && events & EPOLLOUT != 0 {
                dead = !conn.pump_writes(now);
            }
            if !dead && events & EPOLLIN != 0 && conn.pump_reads(now).is_err() {
                dead = true;
            }
            if !dead && events & EPOLLHUP != 0 {
                conn.peer_eof = true;
            }
        }
        if dead {
            self.close_conn(idx);
        } else {
            self.process_input(idx);
        }
    }

    /// Decode whatever is buffered on an idle connection into one run and
    /// dispatch it; then pump writes, re-sync interest, and close if the
    /// connection has quiesced.
    fn process_input(&mut self, idx: usize) {
        let dead = {
            let Some(conn) = self.slab.get_mut(idx).and_then(|s| s.as_mut()) else {
                return;
            };
            if conn.state == ConnState::Idle && !conn.closing {
                let run = decode_run(&conn.rbuf);
                if run.consumed > 0 {
                    conn.rbuf.drain(..run.consumed);
                }
                if run.execs.is_empty() {
                    // Inline-only run (PONGs, body errors) — answer without
                    // a worker round trip, exactly like the blocking path.
                    for reply in &run.replies {
                        encode_owned(
                            &mut conn.wbuf,
                            reply.as_ref().expect("inline run: every slot answered"),
                        );
                    }
                    if let Some(stop) = run.stop {
                        Self::apply_stop(&self.shared, conn, stop);
                    }
                } else {
                    conn.pending_replies = run.replies;
                    conn.pending_slots = run.exec_slots;
                    conn.pending_stop = run.stop;
                    let token = conn_token(idx, conn.generation);
                    let job = Self::make_job(&self.shared, &self.me, token, run.execs);
                    match self.shared.queue.try_push(job) {
                        Ok(()) => conn.state = ConnState::Running,
                        Err(PushError::Full(job)) => {
                            // Pool saturated: park the run and stop reading.
                            // The client sees flow control, never a BUSY-
                            // failed pipelined run.
                            conn.parked_job = Some(job);
                            conn.state = ConnState::Parked;
                            self.parked += 1;
                        }
                        Err(PushError::Closed(_)) => Self::fail_pending(conn),
                    }
                }
            }
            let now = Instant::now();
            if !conn.pump_writes(now) {
                true
            } else {
                Self::sync_interest(&self.epoll, idx, conn);
                conn.drained()
                    || (self.draining && conn.state == ConnState::Idle && !conn.has_backlog())
            }
        };
        if dead {
            self.close_conn(idx);
        }
    }

    /// Queue closed under us (shutdown race): answer the run's exec slots
    /// with an error and close after flushing, acking nothing as durable.
    fn fail_pending(conn: &mut Conn) {
        for slot in std::mem::take(&mut conn.pending_slots) {
            conn.pending_replies[slot] = Some(OwnedResponse::Err("server shutting down".into()));
        }
        for reply in std::mem::take(&mut conn.pending_replies) {
            encode_owned(&mut conn.wbuf, &reply.expect("every slot answered"));
        }
        conn.pending_stop = None;
        conn.closing = true;
    }

    /// Apply a decode-run stop once its run has fully answered: ack the
    /// `SHUTDOWN` (and trigger it) or report the envelope error; either
    /// way the connection flushes and closes.
    fn apply_stop(shared: &Arc<Shared>, conn: &mut Conn, stop: Stop) {
        match stop {
            Stop::Shutdown => {
                encode_response(&mut conn.wbuf, &Response::Ok);
                conn.closing = true;
                shared.trigger_shutdown();
            }
            Stop::Envelope(msg) => {
                encode_response(&mut conn.wbuf, &Response::Err(&msg));
                conn.closing = true;
            }
        }
    }

    /// Build the worker job for a run: execute through the shared
    /// group-commit path, then post the replies back to the owning reactor
    /// and ring its doorbell.
    fn make_job(
        shared: &Arc<Shared>,
        me: &Arc<ReactorShared>,
        token: u64,
        execs: Vec<OwnedRequest>,
    ) -> Job {
        let shards = Arc::clone(&shared.shards);
        let me = Arc::clone(me);
        Box::new(move || {
            let replies = execute_ops(&shards, execs);
            me.completions
                .lock()
                .expect("reactor completions")
                .push_back((token, replies));
            me.wake.signal();
        })
    }

    // -- completion path ----------------------------------------------------

    fn apply_completions(&mut self) {
        loop {
            let item = self
                .me
                .completions
                .lock()
                .expect("reactor completions")
                .pop_front();
            let Some((token, run_replies)) = item else {
                return;
            };
            let idx = (token >> 32) as usize;
            let generation = token as u32;
            let dead = {
                let Some(conn) = self.slab.get_mut(idx).and_then(|s| s.as_mut()) else {
                    continue; // connection died while its run executed
                };
                if conn.generation != generation || conn.state != ConnState::Running {
                    continue;
                }
                debug_assert_eq!(run_replies.len(), conn.pending_slots.len());
                for (slot, reply) in std::mem::take(&mut conn.pending_slots)
                    .into_iter()
                    .zip(run_replies)
                {
                    conn.pending_replies[slot] = Some(reply);
                }
                for reply in std::mem::take(&mut conn.pending_replies) {
                    encode_owned(&mut conn.wbuf, &reply.expect("every slot answered"));
                }
                conn.state = ConnState::Idle;
                if let Some(stop) = conn.pending_stop.take() {
                    Self::apply_stop(&self.shared, conn, stop);
                }
                if !conn.pump_writes(Instant::now()) {
                    true
                } else {
                    Self::sync_interest(&self.epoll, idx, conn);
                    conn.drained()
                }
            };
            if dead {
                self.close_conn(idx);
            } else {
                // More pipelined frames may already sit in rbuf alongside
                // new kernel bytes; decode the next run immediately.
                self.process_input(idx);
            }
        }
    }

    // -- parked runs --------------------------------------------------------

    fn retry_parked(&mut self) {
        if self.parked == 0 {
            return;
        }
        for idx in 0..self.slab.len() {
            if self.parked == 0 {
                return;
            }
            let mut dead = false;
            {
                let Some(conn) = self.slab[idx].as_mut() else {
                    continue;
                };
                if conn.state != ConnState::Parked {
                    continue;
                }
                let job = conn.parked_job.take().expect("parked run keeps its job");
                match self.shared.queue.try_push(job) {
                    Ok(()) => {
                        conn.state = ConnState::Running;
                        self.parked -= 1;
                    }
                    Err(PushError::Full(job)) => {
                        // A full queue normally means "wait for capacity" —
                        // but if a shard committer has already shut down,
                        // capacity will never come (workers would block
                        // forever on submit). Fail the run and close
                        // cleanly instead of hanging the parked client.
                        if self.shared.shards.any_committer_closed() {
                            self.parked -= 1;
                            Self::fail_pending(conn);
                            let _ = conn.pump_writes(Instant::now());
                            dead = conn.drained();
                        } else {
                            conn.parked_job = Some(job);
                        }
                    }
                    Err(PushError::Closed(_)) => {
                        self.parked -= 1;
                        Self::fail_pending(conn);
                        let _ = conn.pump_writes(Instant::now());
                        dead = conn.drained();
                    }
                }
            }
            if dead {
                self.close_conn(idx);
            }
        }
    }

    // -- idle timeout -------------------------------------------------------

    fn sweep_idle(&mut self) {
        let Some(limit) = self.shared.cfg.idle_timeout else {
            return;
        };
        let now = Instant::now();
        let interval = (limit / 2).min(Duration::from_secs(1));
        if now.duration_since(self.last_idle_sweep) < interval {
            return;
        }
        self.last_idle_sweep = now;
        for idx in 0..self.slab.len() {
            let timed_out = matches!(
                &self.slab[idx],
                Some(c) if c.state == ConnState::Idle
                    && !c.has_backlog()
                    && now.duration_since(c.last_activity) >= limit
            );
            if timed_out {
                self.close_conn(idx);
            }
        }
    }

    // -- shutdown drain -----------------------------------------------------

    /// One drain step after the shutdown flag is up. Returns `true` when
    /// this reactor has fully quiesced: idle connections are closed
    /// immediately, in-flight/parked runs finish and flush their acks
    /// first, and a grace deadline force-closes stragglers.
    fn drain_step(&mut self) -> bool {
        let now = Instant::now();
        if !self.draining {
            self.draining = true;
            self.drain_deadline = Some(now + DRAIN_GRACE);
            // Stop accepting: dropping the listener closes its fd, which
            // also removes it from the epoll set.
            self.listener = None;
        }
        for idx in 0..self.slab.len() {
            let idle = matches!(
                &self.slab[idx],
                Some(c) if c.state == ConnState::Idle && !c.has_backlog()
            );
            if idle {
                self.close_conn(idx);
            }
        }
        let live = self.slab.iter().filter(|s| s.is_some()).count();
        if live == 0 {
            return true;
        }
        if now >= self.drain_deadline.expect("deadline set with draining") {
            for idx in 0..self.slab.len() {
                self.close_conn(idx);
            }
            return true;
        }
        false
    }

    // -- plumbing -----------------------------------------------------------

    /// Re-register the socket's interest if the desired mask changed.
    /// Dropping `EPOLLIN` while a run executes (or a backlog grows) is the
    /// backpressure mechanism; re-arming it resumes the flow.
    fn sync_interest(epoll: &Epoll, idx: usize, conn: &mut Conn) {
        let want = conn.desired_interest();
        if want != conn.interest {
            let token = conn_token(idx, conn.generation);
            if epoll.modify(conn.stream.as_raw_fd(), want, token).is_ok() {
                conn.interest = want;
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.slab[idx].take() {
            if conn.state == ConnState::Parked {
                self.parked -= 1;
            }
            self.generations[idx] = self.generations[idx].wrapping_add(1);
            self.free.push(idx);
            self.shared.conns.fetch_sub(1, Ordering::SeqCst);
            // Dropping `conn` closes the fd; the kernel removes it from
            // the epoll interest set automatically.
        }
    }
}
