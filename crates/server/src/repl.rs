//! Primary-side replication: per-shard sinks that ship committed write
//! batches to the backup over the wire protocol.
//!
//! Each shard's [`crate::group::GroupCommitter`] owns one [`ReplSink`]:
//! after a batch commits locally, the committer hands the sink the same
//! redo ops it just applied, and the sink sends them as one `REPL_BATCH`
//! frame and blocks for the backup's `REPL_ACK`. Sequence numbers are
//! per-shard and monotonic; the backup applies batches in arrival order on
//! a single connection, so a received ack means *every* prior batch of
//! that shard is durable on the backup too.
//!
//! The sink never retries: any ship failure (connection cut, backup error,
//! ack mismatch) poisons the connection, and in [`ReplAckMode::Sync`] the
//! committer converts the batch's client acks into errors — a client never
//! sees `OK` for a write the backup might not hold. Fault-injection hooks
//! (`cut`, `drop_batch`) exist solely for the failover rigs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::client::Client;
use crate::engine::WriteOp;
use crate::server::{ReplAckMode, ReplConfig, ReplStats};
use crate::wire::{repl_entry_size, ReplOp, REPL_MAX_ENTRY_BYTES};

/// One shard's replication stream to the backup.
pub(crate) struct ReplSink {
    shard: u32,
    ack_mode: ReplAckMode,
    /// The dedicated replication connection; poisoned (set to `None`) on
    /// the first failure. Only the shard's committer thread ships, so the
    /// lock is uncontended.
    conn: Mutex<Option<Client>>,
    /// Per-shard batch sequence, starting at 1.
    next_seq: AtomicU64,
    shipped: AtomicU64,
    dropped: AtomicU64,
    failed: AtomicU64,
    /// Simulated primary death, shared across every shard's sink.
    cut: Arc<AtomicBool>,
    /// Global ship ordinal across shards, for `drop_batch`.
    counter: Arc<AtomicU64>,
    /// Drop (but pretend to ack) the batch with this global ordinal.
    drop_batch: Option<u64>,
}

impl ReplSink {
    /// Open one replication connection per shard to `cfg.backup`. All
    /// sinks share the cut flag and the global batch ordinal.
    pub(crate) fn connect_all(
        cfg: &ReplConfig,
        nshards: usize,
    ) -> Result<Vec<Arc<ReplSink>>, crate::client::ClientError> {
        let cut = Arc::new(AtomicBool::new(false));
        let counter = Arc::new(AtomicU64::new(0));
        let mut sinks = Vec::with_capacity(nshards);
        for shard in 0..nshards {
            let mut client = Client::connect(cfg.backup)?;
            // Handshake: the backup refuses replication unless its shard
            // layout matches ours, so a misconfigured pair fails at
            // startup instead of silently misplacing batches.
            client.repl_hello(nshards as u32)?;
            sinks.push(Arc::new(ReplSink {
                shard: shard as u32,
                ack_mode: cfg.ack_mode,
                conn: Mutex::new(Some(client)),
                next_seq: AtomicU64::new(0),
                shipped: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                cut: Arc::clone(&cut),
                counter: Arc::clone(&counter),
                drop_batch: cfg.drop_batch,
            }));
        }
        Ok(sinks)
    }

    /// Whether client acks wait for this sink's ship to succeed.
    pub(crate) fn is_sync(&self) -> bool {
        self.ack_mode == ReplAckMode::Sync
    }

    /// Sever the stream as if the primary died: every subsequent ship
    /// fails immediately.
    pub(crate) fn cut(&self) {
        self.cut.store(true, Ordering::SeqCst);
    }

    /// Counters so far.
    pub(crate) fn stats(&self) -> ReplStats {
        ReplStats {
            shipped: self.shipped.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }

    /// Ship one committed batch and block for the backup's ack. A logical
    /// batch whose entries exceed one frame's budget is chunked into
    /// several consecutive `REPL_BATCH` frames, each consuming one
    /// sequence number, so arbitrarily large group commits never trip the
    /// encoder's frame-size limits.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the batch is *not* known to be durable
    /// on the backup; the connection is poisoned so later batches fail
    /// fast instead of shipping out of order.
    pub(crate) fn ship(&self, ops: &[WriteOp]) -> Result<(), String> {
        if ops.is_empty() {
            return Ok(());
        }
        let ordinal = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        if self.cut.load(Ordering::SeqCst) {
            self.failed.fetch_add(1, Ordering::Relaxed);
            return Err("replication stream cut".to_string());
        }
        if self.drop_batch == Some(ordinal) {
            // Injected fault: claim success without shipping — and without
            // consuming a sequence number, because this models the primary
            // silently skipping a batch. The backup's sequence check
            // cannot see the hole; the failover rig must catch it by
            // reading the backup back.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let mut guard = self.conn.lock().expect("repl conn lock");
        let Some(client) = guard.as_mut() else {
            self.failed.fetch_add(1, Ordering::Relaxed);
            return Err("replication connection poisoned by earlier failure".to_string());
        };
        let borrowed: Vec<ReplOp<'_>> = ops
            .iter()
            .map(|op| match op {
                WriteOp::Put { key, value } => ReplOp::Put { key, value },
                WriteOp::Del { key } => ReplOp::Del { key },
            })
            .collect();
        // Greedy chunking under the frame's entry-byte budget and the
        // u16 count limit. The first entry of a chunk is always taken, so
        // the pre-checks below are what keep the encoder's asserts
        // unreachable: MAX_PUT_PAYLOAD bounds every wire-accepted write,
        // and ops that never crossed the wire are screened here.
        let mut start = 0;
        while start < borrowed.len() {
            let mut bytes = 0usize;
            let mut end = start;
            while end < borrowed.len() && end - start < u16::MAX as usize {
                let op = &borrowed[end];
                let sz = repl_entry_size(op);
                let key_len = match op {
                    ReplOp::Put { key, .. } | ReplOp::Del { key } => key.len(),
                };
                if sz > REPL_MAX_ENTRY_BYTES || key_len > u16::MAX as usize {
                    *guard = None;
                    self.failed.fetch_add(1, Ordering::Relaxed);
                    return Err(format!(
                        "replication entry of {sz} bytes cannot be framed"
                    ));
                }
                if end > start && bytes + sz > REPL_MAX_ENTRY_BYTES {
                    break;
                }
                bytes += sz;
                end += 1;
            }
            let seq = self.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
            match client.repl_batch(self.shard, seq, &borrowed[start..end]) {
                Ok((s, q)) if s == self.shard && q == seq => {
                    self.shipped.fetch_add(1, Ordering::Relaxed);
                }
                Ok((s, q)) => {
                    *guard = None;
                    self.failed.fetch_add(1, Ordering::Relaxed);
                    return Err(format!(
                        "replication ack mismatch: sent ({}, {seq}), got ({s}, {q})",
                        self.shard
                    ));
                }
                Err(e) => {
                    *guard = None;
                    self.failed.fetch_add(1, Ordering::Relaxed);
                    return Err(format!("replication ship failed: {e}"));
                }
            }
            start = end;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{fresh_server_pool, KvEngine, PolicyKind};
    use crate::server::{Server, ServerConfig};
    use spp_kvstore::KEY_SIZE;

    fn key(i: u64) -> Vec<u8> {
        let mut k = vec![0u8; KEY_SIZE];
        k[..8].copy_from_slice(&i.to_be_bytes());
        k
    }

    #[test]
    fn oversized_batches_chunk_into_multiple_frames() {
        let pool = fresh_server_pool(64 << 20, 4, false).unwrap();
        let engine = Arc::new(KvEngine::create(pool, PolicyKind::Spp, 256).unwrap());
        let backup = Server::start(engine, ("127.0.0.1", 0), ServerConfig::default()).unwrap();
        let cfg = ReplConfig {
            backup: backup.local_addr(),
            ack_mode: ReplAckMode::Sync,
            drop_batch: None,
        };
        let sinks = ReplSink::connect_all(&cfg, 1).unwrap();

        // ~3 MiB of redo in one logical batch — far past MAX_FRAME — must
        // ship as several dense-sequenced frames, not panic the caller.
        let ops: Vec<WriteOp> = (1..=24u64)
            .map(|i| WriteOp::Put {
                key: key(i),
                value: vec![i as u8; 128 << 10],
            })
            .collect();
        sinks[0].ship(&ops).unwrap();
        let stats = sinks[0].stats();
        assert!(stats.shipped >= 3, "one frame per ~1MiB expected: {stats:?}");
        assert_eq!(stats.failed, 0);

        // The stream stays usable: a follow-up batch continues the dense
        // sequence the backup validates.
        sinks[0].ship(&[WriteOp::Del { key: key(1) }]).unwrap();

        let engine = Arc::clone(backup.engine());
        let mut out = Vec::new();
        assert!(!engine.get(&key(1), &mut out).unwrap());
        for i in 2..=24u64 {
            out.clear();
            assert!(engine.get(&key(i), &mut out).unwrap(), "key {i}");
            assert_eq!(out, vec![i as u8; 128 << 10]);
        }
        backup.shutdown();
    }
}
