//! Primary-side replication: per-shard sinks that ship committed write
//! batches to the backup over the wire protocol.
//!
//! Each shard's [`crate::group::GroupCommitter`] owns one [`ReplSink`]:
//! after a batch commits locally, the committer hands the sink the same
//! redo ops it just applied, and the sink sends them as one `REPL_BATCH`
//! frame and blocks for the backup's `REPL_ACK`. Sequence numbers are
//! per-shard and monotonic; the backup applies batches in arrival order on
//! a single connection, so a received ack means *every* prior batch of
//! that shard is durable on the backup too.
//!
//! The sink never retries: any ship failure (connection cut, backup error,
//! ack mismatch) poisons the connection, and in [`ReplAckMode::Sync`] the
//! committer converts the batch's client acks into errors — a client never
//! sees `OK` for a write the backup might not hold. Fault-injection hooks
//! (`cut`, `drop_batch`) exist solely for the failover rigs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::client::Client;
use crate::engine::WriteOp;
use crate::server::{ReplAckMode, ReplConfig, ReplStats};
use crate::wire::ReplOp;

/// One shard's replication stream to the backup.
pub(crate) struct ReplSink {
    shard: u32,
    ack_mode: ReplAckMode,
    /// The dedicated replication connection; poisoned (set to `None`) on
    /// the first failure. Only the shard's committer thread ships, so the
    /// lock is uncontended.
    conn: Mutex<Option<Client>>,
    /// Per-shard batch sequence, starting at 1.
    next_seq: AtomicU64,
    shipped: AtomicU64,
    dropped: AtomicU64,
    failed: AtomicU64,
    /// Simulated primary death, shared across every shard's sink.
    cut: Arc<AtomicBool>,
    /// Global ship ordinal across shards, for `drop_batch`.
    counter: Arc<AtomicU64>,
    /// Drop (but pretend to ack) the batch with this global ordinal.
    drop_batch: Option<u64>,
}

impl ReplSink {
    /// Open one replication connection per shard to `cfg.backup`. All
    /// sinks share the cut flag and the global batch ordinal.
    pub(crate) fn connect_all(
        cfg: &ReplConfig,
        nshards: usize,
    ) -> Result<Vec<Arc<ReplSink>>, crate::client::ClientError> {
        let cut = Arc::new(AtomicBool::new(false));
        let counter = Arc::new(AtomicU64::new(0));
        let mut sinks = Vec::with_capacity(nshards);
        for shard in 0..nshards {
            let client = Client::connect(cfg.backup)?;
            sinks.push(Arc::new(ReplSink {
                shard: shard as u32,
                ack_mode: cfg.ack_mode,
                conn: Mutex::new(Some(client)),
                next_seq: AtomicU64::new(0),
                shipped: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                cut: Arc::clone(&cut),
                counter: Arc::clone(&counter),
                drop_batch: cfg.drop_batch,
            }));
        }
        Ok(sinks)
    }

    /// Whether client acks wait for this sink's ship to succeed.
    pub(crate) fn is_sync(&self) -> bool {
        self.ack_mode == ReplAckMode::Sync
    }

    /// Sever the stream as if the primary died: every subsequent ship
    /// fails immediately.
    pub(crate) fn cut(&self) {
        self.cut.store(true, Ordering::SeqCst);
    }

    /// Counters so far.
    pub(crate) fn stats(&self) -> ReplStats {
        ReplStats {
            shipped: self.shipped.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }

    /// Ship one committed batch and block for the backup's ack.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the batch is *not* known to be durable
    /// on the backup; the connection is poisoned so later batches fail
    /// fast instead of shipping out of order.
    pub(crate) fn ship(&self, ops: &[WriteOp]) -> Result<(), String> {
        if ops.is_empty() {
            return Ok(());
        }
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
        let ordinal = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        if self.cut.load(Ordering::SeqCst) {
            self.failed.fetch_add(1, Ordering::Relaxed);
            return Err("replication stream cut".to_string());
        }
        if self.drop_batch == Some(ordinal) {
            // Injected fault: claim success without shipping. The failover
            // rig must catch the resulting hole on the backup.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let mut guard = self.conn.lock().expect("repl conn lock");
        let Some(client) = guard.as_mut() else {
            self.failed.fetch_add(1, Ordering::Relaxed);
            return Err("replication connection poisoned by earlier failure".to_string());
        };
        let borrowed: Vec<ReplOp<'_>> = ops
            .iter()
            .map(|op| match op {
                WriteOp::Put { key, value } => ReplOp::Put { key, value },
                WriteOp::Del { key } => ReplOp::Del { key },
            })
            .collect();
        match client.repl_batch(self.shard, seq, &borrowed) {
            Ok((s, q)) if s == self.shard && q == seq => {
                self.shipped.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Ok((s, q)) => {
                *guard = None;
                self.failed.fetch_add(1, Ordering::Relaxed);
                Err(format!(
                    "replication ack mismatch: sent ({}, {seq}), got ({s}, {q})",
                    self.shard
                ))
            }
            Err(e) => {
                *guard = None;
                self.failed.fetch_add(1, Ordering::Relaxed);
                Err(format!("replication ship failed: {e}"))
            }
        }
    }
}
