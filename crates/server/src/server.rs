//! The blocking TCP server: acceptor, per-connection framing threads, and
//! the bounded worker pool executing engine requests.
//!
//! Threading model:
//!
//! * one **acceptor** owns the listener; over-limit connections are
//!   answered with a `BUSY` frame and closed immediately;
//! * one **connection thread** per accepted socket does buffered framing
//!   (decode → enqueue → await reply → encode). Each connection is
//!   closed-loop: one outstanding request, so response ordering is
//!   structural;
//! * a fixed **worker pool** (the only threads touching the engine) drains
//!   the bounded request queue. When the queue is full the connection
//!   thread answers `BUSY` itself — saturation degrades into explicit
//!   rejection, never unbounded buffering.
//!
//! Durability contract: `PUT`/`DEL` are executed through the engine's
//! transactional path, which flushes and fences before returning — the ack
//! frame is only written after that, so **every acked write survives a
//! crash** (the root crash-restart test drives this over real sockets).
//!
//! Graceful shutdown (a `SHUTDOWN` frame or [`Server::shutdown`]) stops
//! accepting, lets connection threads drain, quiesces the worker pool
//! (queued jobs all run), and leaves the pool quiescent for a clean
//! reopen.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::KvEngine;
use crate::queue::{BoundedQueue, Job, PushError, WorkerPool};
use crate::wire::{
    decode_frame, encode_response, parse_request, Request, Response, WireError, MAX_FRAME, PREFIX,
};

/// Poll granularity for blocking reads: how quickly connection threads
/// notice a shutdown.
const READ_TICK: Duration = Duration::from_millis(50);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing engine requests.
    pub workers: usize,
    /// Maximum simultaneously served connections; excess connections get
    /// `BUSY` and are closed.
    pub max_conns: usize,
    /// Bounded request-queue depth; a full queue answers `BUSY` per
    /// request.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_conns: 64,
            queue_depth: 128,
        }
    }
}

struct Shared {
    engine: Arc<KvEngine>,
    cfg: ServerConfig,
    addr: SocketAddr,
    queue: Arc<BoundedQueue<Job>>,
    shutdown: AtomicBool,
    conns: AtomicUsize,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Shared {
    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        *self.done.lock().expect("done lock") = true;
        self.done_cv.notify_all();
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running KV service. Dropping without [`Server::shutdown`] aborts
/// non-gracefully (threads are detached); call `shutdown` for the clean
/// quiesce.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Option<WorkerPool>,
}

impl Server {
    /// Bind `addr` (port 0 picks an ephemeral port) and start serving
    /// `engine`.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn start(
        engine: Arc<KvEngine>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let queue = Arc::new(BoundedQueue::new(cfg.queue_depth));
        let workers = WorkerPool::start(Arc::clone(&queue), cfg.workers);
        let shared = Arc::new(Shared {
            engine,
            cfg,
            addr: local,
            queue,
            shutdown: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            conn_handles: Mutex::new(Vec::new()),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("spp-server-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers: Some(workers),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The engine being served.
    pub fn engine(&self) -> &Arc<KvEngine> {
        &self.shared.engine
    }

    /// Block until a shutdown is triggered (a `SHUTDOWN` frame or
    /// [`Server::shutdown`] from another thread via a prior clone of the
    /// trigger — the daemon's main loop).
    pub fn wait_shutdown(&self) {
        let mut done = self.shared.done.lock().expect("done lock");
        while !*done {
            done = self.shared.done_cv.wait(done).expect("done lock");
        }
    }

    /// Trigger + complete a graceful shutdown: stop accepting, drain
    /// connection threads, quiesce the worker pool (all queued jobs run),
    /// and join everything. Idempotent with a wire-initiated `SHUTDOWN`.
    pub fn shutdown(mut self) {
        self.shared.trigger_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let handles = std::mem::take(&mut *self.shared.conn_handles.lock().expect("conn handles"));
        for h in handles {
            let _ = h.join();
        }
        if let Some(w) = self.workers.take() {
            w.shutdown();
        }
        // Leave the device quiescent: a final fence so any straggling
        // flushed-but-unfenced stores are promoted before the pool is
        // dropped or its image saved.
        self.shared.engine.pool().pm().fence();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.conns.load(Ordering::SeqCst) >= shared.cfg.max_conns {
            reject_busy(stream);
            continue;
        }
        shared.conns.fetch_add(1, Ordering::SeqCst);
        let shared2 = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("spp-server-conn".into())
            .spawn(move || {
                serve_conn(stream, &shared2);
                shared2.conns.fetch_sub(1, Ordering::SeqCst);
            });
        match handle {
            Ok(h) => shared.conn_handles.lock().expect("conn handles").push(h),
            Err(_) => {
                shared.conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Connection-limit rejection: one `BUSY` frame, then close.
fn reject_busy(mut stream: TcpStream) {
    let mut out = Vec::with_capacity(8);
    encode_response(&mut out, &Response::Busy);
    let _ = stream.write_all(&out);
}

/// A request copied out of the receive buffer so it can cross to a worker.
enum OwnedRequest {
    Put { key: Vec<u8>, value: Vec<u8> },
    Del { key: Vec<u8> },
    Get { key: Vec<u8> },
    Stats,
    Flush,
}

/// A worker's reply, sent back over the connection's channel.
enum OwnedResponse {
    Ok,
    Value(Vec<u8>),
    NotFound,
    Err(String),
    Stats(String),
}

fn execute(engine: &KvEngine, req: OwnedRequest) -> OwnedResponse {
    match req {
        OwnedRequest::Put { key, value } => match engine.put(&key, &value) {
            Ok(()) => OwnedResponse::Ok,
            Err(e) => OwnedResponse::Err(e.to_string()),
        },
        OwnedRequest::Del { key } => match engine.remove(&key) {
            Ok(true) => OwnedResponse::Ok,
            Ok(false) => OwnedResponse::NotFound,
            Err(e) => OwnedResponse::Err(e.to_string()),
        },
        OwnedRequest::Get { key } => {
            let mut out = Vec::new();
            match engine.get(&key, &mut out) {
                Ok(true) => OwnedResponse::Value(out),
                Ok(false) => OwnedResponse::NotFound,
                Err(e) => OwnedResponse::Err(e.to_string()),
            }
        }
        OwnedRequest::Stats => match engine.render_stats() {
            Ok(body) => OwnedResponse::Stats(body),
            Err(e) => OwnedResponse::Err(e.to_string()),
        },
        OwnedRequest::Flush => {
            engine.fence();
            OwnedResponse::Ok
        }
    }
}

fn owned_of(req: &Request<'_>) -> Option<OwnedRequest> {
    match req {
        Request::Put { key, value } => Some(OwnedRequest::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        }),
        Request::Get { key } => Some(OwnedRequest::Get { key: key.to_vec() }),
        Request::Del { key } => Some(OwnedRequest::Del { key: key.to_vec() }),
        Request::Stats => Some(OwnedRequest::Stats),
        Request::Flush => Some(OwnedRequest::Flush),
        Request::Shutdown | Request::Ping => None,
    }
}

fn serve_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut rbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut wbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 16 * 1024];
    // Reused per-connection reply channel; capacity 1 because the
    // connection is closed-loop.
    let (reply_tx, reply_rx): (SyncSender<OwnedResponse>, Receiver<OwnedResponse>) =
        sync_channel(1);

    loop {
        // Drain complete frames already buffered.
        let mut consumed = 0;
        loop {
            wbuf.clear();
            let frame = match decode_frame(&rbuf[consumed..]) {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(e) => {
                    // Envelope error: the length prefix is garbage, the
                    // stream cannot resync. Report and close.
                    debug_assert!(e.is_envelope());
                    encode_response(&mut wbuf, &Response::Err(&e.to_string()));
                    let _ = stream.write_all(&wbuf);
                    return;
                }
            };
            let advance = frame.consumed;
            let close = match parse_request(&frame) {
                Err(e @ WireError::BadOpcode(_)) | Err(e @ WireError::BadPayload { .. }) => {
                    // Body error: frame boundary known — answer ERR and
                    // keep serving.
                    encode_response(&mut wbuf, &Response::Err(&e.to_string()));
                    false
                }
                Err(e) => {
                    encode_response(&mut wbuf, &Response::Err(&e.to_string()));
                    true
                }
                Ok(Request::Ping) => {
                    encode_response(&mut wbuf, &Response::Pong);
                    false
                }
                Ok(Request::Shutdown) => {
                    encode_response(&mut wbuf, &Response::Ok);
                    let _ = stream.write_all(&wbuf);
                    shared.trigger_shutdown();
                    return;
                }
                Ok(req) => {
                    let owned = owned_of(&req).expect("inline requests handled above");
                    let engine = Arc::clone(&shared.engine);
                    let tx = reply_tx.clone();
                    let job: Job = Box::new(move || {
                        // A hung/vanished connection must not wedge the
                        // worker: drop the reply instead of blocking.
                        let _ = tx.try_send(execute(&engine, owned));
                    });
                    match shared.queue.try_push(job) {
                        Ok(()) => match reply_rx.recv() {
                            Ok(resp) => {
                                encode_owned(&mut wbuf, &resp);
                                false
                            }
                            Err(_) => {
                                encode_response(
                                    &mut wbuf,
                                    &Response::Err("worker pool terminated"),
                                );
                                true
                            }
                        },
                        Err(PushError::Full(_)) => {
                            encode_response(&mut wbuf, &Response::Busy);
                            false
                        }
                        Err(PushError::Closed(_)) => {
                            encode_response(&mut wbuf, &Response::Err("server shutting down"));
                            true
                        }
                    }
                }
            };
            if !wbuf.is_empty() && stream.write_all(&wbuf).is_err() {
                return;
            }
            consumed += advance;
            if close {
                return;
            }
        }
        if consumed > 0 {
            rbuf.drain(..consumed);
        }
        // Oversized-but-incomplete frames never get here (decode_frame
        // rejects the prefix immediately), so rbuf growth is bounded by
        // MAX_FRAME plus one read chunk.
        debug_assert!(rbuf.len() <= MAX_FRAME + PREFIX + chunk.len());

        // Pull more bytes, ticking the shutdown flag.
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn encode_owned(out: &mut Vec<u8>, resp: &OwnedResponse) {
    match resp {
        OwnedResponse::Ok => encode_response(out, &Response::Ok),
        OwnedResponse::Value(v) => encode_response(out, &Response::Value(v)),
        OwnedResponse::NotFound => encode_response(out, &Response::NotFound),
        OwnedResponse::Err(m) => encode_response(out, &Response::Err(m)),
        OwnedResponse::Stats(s) => encode_response(out, &Response::Stats(s)),
    }
}
