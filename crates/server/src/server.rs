//! The TCP server: two selectable front ends (blocking threads or epoll
//! reactors) over one shared execution core.
//!
//! Threading model, blocking mode ([`IoMode::Threads`]):
//!
//! * one **acceptor** owns the listener; over-limit connections are
//!   answered with a `BUSY` frame and closed immediately;
//! * one **connection thread** per accepted socket does buffered framing.
//!   Connections are **pipelined**: every complete frame already buffered
//!   is decoded into one ordered *run* (`conn::decode_run`), the
//!   run executes as a single worker job, and the responses are written
//!   back in request order — ordering stays structural (one job in flight
//!   per connection);
//! * a fixed **worker pool** (the only threads touching the engine) drains
//!   the bounded request queue. When the queue is full the connection
//!   thread answers `BUSY` itself — saturation degrades into explicit
//!   rejection, never unbounded buffering;
//! * one **group-commit thread** ([`crate::group::GroupCommitter`]):
//!   consecutive `PUT`/`DEL`s in a run (and whole `MULTI` bodies) are
//!   submitted as write batches that share a single flush+fence boundary,
//!   coalescing across connections under load.
//!
//! Epoll mode ([`IoMode::Epoll`], see `reactor.rs`) replaces the
//! acceptor and the per-connection threads with `cfg.reactors` event-loop
//! threads; total thread count becomes `reactors + workers + committer`
//! regardless of connection count. The worker pool, group committer, and
//! run discipline are identical — only who reads the sockets changes. In
//! epoll mode a saturated queue *parks* the run and pauses reads instead
//! of answering `BUSY`: readiness backpressure replaces rejection.
//!
//! Durability contract (both modes): `PUT`/`DEL` acks are written only
//! after the batch (or single-op transaction) containing them has flushed
//! and fenced — **every acked write survives a crash**, and a batch is
//! atomic across a crash (the root crash-restart tests drive both over
//! real sockets, in both io modes). Within a run, a read is never
//! reordered before an earlier write: the pending write batch is
//! committed before any `GET`/`STATS`/`FLUSH` executes.
//!
//! Sharding ([`Server::start_multi`]): the execution core behind both
//! front ends is a `ShardSet` — N engines over N independent pools, one
//! group-commit thread per shard, routed by a consistent-hash
//! [`Ring`] over raw key bytes. Replication
//! ([`ReplConfig`]): each shard's committer ships its committed batches to
//! a backup server as `REPL_BATCH` frames; [`ReplAckMode::Sync`] makes the
//! client ack wait for the backup's `REPL_ACK`, so an acked write is
//! durable on both sides. A `PROMOTE` frame flips a backup into a primary.
//!
//! Graceful shutdown (a `SHUTDOWN` frame or [`Server::shutdown`]) stops
//! accepting, quiesces the front end (connection threads drain, or
//! reactors finish in-flight runs and flush acks), then the worker pool
//! (queued jobs all run), then the group committer, and leaves the pool
//! quiescent for a clean reopen.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::conn::{decode_run, encode_owned, OwnedRequest, OwnedResponse, Stop};
use crate::engine::{KvEngine, WriteOp, WriteReply};
use crate::group::{GroupCommitter, GroupConfig};
use crate::poll::Epoll;
use crate::queue::{BoundedQueue, Job, PushError, WorkerPool};
use crate::reactor::{reactor_main, ReactorShared};
use crate::repl::ReplSink;
use crate::ring::Ring;
use crate::wire::{encode_response, Response, MAX_FRAME, PREFIX};

/// Poll granularity for blocking reads: how quickly connection threads
/// notice a shutdown.
const READ_TICK: Duration = Duration::from_millis(50);

/// Which I/O front end serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Blocking accept + one thread per connection (the PR-3 front end).
    Threads,
    /// Sharded epoll reactors: connections cost a slab entry, not a
    /// thread (`reactor.rs`).
    Epoll,
}

impl FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<IoMode, String> {
        match s {
            "threads" | "blocking" => Ok(IoMode::Threads),
            "epoll" => Ok(IoMode::Epoll),
            other => Err(format!("unknown io mode `{other}` (threads|epoll)")),
        }
    }
}

impl std::fmt::Display for IoMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoMode::Threads => "threads",
            IoMode::Epoll => "epoll",
        })
    }
}

/// When a primary with a configured backup acks a client write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplAckMode {
    /// The client ack waits for the backup's `REPL_ACK`: an acked write is
    /// durable on *both* sides, and survives losing either one.
    Sync,
    /// The client ack follows the local durability boundary; the batch is
    /// shipped afterwards. Cheaper, but writes acked after the last shipped
    /// batch are lost if the primary dies.
    Async,
}

impl FromStr for ReplAckMode {
    type Err = String;

    fn from_str(s: &str) -> Result<ReplAckMode, String> {
        match s {
            "sync" => Ok(ReplAckMode::Sync),
            "async" => Ok(ReplAckMode::Async),
            other => Err(format!("unknown repl ack mode `{other}` (sync|async)")),
        }
    }
}

impl std::fmt::Display for ReplAckMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplAckMode::Sync => "sync",
            ReplAckMode::Async => "async",
        })
    }
}

/// Primary-side replication configuration: where to ship acked write
/// batches, and whether client acks wait for the backup.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// The backup server's address. It must be listening before the
    /// primary starts (each shard opens one replication connection up
    /// front).
    pub backup: SocketAddr,
    /// Whether client acks wait for backup durability.
    pub ack_mode: ReplAckMode,
    /// Fault-injection hook: silently drop the Nth shipped batch
    /// (1-based, counted across all shards) while pretending it was
    /// acked. Exists so the failover rig can prove it catches a lost
    /// batch; never set in production.
    pub drop_batch: Option<u64>,
}

/// Aggregate replication counters across all shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplStats {
    /// Batches shipped and acknowledged by the backup.
    pub shipped: u64,
    /// Batches deliberately dropped by the fault-injection hook.
    pub dropped: u64,
    /// Batches that failed to ship (connection cut or backup error).
    pub failed: u64,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing engine requests.
    pub workers: usize,
    /// Maximum simultaneously served connections; excess connections get
    /// `BUSY` and are closed.
    pub max_conns: usize,
    /// Bounded request-queue depth; a full queue answers `BUSY` per
    /// request (blocking mode) or parks the run (epoll mode).
    pub queue_depth: usize,
    /// Group-commit tuning for batched `PUT`/`DEL` durability boundaries.
    pub group: GroupConfig,
    /// Which front end reads the sockets.
    pub io: IoMode,
    /// Reactor threads in [`IoMode::Epoll`] (ignored in blocking mode).
    pub reactors: usize,
    /// Close connections idle longer than this (epoll mode only; `None`
    /// disables the timeout).
    pub idle_timeout: Option<Duration>,
    /// Ship acked write batches to a backup server (`None` disables
    /// replication).
    pub repl: Option<ReplConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_conns: 64,
            queue_depth: 128,
            group: GroupConfig::default(),
            io: IoMode::Threads,
            reactors: 2,
            idle_timeout: None,
            repl: None,
        }
    }
}

/// One shard: an engine over its own pool plus the group-commit thread
/// that owns its durability boundaries.
pub(crate) struct Shard {
    pub(crate) engine: Arc<KvEngine>,
    pub(crate) committer: Arc<GroupCommitter>,
}

/// The sharded execution core both front ends route into: per-shard
/// engine + committer behind a consistent-hash [`Ring`], plus the
/// promotion flag that flips a backup into a primary.
pub(crate) struct ShardSet {
    pub(crate) shards: Vec<Shard>,
    pub(crate) ring: Ring,
    /// Set by a `PROMOTE` frame: this server now refuses `REPL_BATCH`.
    pub(crate) promoted: AtomicBool,
    /// Backup-side replication cursor per shard: the next `REPL_BATCH`
    /// sequence number this server will accept. Sequences are dense and
    /// start at 1; `u64::MAX` marks a poisoned stream (a gap, duplicate,
    /// or reorder was detected and everything after it is refused).
    repl_expect: Vec<AtomicU64>,
}

impl ShardSet {
    /// The shard owning `key` under the ring.
    fn shard_for(&self, key: &[u8]) -> &Shard {
        &self.shards[self.ring.shard_of(key) as usize]
    }

    /// Whether any shard's committer has been closed — once one has, a
    /// parked run can never be served and must fail cleanly.
    pub(crate) fn any_committer_closed(&self) -> bool {
        self.shards.iter().any(|s| s.committer.is_closed())
    }

    /// Flush + fence every shard's pool.
    fn fence_all(&self) {
        for s in &self.shards {
            s.engine.fence();
        }
    }

    /// Promote this server: seal replication on every committer (checked
    /// under the committer's own lock, so there is no check-then-enqueue
    /// window), drain anything replicated that beat the seal, then fence
    /// every shard and refuse further `REPL_BATCH` frames. Ordering
    /// matters: nothing replicated can commit after the fence.
    fn promote(&self) {
        for s in &self.shards {
            s.committer.seal_repl();
        }
        for s in &self.shards {
            s.committer.barrier();
        }
        self.fence_all();
        self.promoted.store(true, Ordering::SeqCst);
    }

    /// The `STATS` body: shard 0's engine stats, plus (multi-shard only)
    /// the shard count and per-shard key counts.
    fn render_stats(&self) -> Result<String, String> {
        let mut body = self.shards[0]
            .engine
            .render_stats()
            .map_err(|e| e.to_string())?;
        if self.shards.len() > 1 {
            body.push_str(&format!("shards={}\n", self.shards.len()));
            for (i, s) in self.shards.iter().enumerate() {
                let keys = s.engine.count().map_err(|e| e.to_string())?;
                body.push_str(&format!("shard{i}_keys={keys}\n"));
            }
        }
        Ok(body)
    }
}

pub(crate) struct Shared {
    pub(crate) shards: Arc<ShardSet>,
    pub(crate) cfg: ServerConfig,
    pub(crate) addr: SocketAddr,
    pub(crate) queue: Arc<BoundedQueue<Job>>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) conns: AtomicUsize,
    pub(crate) conn_handles: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) reactors: Vec<Arc<ReactorShared>>,
    pub(crate) done: Mutex<bool>,
    pub(crate) done_cv: Condvar,
}

impl Shared {
    pub(crate) fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        *self.done.lock().expect("done lock") = true;
        self.done_cv.notify_all();
        match self.cfg.io {
            // Wake the acceptor out of its blocking accept.
            IoMode::Threads => {
                let _ = TcpStream::connect(self.addr);
            }
            // Ring every reactor's doorbell; they observe the flag and
            // start draining.
            IoMode::Epoll => {
                for r in &self.reactors {
                    r.wake.signal();
                }
            }
        }
    }
}

/// A running KV service. Dropping without [`Server::shutdown`] aborts
/// non-gracefully (threads are detached); call `shutdown` for the clean
/// quiesce.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    reactor_handles: Vec<JoinHandle<()>>,
    workers: Option<WorkerPool>,
}

impl Server {
    /// Bind `addr` (port 0 picks an ephemeral port) and start serving
    /// `engine` with the front end selected by `cfg.io`. Single-shard
    /// convenience over [`Server::start_multi`].
    ///
    /// # Errors
    ///
    /// Socket errors (and, in epoll mode, epoll/eventfd creation errors).
    pub fn start(
        engine: Arc<KvEngine>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::start_multi(vec![engine], addr, cfg)
    }

    /// Bind `addr` and serve `engines` as shards behind a consistent-hash
    /// ring: each engine keeps its own pool, recovery path, and generation
    /// index, and gets its own group-commit thread, so shards never share
    /// a durability boundary. Both front ends route every key to its
    /// owning shard via [`Ring::shard_of`] over the raw key bytes — the
    /// same ring a client can mirror from nothing but the shard count.
    ///
    /// With `cfg.repl` set, every shard opens a replication connection to
    /// the backup before serving starts and ships each committed batch as
    /// a `REPL_BATCH` frame (see [`ReplAckMode`] for what client acks then
    /// mean).
    ///
    /// # Errors
    ///
    /// Socket errors, epoll/eventfd creation errors (epoll mode), and
    /// replication-connection errors when `cfg.repl` is set.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty.
    pub fn start_multi(
        engines: Vec<Arc<KvEngine>>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(!engines.is_empty(), "server needs at least one shard");
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let queue = Arc::new(BoundedQueue::new(cfg.queue_depth));
        let workers = WorkerPool::start(Arc::clone(&queue), cfg.workers);
        let sinks = match &cfg.repl {
            Some(rc) => ReplSink::connect_all(rc, engines.len())
                .map_err(|e| std::io::Error::other(e.to_string()))?,
            None => Vec::new(),
        };
        let ring = Ring::new(engines.len() as u32);
        let shards: Vec<Shard> = engines
            .into_iter()
            .enumerate()
            .map(|(i, engine)| {
                let sink = sinks.get(i).cloned();
                let committer =
                    GroupCommitter::start_with_repl(Arc::clone(&engine), cfg.group, sink);
                Shard { engine, committer }
            })
            .collect();
        let nshards = shards.len();
        let shard_set = Arc::new(ShardSet {
            shards,
            ring,
            promoted: AtomicBool::new(false),
            repl_expect: (0..nshards).map(|_| AtomicU64::new(1)).collect(),
        });
        let io = cfg.io;
        let n_reactors = cfg.reactors.max(1);

        // Epoll-mode kernel objects are created up front so setup errors
        // surface here as io::Error instead of panicking a thread.
        let (reactor_shareds, epolls) = if io == IoMode::Epoll {
            let mut shareds = Vec::with_capacity(n_reactors);
            let mut epolls = Vec::with_capacity(n_reactors);
            for _ in 0..n_reactors {
                shareds.push(Arc::new(ReactorShared::new()?));
                epolls.push(Epoll::new()?);
            }
            (shareds, epolls)
        } else {
            (Vec::new(), Vec::new())
        };

        let shared = Arc::new(Shared {
            shards: shard_set,
            cfg,
            addr: local,
            queue,
            shutdown: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            conn_handles: Mutex::new(Vec::new()),
            reactors: reactor_shareds,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });

        let mut acceptor = None;
        let mut reactor_handles = Vec::new();
        match io {
            IoMode::Threads => {
                let shared2 = Arc::clone(&shared);
                acceptor = Some(
                    std::thread::Builder::new()
                        .name("spp-server-acceptor".into())
                        .spawn(move || accept_loop(&listener, &shared2))?,
                );
            }
            IoMode::Epoll => {
                let mut listener = Some(listener);
                for (i, epoll) in epolls.into_iter().enumerate() {
                    let shared2 = Arc::clone(&shared);
                    let me = Arc::clone(&shared.reactors[i]);
                    let peers = shared.reactors.clone();
                    // Reactor 0 owns the listener and deals accepted
                    // sockets round-robin to its peers.
                    let l = if i == 0 { listener.take() } else { None };
                    reactor_handles.push(
                        std::thread::Builder::new()
                            .name(format!("spp-server-reactor-{i}"))
                            .spawn(move || reactor_main(i, epoll, l, shared2, me, peers))?,
                    );
                }
            }
        }
        Ok(Server {
            shared,
            acceptor,
            reactor_handles,
            workers: Some(workers),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The engine being served — shard 0's engine (the only one on a
    /// single-shard server). See [`Server::engines`] for all shards.
    pub fn engine(&self) -> &Arc<KvEngine> {
        &self.shared.shards.shards[0].engine
    }

    /// Every shard's engine, in shard order.
    pub fn engines(&self) -> Vec<Arc<KvEngine>> {
        self.shared
            .shards
            .shards
            .iter()
            .map(|s| Arc::clone(&s.engine))
            .collect()
    }

    /// The consistent-hash ring this server routes with. A client can
    /// rebuild the identical ring from the shard count alone.
    pub fn ring(&self) -> &Ring {
        &self.shared.shards.ring
    }

    /// Whether a `PROMOTE` frame has flipped this server to primary.
    pub fn is_promoted(&self) -> bool {
        self.shared.shards.promoted.load(Ordering::SeqCst)
    }

    /// Group-commit counters so far, summed across shards: `(batches
    /// committed, write ops committed through those batches)`. `ops >
    /// batches` proves writes shared durability boundaries.
    pub fn group_stats(&self) -> (u64, u64) {
        let mut batches = 0;
        let mut ops = 0;
        for s in &self.shared.shards.shards {
            let (b, o) = s.committer.stats();
            batches += b;
            ops += o;
        }
        (batches, ops)
    }

    /// Replication counters summed across shards, or `None` when no
    /// backup is configured.
    pub fn repl_stats(&self) -> Option<ReplStats> {
        let mut out = ReplStats::default();
        let mut any = false;
        for s in &self.shared.shards.shards {
            if let Some(stats) = s.committer.repl_stats() {
                any = true;
                out.shipped += stats.shipped;
                out.dropped += stats.dropped;
                out.failed += stats.failed;
            }
        }
        any.then_some(out)
    }

    /// Sever the replication stream as if the primary process died
    /// mid-flight: every subsequent ship fails (which in sync ack mode
    /// turns the affected client acks into errors). Test-only hook for
    /// the failover rigs; real traffic never calls this.
    #[doc(hidden)]
    pub fn debug_cut_replication(&self) {
        for s in &self.shared.shards.shards {
            s.committer.cut_replication();
        }
    }

    /// Close every shard's group committer without shutting the server
    /// down, leaving front ends and workers running. Test-only hook for
    /// the parked-run regression tests.
    #[doc(hidden)]
    pub fn debug_close_committers(&self) {
        for s in &self.shared.shards.shards {
            s.committer.close();
        }
    }

    /// Block until a shutdown is triggered (a `SHUTDOWN` frame or
    /// [`Server::shutdown`] from another thread via a prior clone of the
    /// trigger — the daemon's main loop).
    pub fn wait_shutdown(&self) {
        let mut done = self.shared.done.lock().expect("done lock");
        while !*done {
            done = self.shared.done_cv.wait(done).expect("done lock");
        }
    }

    /// Occupy worker-pool capacity with `jobs` sleeper jobs holding for
    /// `hold` each; returns how many were accepted. Test-only hook for
    /// saturating the queue deterministically (the stalled-pool
    /// backpressure regression tests); real traffic never calls this.
    #[doc(hidden)]
    pub fn debug_stall_workers(&self, jobs: usize, hold: Duration) -> usize {
        let mut accepted = 0;
        for _ in 0..jobs {
            let job: Job = Box::new(move || std::thread::sleep(hold));
            if self.shared.queue.try_push(job).is_ok() {
                accepted += 1;
            }
        }
        accepted
    }

    /// Trigger + complete a graceful shutdown: stop accepting, drain the
    /// front end (connection threads, or reactors finishing in-flight
    /// runs), quiesce the worker pool (all queued jobs run), and join
    /// everything. Idempotent with a wire-initiated `SHUTDOWN`.
    pub fn shutdown(mut self) {
        self.shared.trigger_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Reactors quiesce BEFORE the workers: they stop feeding the
        // queue, finish parked/in-flight runs, and flush acks; only then
        // is the pool drained and closed.
        for h in std::mem::take(&mut self.reactor_handles) {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.shared.conn_handles.lock().expect("conn handles"));
        for h in handles {
            let _ = h.join();
        }
        if let Some(w) = self.workers.take() {
            w.shutdown();
        }
        // Workers are quiesced, so no job can submit any more: the
        // committers drain and stop cleanly.
        for s in &self.shared.shards.shards {
            s.committer.close();
        }
        // Leave every device quiescent: a final fence so any straggling
        // flushed-but-unfenced stores are promoted before the pools are
        // dropped or their images saved.
        for s in &self.shared.shards.shards {
            s.engine.pool().pm().fence();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.conns.load(Ordering::SeqCst) >= shared.cfg.max_conns {
            reject_busy(stream);
            continue;
        }
        shared.conns.fetch_add(1, Ordering::SeqCst);
        let shared2 = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("spp-server-conn".into())
            .spawn(move || {
                serve_conn(stream, &shared2);
                shared2.conns.fetch_sub(1, Ordering::SeqCst);
            });
        match handle {
            Ok(h) => shared.conn_handles.lock().expect("conn handles").push(h),
            Err(_) => {
                shared.conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Connection-limit rejection: one `BUSY` frame, then close.
pub(crate) fn reject_busy(mut stream: TcpStream) {
    let mut out = Vec::with_capacity(8);
    encode_response(&mut out, &Response::Busy);
    let _ = stream.write_all(&out);
}

/// Execute one non-write request directly against its owning shard
/// (writes go through the shard's group committer — see [`execute_ops`]).
fn execute(shards: &ShardSet, req: OwnedRequest) -> OwnedResponse {
    match req {
        OwnedRequest::Put { key, value } => match shards.shard_for(&key).engine.put(&key, &value) {
            Ok(()) => OwnedResponse::Ok,
            Err(e) => OwnedResponse::Err(e.to_string()),
        },
        OwnedRequest::Del { key } => match shards.shard_for(&key).engine.remove(&key) {
            Ok(true) => OwnedResponse::Ok,
            Ok(false) => OwnedResponse::NotFound,
            Err(e) => OwnedResponse::Err(e.to_string()),
        },
        OwnedRequest::Get { key } => {
            let mut out = Vec::new();
            match shards.shard_for(&key).engine.get(&key, &mut out) {
                Ok(true) => OwnedResponse::Value(out),
                Ok(false) => OwnedResponse::NotFound,
                Err(e) => OwnedResponse::Err(e.to_string()),
            }
        }
        OwnedRequest::Stats => match shards.render_stats() {
            Ok(body) => OwnedResponse::Stats(body),
            Err(m) => OwnedResponse::Err(m),
        },
        OwnedRequest::Flush => {
            shards.fence_all();
            OwnedResponse::Ok
        }
        OwnedRequest::Ping => OwnedResponse::Pong,
        OwnedRequest::ReplHello { shards: n } => {
            // Layout handshake on a replication connection: refuse a
            // primary whose shard numbering would not map onto ours.
            if shards.promoted.load(Ordering::SeqCst) {
                OwnedResponse::Err("promoted: no longer accepting replication".to_string())
            } else if n as usize == shards.shards.len() {
                OwnedResponse::Ok
            } else {
                OwnedResponse::Err(format!(
                    "replication shard count mismatch: primary ships {n} shards, this backup serves {}",
                    shards.shards.len()
                ))
            }
        }
        // Wire validation rejects nested MULTI; `execute_ops` handles the
        // outer level. Answer defensively rather than panic a worker.
        OwnedRequest::Multi(_) => OwnedResponse::Err("nested MULTI".to_string()),
        // Handled in `execute_ops` (they need the staging barrier there);
        // defensive here for the same reason as Multi.
        OwnedRequest::ReplBatch { .. } | OwnedRequest::Promote => {
            OwnedResponse::Err("replication frame outside run context".to_string())
        }
    }
}

/// Apply one replicated batch on the backup side: validate the per-shard
/// sequence cursor, submit the redo ops to the owning shard's committer
/// (so the batch commits behind the backup's *own* durability boundary),
/// and ack with the batch's `(shard, seq)` only after that boundary. A
/// promoted server refuses — it is a primary now.
///
/// Sequences are dense per shard, so any gap, duplicate, or reorder is a
/// protocol-visible fault: the batch is rejected and the shard's stream is
/// poisoned (every later batch on it errors too), rather than silently
/// applied with the primary and backup diverging. Batches arrive on a
/// single ordered connection per shard, so exactly one `REPL_BATCH` per
/// (shard, seq) can be in flight here — the load-validate-store below
/// never races with itself.
fn apply_repl_batch(shards: &ShardSet, shard: u32, seq: u64, ops: Vec<WriteOp>) -> OwnedResponse {
    if shards.promoted.load(Ordering::SeqCst) {
        return OwnedResponse::Err("promoted: no longer accepting replication".to_string());
    }
    let Some(s) = shards.shards.get(shard as usize) else {
        return OwnedResponse::Err(format!(
            "no such shard {shard} (this server has {})",
            shards.shards.len()
        ));
    };
    let cursor = &shards.repl_expect[shard as usize];
    let expect = cursor.load(Ordering::SeqCst);
    if expect == u64::MAX {
        return OwnedResponse::Err(format!(
            "replication stream for shard {shard} is poisoned by an earlier sequence error"
        ));
    }
    if seq != expect {
        cursor.store(u64::MAX, Ordering::SeqCst);
        return OwnedResponse::Err(format!(
            "replication sequence broken on shard {shard}: expected {expect}, got {seq}"
        ));
    }
    match s.committer.submit_repl(ops) {
        Ok(replies) => {
            // A per-op failure means the backup does NOT hold the batch
            // verbatim; never ack it as replicated — and the stream has
            // diverged, so poison it. (A delete's NotFound is fine — the
            // tombstone state matches the primary either way.)
            for r in &replies {
                if let WriteReply::Err(m) = r {
                    cursor.store(u64::MAX, Ordering::SeqCst);
                    return OwnedResponse::Err(format!("replicated op failed: {m}"));
                }
            }
            cursor.store(expect + 1, Ordering::SeqCst);
            OwnedResponse::ReplAck { shard, seq }
        }
        Err(e) => {
            cursor.store(u64::MAX, Ordering::SeqCst);
            OwnedResponse::Err(e.to_string())
        }
    }
}

/// Execute an ordered run of requests with sharded write batching:
/// consecutive `PUT`/`DEL`s are staged per owning shard and committed
/// through each shard's group committer as one shared durability boundary
/// per shard; the stages are flushed before anything that must observe
/// those writes (a read, `STATS`, `FLUSH`) and at `MULTI` boundaries, so
/// responses are exactly what sequential execution would produce. (On a
/// multi-shard server a `MULTI` is atomic *per shard* — each shard's slice
/// of the batch shares one boundary — not across shards.) Both front ends
/// call this — and only this — to run a run.
pub(crate) fn execute_ops(shards: &ShardSet, reqs: Vec<OwnedRequest>) -> Vec<OwnedResponse> {
    let nshards = shards.shards.len();
    let mut out: Vec<Option<OwnedResponse>> = Vec::with_capacity(reqs.len());
    let mut staged: Vec<Vec<(usize, WriteOp)>> = vec![Vec::new(); nshards];
    for req in reqs {
        match req {
            OwnedRequest::Put { key, value } => {
                let s = shards.ring.shard_of(&key) as usize;
                staged[s].push((out.len(), WriteOp::Put { key, value }));
                out.push(None);
            }
            OwnedRequest::Del { key } => {
                let s = shards.ring.shard_of(&key) as usize;
                staged[s].push((out.len(), WriteOp::Del { key }));
                out.push(None);
            }
            OwnedRequest::Ping => out.push(Some(OwnedResponse::Pong)),
            OwnedRequest::Multi(nested) => {
                // A MULTI body is its own (per-shard) atomic batch: align
                // batch boundaries with the frame boundary on both sides.
                flush_staged(shards, &mut out, &mut staged);
                let replies = execute_ops(shards, nested);
                out.push(Some(OwnedResponse::Multi(replies)));
            }
            OwnedRequest::ReplBatch { shard, seq, ops } => {
                // Replication applies whole batches in shipping order;
                // never interleave them with this run's staged writes.
                flush_staged(shards, &mut out, &mut staged);
                out.push(Some(apply_repl_batch(shards, shard, seq, ops)));
            }
            OwnedRequest::Promote => {
                flush_staged(shards, &mut out, &mut staged);
                shards.promote();
                out.push(Some(OwnedResponse::Ok));
            }
            req => {
                // Reads must observe every earlier write in the run.
                flush_staged(shards, &mut out, &mut staged);
                out.push(Some(execute(shards, req)));
            }
        }
    }
    flush_staged(shards, &mut out, &mut staged);
    out.into_iter()
        .map(|r| r.expect("every slot answered"))
        .collect()
}

/// Commit each shard's staged writes as one group-commit submission to
/// that shard's committer and patch the replies into their slots. Two
/// writes to the same key always share a shard, so per-key ordering is
/// preserved even though shards flush independently. No-op when nothing
/// is staged.
fn flush_staged(
    shards: &ShardSet,
    out: &mut [Option<OwnedResponse>],
    staged: &mut [Vec<(usize, WriteOp)>],
) {
    for (shard, stage) in shards.shards.iter().zip(staged.iter_mut()) {
        if stage.is_empty() {
            continue;
        }
        let (slots, ops): (Vec<usize>, Vec<WriteOp>) = std::mem::take(stage).into_iter().unzip();
        match shard.committer.submit(ops) {
            Ok(replies) => {
                debug_assert_eq!(replies.len(), slots.len());
                for (slot, reply) in slots.into_iter().zip(replies) {
                    out[slot] = Some(match reply {
                        WriteReply::Ok => OwnedResponse::Ok,
                        WriteReply::NotFound => OwnedResponse::NotFound,
                        WriteReply::Err(m) => OwnedResponse::Err(m),
                    });
                }
            }
            Err(e) => {
                // Committer closed mid-run (shutdown race): nothing
                // applied, nothing acked as durable.
                for slot in slots {
                    out[slot] = Some(OwnedResponse::Err(e.to_string()));
                }
            }
        }
    }
}

fn serve_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    use std::io::Read;

    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut rbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut wbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 16 * 1024];
    // Reused per-connection reply channel; capacity 1 because at most one
    // run job is in flight per connection.
    let (reply_tx, reply_rx): (SyncSender<Vec<OwnedResponse>>, Receiver<Vec<OwnedResponse>>) =
        sync_channel(1);

    loop {
        // The shared run decoder: every complete frame already buffered
        // becomes one ordered run (see `crate::conn::decode_run`).
        let run = decode_run(&rbuf);
        if run.consumed > 0 {
            rbuf.drain(..run.consumed);
        }
        let mut replies = run.replies;
        let execs = run.execs;
        let exec_slots = run.exec_slots;
        let stop = run.stop;

        // Execute the run: one worker job for all engine requests in it.
        wbuf.clear();
        let mut close_after: Option<&str> = None;
        if !execs.is_empty() {
            let shards = Arc::clone(&shared.shards);
            let tx = reply_tx.clone();
            let job: Job = Box::new(move || {
                // A hung/vanished connection must not wedge the worker:
                // drop the reply instead of blocking.
                let _ = tx.try_send(execute_ops(&shards, execs));
            });
            match shared.queue.try_push(job) {
                Ok(()) => match reply_rx.recv() {
                    Ok(run_replies) => {
                        debug_assert_eq!(run_replies.len(), exec_slots.len());
                        for (slot, reply) in exec_slots.into_iter().zip(run_replies) {
                            replies[slot] = Some(reply);
                        }
                    }
                    Err(_) => close_after = Some("worker pool terminated"),
                },
                Err(PushError::Full(_)) => {
                    // Saturated: reject the whole run's engine work with
                    // BUSY (inline answers still stand) — explicit
                    // backpressure, never unbounded buffering. (The epoll
                    // front end parks the run instead.)
                    for slot in exec_slots {
                        replies[slot] = Some(OwnedResponse::Busy);
                    }
                }
                Err(PushError::Closed(_)) => close_after = Some("server shutting down"),
            }
        }
        for reply in &replies {
            match reply {
                Some(resp) => encode_owned(&mut wbuf, resp),
                // Unanswered tail after a fatal pool error; the error
                // frame below closes the connection.
                None => break,
            }
        }
        if let Some(msg) = close_after {
            encode_response(&mut wbuf, &Response::Err(msg));
            let _ = stream.write_all(&wbuf);
            if matches!(stop, Some(Stop::Shutdown)) {
                shared.trigger_shutdown();
            }
            return;
        }
        match stop {
            Some(Stop::Shutdown) => {
                encode_response(&mut wbuf, &Response::Ok);
                let _ = stream.write_all(&wbuf);
                shared.trigger_shutdown();
                return;
            }
            Some(Stop::Envelope(msg)) => {
                encode_response(&mut wbuf, &Response::Err(&msg));
                let _ = stream.write_all(&wbuf);
                return;
            }
            None => {}
        }
        if !wbuf.is_empty() && stream.write_all(&wbuf).is_err() {
            return;
        }
        // Oversized-but-incomplete frames never get here (decode_frame
        // rejects the prefix immediately), so rbuf growth is bounded by
        // MAX_FRAME plus one read chunk.
        debug_assert!(rbuf.len() <= MAX_FRAME + PREFIX + chunk.len());

        // Pull more bytes, ticking the shutdown flag.
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
