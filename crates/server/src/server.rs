//! The blocking TCP server: acceptor, per-connection framing threads, and
//! the bounded worker pool executing engine requests.
//!
//! Threading model:
//!
//! * one **acceptor** owns the listener; over-limit connections are
//!   answered with a `BUSY` frame and closed immediately;
//! * one **connection thread** per accepted socket does buffered framing.
//!   Connections are **pipelined**: every complete frame already buffered
//!   is decoded into one ordered *run*, the run executes as a single
//!   worker job, and the responses are written back in request order —
//!   ordering stays structural (one job in flight per connection), but a
//!   client that streams N requests without waiting gets them serviced as
//!   a unit instead of N round trips;
//! * a fixed **worker pool** (the only threads touching the engine) drains
//!   the bounded request queue. When the queue is full the connection
//!   thread answers `BUSY` itself — saturation degrades into explicit
//!   rejection, never unbounded buffering;
//! * one **group-commit thread** ([`crate::group::GroupCommitter`]):
//!   consecutive `PUT`/`DEL`s in a run (and whole `MULTI` bodies) are
//!   submitted as write batches that share a single flush+fence boundary,
//!   coalescing across connections under load.
//!
//! Durability contract: `PUT`/`DEL` acks are written only after the batch
//! (or single-op transaction) containing them has flushed and fenced —
//! **every acked write survives a crash**, and a batch is atomic across a
//! crash (the root crash-restart tests drive both over real sockets).
//! Within a run, a read is never reordered before an earlier write: the
//! pending write batch is committed before any `GET`/`STATS`/`FLUSH`
//! executes.
//!
//! Graceful shutdown (a `SHUTDOWN` frame or [`Server::shutdown`]) stops
//! accepting, lets connection threads drain, quiesces the worker pool
//! (queued jobs all run), then stops the group committer, and leaves the
//! pool quiescent for a clean reopen.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::{KvEngine, WriteOp, WriteReply};
use crate::group::{GroupCommitter, GroupConfig};
use crate::queue::{BoundedQueue, Job, PushError, WorkerPool};
use crate::wire::{
    decode_frame, encode_response, parse_request, try_encode_multi_response, Request, Response,
    MAX_FRAME, PREFIX,
};

/// Poll granularity for blocking reads: how quickly connection threads
/// notice a shutdown.
const READ_TICK: Duration = Duration::from_millis(50);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing engine requests.
    pub workers: usize,
    /// Maximum simultaneously served connections; excess connections get
    /// `BUSY` and are closed.
    pub max_conns: usize,
    /// Bounded request-queue depth; a full queue answers `BUSY` per
    /// request.
    pub queue_depth: usize,
    /// Group-commit tuning for batched `PUT`/`DEL` durability boundaries.
    pub group: GroupConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_conns: 64,
            queue_depth: 128,
            group: GroupConfig::default(),
        }
    }
}

struct Shared {
    engine: Arc<KvEngine>,
    cfg: ServerConfig,
    addr: SocketAddr,
    queue: Arc<BoundedQueue<Job>>,
    committer: Arc<GroupCommitter>,
    shutdown: AtomicBool,
    conns: AtomicUsize,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Shared {
    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        *self.done.lock().expect("done lock") = true;
        self.done_cv.notify_all();
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running KV service. Dropping without [`Server::shutdown`] aborts
/// non-gracefully (threads are detached); call `shutdown` for the clean
/// quiesce.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Option<WorkerPool>,
}

impl Server {
    /// Bind `addr` (port 0 picks an ephemeral port) and start serving
    /// `engine`.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn start(
        engine: Arc<KvEngine>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let queue = Arc::new(BoundedQueue::new(cfg.queue_depth));
        let workers = WorkerPool::start(Arc::clone(&queue), cfg.workers);
        let committer = GroupCommitter::start(Arc::clone(&engine), cfg.group);
        let shared = Arc::new(Shared {
            engine,
            cfg,
            addr: local,
            queue,
            committer,
            shutdown: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            conn_handles: Mutex::new(Vec::new()),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("spp-server-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers: Some(workers),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The engine being served.
    pub fn engine(&self) -> &Arc<KvEngine> {
        &self.shared.engine
    }

    /// Group-commit counters so far: `(batches committed, write ops
    /// committed through those batches)`. `ops > batches` proves writes
    /// shared durability boundaries.
    pub fn group_stats(&self) -> (u64, u64) {
        self.shared.committer.stats()
    }

    /// Block until a shutdown is triggered (a `SHUTDOWN` frame or
    /// [`Server::shutdown`] from another thread via a prior clone of the
    /// trigger — the daemon's main loop).
    pub fn wait_shutdown(&self) {
        let mut done = self.shared.done.lock().expect("done lock");
        while !*done {
            done = self.shared.done_cv.wait(done).expect("done lock");
        }
    }

    /// Trigger + complete a graceful shutdown: stop accepting, drain
    /// connection threads, quiesce the worker pool (all queued jobs run),
    /// and join everything. Idempotent with a wire-initiated `SHUTDOWN`.
    pub fn shutdown(mut self) {
        self.shared.trigger_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let handles = std::mem::take(&mut *self.shared.conn_handles.lock().expect("conn handles"));
        for h in handles {
            let _ = h.join();
        }
        if let Some(w) = self.workers.take() {
            w.shutdown();
        }
        // Workers are quiesced, so no job can submit any more: the
        // committer drains and stops cleanly.
        self.shared.committer.close();
        // Leave the device quiescent: a final fence so any straggling
        // flushed-but-unfenced stores are promoted before the pool is
        // dropped or its image saved.
        self.shared.engine.pool().pm().fence();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.conns.load(Ordering::SeqCst) >= shared.cfg.max_conns {
            reject_busy(stream);
            continue;
        }
        shared.conns.fetch_add(1, Ordering::SeqCst);
        let shared2 = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("spp-server-conn".into())
            .spawn(move || {
                serve_conn(stream, &shared2);
                shared2.conns.fetch_sub(1, Ordering::SeqCst);
            });
        match handle {
            Ok(h) => shared.conn_handles.lock().expect("conn handles").push(h),
            Err(_) => {
                shared.conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Connection-limit rejection: one `BUSY` frame, then close.
fn reject_busy(mut stream: TcpStream) {
    let mut out = Vec::with_capacity(8);
    encode_response(&mut out, &Response::Busy);
    let _ = stream.write_all(&out);
}

/// A request copied out of the receive buffer so it can cross to a worker.
enum OwnedRequest {
    Put { key: Vec<u8>, value: Vec<u8> },
    Del { key: Vec<u8> },
    Get { key: Vec<u8> },
    Stats,
    Flush,
    Ping,
    Multi(Vec<OwnedRequest>),
}

/// A worker's reply, sent back over the connection's channel.
enum OwnedResponse {
    Ok,
    Value(Vec<u8>),
    NotFound,
    Err(String),
    Stats(String),
    Pong,
    Busy,
    Multi(Vec<OwnedResponse>),
}

/// Execute one non-write request directly (writes go through the group
/// committer — see [`execute_ops`]).
fn execute(engine: &KvEngine, req: OwnedRequest) -> OwnedResponse {
    match req {
        OwnedRequest::Put { key, value } => match engine.put(&key, &value) {
            Ok(()) => OwnedResponse::Ok,
            Err(e) => OwnedResponse::Err(e.to_string()),
        },
        OwnedRequest::Del { key } => match engine.remove(&key) {
            Ok(true) => OwnedResponse::Ok,
            Ok(false) => OwnedResponse::NotFound,
            Err(e) => OwnedResponse::Err(e.to_string()),
        },
        OwnedRequest::Get { key } => {
            let mut out = Vec::new();
            match engine.get(&key, &mut out) {
                Ok(true) => OwnedResponse::Value(out),
                Ok(false) => OwnedResponse::NotFound,
                Err(e) => OwnedResponse::Err(e.to_string()),
            }
        }
        OwnedRequest::Stats => match engine.render_stats() {
            Ok(body) => OwnedResponse::Stats(body),
            Err(e) => OwnedResponse::Err(e.to_string()),
        },
        OwnedRequest::Flush => {
            engine.fence();
            OwnedResponse::Ok
        }
        OwnedRequest::Ping => OwnedResponse::Pong,
        // Wire validation rejects nested MULTI; `execute_ops` handles the
        // outer level. Answer defensively rather than panic a worker.
        OwnedRequest::Multi(_) => OwnedResponse::Err("nested MULTI".to_string()),
    }
}

/// Execute an ordered run of requests with write batching: consecutive
/// `PUT`/`DEL`s are staged and committed through the group committer as one
/// shared durability boundary; the stage is flushed before anything that
/// must observe those writes (a read, `STATS`, `FLUSH`) and at `MULTI`
/// boundaries, so responses are exactly what sequential execution would
/// produce.
fn execute_ops(
    engine: &KvEngine,
    committer: &GroupCommitter,
    reqs: Vec<OwnedRequest>,
) -> Vec<OwnedResponse> {
    let mut out: Vec<Option<OwnedResponse>> = Vec::with_capacity(reqs.len());
    let mut staged: Vec<(usize, WriteOp)> = Vec::new();
    for req in reqs {
        match req {
            OwnedRequest::Put { key, value } => {
                staged.push((out.len(), WriteOp::Put { key, value }));
                out.push(None);
            }
            OwnedRequest::Del { key } => {
                staged.push((out.len(), WriteOp::Del { key }));
                out.push(None);
            }
            OwnedRequest::Ping => out.push(Some(OwnedResponse::Pong)),
            OwnedRequest::Multi(nested) => {
                // A MULTI body is its own atomic batch: align batch
                // boundaries with the frame boundary on both sides.
                flush_staged(committer, &mut out, &mut staged);
                let replies = execute_ops(engine, committer, nested);
                out.push(Some(OwnedResponse::Multi(replies)));
            }
            req => {
                // Reads must observe every earlier write in the run.
                flush_staged(committer, &mut out, &mut staged);
                out.push(Some(execute(engine, req)));
            }
        }
    }
    flush_staged(committer, &mut out, &mut staged);
    out.into_iter()
        .map(|r| r.expect("every slot answered"))
        .collect()
}

/// Commit the staged writes as one group-commit submission and patch the
/// replies into their slots. No-op when nothing is staged.
fn flush_staged(
    committer: &GroupCommitter,
    out: &mut [Option<OwnedResponse>],
    staged: &mut Vec<(usize, WriteOp)>,
) {
    if staged.is_empty() {
        return;
    }
    let (slots, ops): (Vec<usize>, Vec<WriteOp>) = std::mem::take(staged).into_iter().unzip();
    match committer.submit(ops) {
        Ok(replies) => {
            debug_assert_eq!(replies.len(), slots.len());
            for (slot, reply) in slots.into_iter().zip(replies) {
                out[slot] = Some(match reply {
                    WriteReply::Ok => OwnedResponse::Ok,
                    WriteReply::NotFound => OwnedResponse::NotFound,
                    WriteReply::Err(m) => OwnedResponse::Err(m),
                });
            }
        }
        Err(e) => {
            // Committer closed mid-run (shutdown race): nothing applied,
            // nothing acked as durable.
            for slot in slots {
                out[slot] = Some(OwnedResponse::Err(e.to_string()));
            }
        }
    }
}

fn owned_of(req: &Request<'_>) -> Option<OwnedRequest> {
    match req {
        Request::Put { key, value } => Some(OwnedRequest::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        }),
        Request::Get { key } => Some(OwnedRequest::Get { key: key.to_vec() }),
        Request::Del { key } => Some(OwnedRequest::Del { key: key.to_vec() }),
        Request::Stats => Some(OwnedRequest::Stats),
        Request::Flush => Some(OwnedRequest::Flush),
        Request::Ping => Some(OwnedRequest::Ping),
        Request::Multi(mb) => Some(OwnedRequest::Multi(
            mb.requests()
                .map(|r| owned_of(&r).expect("validated: no SHUTDOWN inside MULTI"))
                .collect(),
        )),
        Request::Shutdown => None,
    }
}

/// Why the decode loop stopped early.
enum Stop {
    /// A `SHUTDOWN` frame: finish the run, ack, trigger shutdown, close.
    Shutdown,
    /// Envelope error: the length prefix is garbage, the stream cannot
    /// resync. Finish the run, report, close.
    Envelope(String),
}

fn serve_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut rbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut wbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 16 * 1024];
    // Reused per-connection reply channel; capacity 1 because at most one
    // run job is in flight per connection.
    let (reply_tx, reply_rx): (SyncSender<Vec<OwnedResponse>>, Receiver<Vec<OwnedResponse>>) =
        sync_channel(1);

    loop {
        // Decode EVERY complete frame already buffered into one ordered
        // run — this is the pipelining: a client that streamed N requests
        // gets them executed as a unit (writes group-committed) instead of
        // N queue round trips.
        let mut consumed = 0;
        let mut replies: Vec<Option<OwnedResponse>> = Vec::new();
        let mut execs: Vec<OwnedRequest> = Vec::new();
        let mut exec_slots: Vec<usize> = Vec::new();
        let mut stop: Option<Stop> = None;
        loop {
            let frame = match decode_frame(&rbuf[consumed..]) {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(e) => {
                    debug_assert!(e.is_envelope());
                    stop = Some(Stop::Envelope(e.to_string()));
                    break;
                }
            };
            consumed += frame.consumed;
            match parse_request(&frame) {
                Ok(Request::Ping) => replies.push(Some(OwnedResponse::Pong)),
                Ok(Request::Shutdown) => {
                    stop = Some(Stop::Shutdown);
                    break;
                }
                Ok(req) => {
                    exec_slots.push(replies.len());
                    execs.push(owned_of(&req).expect("Ping/Shutdown handled above"));
                    replies.push(None);
                }
                Err(e) => {
                    // Body error: the frame boundary is known — answer ERR
                    // in place and keep the stream in sync.
                    debug_assert!(!e.is_envelope());
                    replies.push(Some(OwnedResponse::Err(e.to_string())));
                }
            }
        }
        if consumed > 0 {
            rbuf.drain(..consumed);
        }

        // Execute the run: one worker job for all engine requests in it.
        wbuf.clear();
        let mut close_after: Option<&str> = None;
        if !execs.is_empty() {
            let engine = Arc::clone(&shared.engine);
            let committer = Arc::clone(&shared.committer);
            let tx = reply_tx.clone();
            let job: Job = Box::new(move || {
                // A hung/vanished connection must not wedge the worker:
                // drop the reply instead of blocking.
                let _ = tx.try_send(execute_ops(&engine, &committer, execs));
            });
            match shared.queue.try_push(job) {
                Ok(()) => match reply_rx.recv() {
                    Ok(run_replies) => {
                        debug_assert_eq!(run_replies.len(), exec_slots.len());
                        for (slot, reply) in exec_slots.into_iter().zip(run_replies) {
                            replies[slot] = Some(reply);
                        }
                    }
                    Err(_) => close_after = Some("worker pool terminated"),
                },
                Err(PushError::Full(_)) => {
                    // Saturated: reject the whole run's engine work with
                    // BUSY (inline answers still stand) — explicit
                    // backpressure, never unbounded buffering.
                    for slot in exec_slots {
                        replies[slot] = Some(OwnedResponse::Busy);
                    }
                }
                Err(PushError::Closed(_)) => close_after = Some("server shutting down"),
            }
        }
        for reply in &replies {
            match reply {
                Some(resp) => encode_owned(&mut wbuf, resp),
                // Unanswered tail after a fatal pool error; the error
                // frame below closes the connection.
                None => break,
            }
        }
        if let Some(msg) = close_after {
            encode_response(&mut wbuf, &Response::Err(msg));
            let _ = stream.write_all(&wbuf);
            if matches!(stop, Some(Stop::Shutdown)) {
                shared.trigger_shutdown();
            }
            return;
        }
        match stop {
            Some(Stop::Shutdown) => {
                encode_response(&mut wbuf, &Response::Ok);
                let _ = stream.write_all(&wbuf);
                shared.trigger_shutdown();
                return;
            }
            Some(Stop::Envelope(msg)) => {
                encode_response(&mut wbuf, &Response::Err(&msg));
                let _ = stream.write_all(&wbuf);
                return;
            }
            None => {}
        }
        if !wbuf.is_empty() && stream.write_all(&wbuf).is_err() {
            return;
        }
        // Oversized-but-incomplete frames never get here (decode_frame
        // rejects the prefix immediately), so rbuf growth is bounded by
        // MAX_FRAME plus one read chunk.
        debug_assert!(rbuf.len() <= MAX_FRAME + PREFIX + chunk.len());

        // Pull more bytes, ticking the shutdown flag.
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Borrow an [`OwnedResponse`] as a wire [`Response`]. Nested `Multi` is
/// impossible (wire validation rejects it on the way in), so this only has
/// to cover leaf responses.
fn response_of(resp: &OwnedResponse) -> Response<'_> {
    match resp {
        OwnedResponse::Ok => Response::Ok,
        OwnedResponse::Value(v) => Response::Value(v),
        OwnedResponse::NotFound => Response::NotFound,
        OwnedResponse::Err(m) => Response::Err(m),
        OwnedResponse::Stats(s) => Response::Stats(s),
        OwnedResponse::Pong => Response::Pong,
        OwnedResponse::Busy => Response::Busy,
        OwnedResponse::Multi(_) => unreachable!("MULTI cannot nest"),
    }
}

fn encode_owned(out: &mut Vec<u8>, resp: &OwnedResponse) {
    match resp {
        OwnedResponse::Multi(rs) => {
            let borrowed: Vec<Response<'_>> = rs.iter().map(response_of).collect();
            // A MULTI of GETs can fan out past MAX_FRAME even though the
            // request fit; degrade to an ERR frame (the batch's writes are
            // already durable — only the reply couldn't be framed).
            if !try_encode_multi_response(out, &borrowed) {
                encode_response(out, &Response::Err("MULTI response exceeds frame limit"));
            }
        }
        leaf => encode_response(out, &response_of(leaf)),
    }
}
