//! The consistent-hash ring that routes keys to shards.
//!
//! Both sides of the wire build the same ring from nothing but the shard
//! count, so a client that knows how many shards a deployment runs can
//! route each key to the owning endpoint without any metadata exchange
//! (`spp-loadgen --addrs a,b,c` does exactly this). The ring hashes
//! `VNODES` virtual points per shard with FNV-1a and routes a key to the
//! first point clockwise of the key's hash; adding or removing one shard
//! therefore remaps only the keys whose arc changed owner (~`1/n` of the
//! keyspace), unlike modulo placement which reshuffles almost everything.

/// Virtual points placed on the ring per shard. 64 keeps the worst-case
/// load imbalance within a few percent for the shard counts this crate
/// targets (≤ 64) while the whole ring still fits in one cache page.
const VNODES: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, finalized with a SplitMix64-style mixer: FNV
/// alone has weak high-bit avalanche on short, nearly-identical inputs
/// (exactly what `(shard, vnode)` seeds are), which clusters ring points
/// and wrecks balance. The finalizer spreads them. Cheap,
/// dependency-free, and stable across platforms, which is what makes the
/// ring mirrorable client-side.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A deterministic consistent-hash ring over `shards` shards.
///
/// Two rings built with the same shard count are identical, byte for
/// byte — determinism is the contract that lets `spp-loadgen` and the
/// failover rigs mirror the server's routing without talking to it.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted `(point_hash, shard)` pairs; lookup is a binary search.
    points: Vec<(u64, u32)>,
    shards: u32,
}

impl Ring {
    /// Build the ring for `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u32) -> Ring {
        assert!(shards > 0, "ring needs at least one shard");
        let mut points = Vec::with_capacity(shards as usize * VNODES);
        for shard in 0..shards {
            for vnode in 0..VNODES as u32 {
                let mut seed = [0u8; 8];
                seed[..4].copy_from_slice(&shard.to_le_bytes());
                seed[4..].copy_from_slice(&vnode.to_le_bytes());
                points.push((fnv1a(&seed), shard));
            }
        }
        // Ties (astronomically unlikely with 64-bit points) resolve to the
        // lower shard id on every build, keeping determinism airtight.
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        Ring { points, shards }
    }

    /// Number of shards this ring routes over.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard that owns `key`: the first ring point clockwise of the
    /// key's hash, wrapping past the top of the hash space.
    pub fn shard_of(&self, key: &[u8]) -> u32 {
        if self.shards == 1 {
            return 0;
        }
        let h = fnv1a(key);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_builds() {
        let a = Ring::new(5);
        let b = Ring::new(5);
        for i in 0u32..1000 {
            let key = i.to_le_bytes();
            assert_eq!(a.shard_of(&key), b.shard_of(&key));
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let r = Ring::new(1);
        for i in 0u32..100 {
            assert_eq!(r.shard_of(&i.to_le_bytes()), 0);
        }
    }

    #[test]
    fn every_shard_owns_something() {
        for n in 2u32..=8 {
            let r = Ring::new(n);
            let mut hit = vec![false; n as usize];
            for i in 0u32..4096 {
                hit[r.shard_of(&i.to_le_bytes()) as usize] = true;
            }
            assert!(
                hit.iter().all(|&h| h),
                "{n} shards: some shard owns no keys"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = Ring::new(0);
    }
}
