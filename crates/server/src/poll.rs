//! Minimal `libc`-free readiness shim: `epoll` + `eventfd` through raw
//! Linux syscalls over [`std::os::fd`] types.
//!
//! The workspace's no-external-registry rule means no `libc`/`mio`/
//! `polling` crates; everything here goes straight to the kernel with
//! `core::arch::asm!` and the stable syscall ABI (x86_64 and aarch64).
//! The surface is deliberately tiny — exactly what [`crate::reactor`]
//! needs:
//!
//! * [`Epoll`]: create / add / modify / delete interest, level-triggered
//!   wait with a millisecond timeout and EINTR retry;
//! * [`EventFd`]: a nonblocking counter fd used as the cross-thread wakeup
//!   (worker completions, inbox hand-off, shutdown);
//! * [`raise_nofile_limit`]: best-effort `RLIMIT_NOFILE` soft→hard bump so
//!   idle-connection sweeps aren't cut short by a 1024-fd default.
//!
//! Fds are RAII [`OwnedFd`]s: dropping a registered fd closes it, and the
//! kernel removes closed fds from every epoll set automatically, so there
//! is no deregistration bookkeeping to get wrong.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

// ---------------------------------------------------------------------------
// Raw syscall plumbing
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_WAIT: usize = 232;
    pub const EPOLL_CREATE1: usize = 291;
    pub const EVENTFD2: usize = 290;
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const PRLIMIT64: usize = 302;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CTL: usize = 21;
    /// aarch64 has no plain `epoll_wait`; `epoll_pwait` with a null sigmask
    /// is identical.
    pub const EPOLL_PWAIT: usize = 22;
    pub const EPOLL_CREATE1: usize = 20;
    pub const EVENTFD2: usize = 19;
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const PRLIMIT64: usize = 261;
}

/// Raw syscall, returning the kernel's value (negative errno on failure).
///
/// # Safety
///
/// The caller must uphold the invoked syscall's contract (valid pointers,
/// lengths, fds).
#[cfg(target_arch = "x86_64")]
unsafe fn syscall4(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") nr as isize => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

/// Raw syscall, returning the kernel's value (negative errno on failure).
///
/// # Safety
///
/// The caller must uphold the invoked syscall's contract (valid pointers,
/// lengths, fds).
#[cfg(target_arch = "aarch64")]
unsafe fn syscall4(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a1 as isize => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        options(nostack),
    );
    ret
}

/// Six-argument variant (needed by `epoll_pwait` and `prlimit64`).
///
/// # Safety
///
/// As [`syscall4`].
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(
    nr: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") nr as isize => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        in("r9") a6,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

/// Six-argument variant (needed by `epoll_pwait` and `prlimit64`).
///
/// # Safety
///
/// As [`syscall4`].
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(
    nr: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a1 as isize => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        in("x5") a6,
        options(nostack),
    );
    ret
}

/// Convert a raw syscall return into `io::Result<usize>`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

// ---------------------------------------------------------------------------
// epoll
// ---------------------------------------------------------------------------

/// Readable readiness (`EPOLLIN`).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never registered.
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`); always reported, never registered.
pub(crate) const EPOLLHUP: u32 = 0x010;

const EPOLL_CLOEXEC: usize = 0x80000;
const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_MOD: usize = 3;

/// One readiness record. Layout must match the kernel's `epoll_event`,
/// which is packed on x86_64 (12 bytes) and naturally aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// An empty record, for pre-sizing wait buffers.
    pub(crate) fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }

    /// The ready event mask (`EPOLLIN` / `EPOLLOUT` / `EPOLLERR` / ...).
    pub(crate) fn events(&self) -> u32 {
        self.events
    }

    /// The caller-chosen token registered with the fd.
    pub(crate) fn token(&self) -> u64 {
        self.data
    }
}

/// A level-triggered epoll instance.
pub(crate) struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub(crate) fn new() -> io::Result<Epoll> {
        let raw = check(unsafe { syscall4(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
        // SAFETY: the kernel just returned this fd to us; nothing else owns
        // it.
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(raw as RawFd) },
        })
    }

    fn ctl(&self, op: usize, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` lives across the call; fds are owned by the caller.
        check(unsafe {
            syscall4(
                nr::EPOLL_CTL,
                self.fd.as_raw_fd() as usize,
                op,
                fd as usize,
                core::ptr::addr_of!(ev) as usize,
            )
        })?;
        Ok(())
    }

    /// Register `fd` with interest `events` and identifying `token`.
    pub(crate) fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the interest set of an already-registered `fd`.
    pub(crate) fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Wait for readiness, filling `events`; returns how many entries are
    /// valid. `timeout_ms < 0` blocks indefinitely; `0` polls. EINTR is
    /// retried internally.
    pub(crate) fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is valid writable memory of the stated
            // length for the duration of the call.
            let ret = unsafe {
                #[cfg(target_arch = "x86_64")]
                {
                    syscall4(
                        nr::EPOLL_WAIT,
                        self.fd.as_raw_fd() as usize,
                        events.as_mut_ptr() as usize,
                        events.len(),
                        timeout_ms as usize,
                    )
                }
                #[cfg(target_arch = "aarch64")]
                {
                    syscall6(
                        nr::EPOLL_PWAIT,
                        self.fd.as_raw_fd() as usize,
                        events.as_mut_ptr() as usize,
                        events.len(),
                        timeout_ms as usize,
                        0, // null sigmask: plain epoll_wait semantics
                        0,
                    )
                }
            };
            match check(ret) {
                Ok(n) => return Ok(n),
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// eventfd
// ---------------------------------------------------------------------------

const EFD_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;

/// A nonblocking eventfd: the reactor's cross-thread doorbell. Writers
/// [`signal`](EventFd::signal) from any thread; the owning reactor
/// registers it `EPOLLIN` and [`drain`](EventFd::drain)s on wakeup.
pub(crate) struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// Create a nonblocking, close-on-exec eventfd with counter 0.
    pub(crate) fn new() -> io::Result<EventFd> {
        let raw = check(unsafe { syscall4(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0) })?;
        // SAFETY: freshly returned fd, exclusively ours.
        Ok(EventFd {
            fd: unsafe { OwnedFd::from_raw_fd(raw as RawFd) },
        })
    }

    /// The raw fd, for epoll registration.
    pub(crate) fn raw(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Ring the doorbell (add 1 to the counter). Infallible in practice:
    /// the only nonblocking failure is a counter at `u64::MAX - 1`, which
    /// still leaves the fd readable, so the wakeup is not lost.
    pub(crate) fn signal(&self) {
        let one: u64 = 1;
        // SAFETY: `one` is 8 valid bytes; eventfd writes are atomic.
        let _ = check(unsafe {
            syscall4(
                nr::WRITE,
                self.fd.as_raw_fd() as usize,
                core::ptr::addr_of!(one) as usize,
                8,
                0,
            )
        });
    }

    /// Consume all pending signals (reset the counter to 0). Returns
    /// `true` if at least one signal had been posted.
    pub(crate) fn drain(&self) -> bool {
        let mut count: u64 = 0;
        // SAFETY: `count` is 8 valid writable bytes.
        let ret = unsafe {
            syscall4(
                nr::READ,
                self.fd.as_raw_fd() as usize,
                core::ptr::addr_of_mut!(count) as usize,
                8,
                0,
            )
        };
        match check(ret) {
            Ok(8) => count > 0,
            Ok(_) => false,
            Err(e) if e.raw_os_error() == Some(EAGAIN) => false,
            Err(_) => false,
        }
    }
}

// ---------------------------------------------------------------------------
// RLIMIT_NOFILE
// ---------------------------------------------------------------------------

const RLIMIT_NOFILE: usize = 7;

#[repr(C)]
#[derive(Clone, Copy)]
struct RLimit64 {
    cur: u64,
    max: u64,
}

/// Best-effort raise of the open-file soft limit to the hard limit, so
/// idle-connection sweeps (thousands of sockets) don't die on the 1024-fd
/// default. Returns the resulting soft limit, or the current one if the
/// bump failed (never an error — callers degrade gracefully).
pub fn raise_nofile_limit() -> u64 {
    let mut lim = RLimit64 { cur: 0, max: 0 };
    // SAFETY: pid 0 = self; `lim` is valid writable memory.
    let got = unsafe {
        syscall6(
            nr::PRLIMIT64,
            0,
            RLIMIT_NOFILE,
            0,
            core::ptr::addr_of_mut!(lim) as usize,
            0,
            0,
        )
    };
    if check(got).is_err() {
        return 1024;
    }
    if lim.cur >= lim.max {
        return lim.cur;
    }
    let want = RLimit64 {
        cur: lim.max,
        max: lim.max,
    };
    // SAFETY: `want` is valid readable memory for the call.
    let set = unsafe {
        syscall6(
            nr::PRLIMIT64,
            0,
            RLIMIT_NOFILE,
            core::ptr::addr_of!(want) as usize,
            0,
            0,
            0,
        )
    };
    if check(set).is_ok() {
        lim.max
    } else {
        lim.cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn eventfd_signal_and_drain() {
        let ev = EventFd::new().unwrap();
        assert!(!ev.drain(), "fresh eventfd must read empty");
        ev.signal();
        ev.signal();
        assert!(ev.drain(), "two signals coalesce into one readable count");
        assert!(!ev.drain(), "drain resets the counter");
    }

    #[test]
    fn epoll_reports_eventfd_readability() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), EPOLLIN, 42).unwrap();

        let mut buf = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing signalled: a zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0);

        ev.signal();
        let n = ep.wait(&mut buf, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(buf[0].token(), 42);
        assert_ne!(buf[0].events() & EPOLLIN, 0);

        // Level-triggered: still readable until drained.
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 1);
        assert!(ev.drain());
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_modify_changes_interest_and_close_deregisters() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), EPOLLIN, 7).unwrap();
        ev.signal();

        let mut buf = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut buf, 100).unwrap(), 1);

        // Interest set to empty: readable fd no longer reported. This is
        // the reactor's backpressure primitive.
        ep.modify(ev.raw(), 0, 7).unwrap();
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0);

        ep.modify(ev.raw(), EPOLLIN, 9).unwrap();
        let n = ep.wait(&mut buf, 100).unwrap();
        assert_eq!(n, 1);
        assert_eq!(buf[0].token(), 9, "MOD updates the token too");

        // Closing the fd removes it from the interest set implicitly —
        // the reactor relies on drop-to-deregister, no DEL bookkeeping.
        drop(ev);
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_sees_tcp_read_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server_side.as_raw_fd(), EPOLLIN, 1).unwrap();

        let mut buf = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0, "no bytes yet");

        client.write_all(b"hello").unwrap();
        let n = ep.wait(&mut buf, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(buf[0].token(), 1);
        assert_ne!(buf[0].events() & EPOLLIN, 0);
    }

    #[test]
    fn nofile_limit_is_sane_after_raise() {
        let lim = raise_nofile_limit();
        // Whatever the box allows, the helper must report something usable
        // and calling it twice must be stable.
        assert!(lim >= 256);
        assert_eq!(raise_nofile_limit(), lim);
    }
}
