//! A bounded MPMC job queue and the worker pool draining it.
//!
//! The queue is the server's backpressure point: connection threads
//! [`try_push`](BoundedQueue::try_push) requests and answer `BUSY` on the
//! wire when it is full, so a saturated engine degrades into explicit
//! rejection instead of unbounded buffering. Workers block on
//! [`pop`](BoundedQueue::pop); closing the queue drains the remaining jobs
//! (graceful quiesce) before the workers exit.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job executed on a pool worker.
pub type Job = Box<dyn FnOnce() + Send>;

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue (std `Mutex` + `Condvar`; the workspace's
/// `parking_lot` shim carries no condvar).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// Create a queue holding at most `cap` items (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(cap.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push. Returns the item back when the queue is full or
    /// closed — the caller turns that into a `BUSY` (or drops the job).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] / [`PushError::Closed`] carrying the rejected
    /// item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.queue.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        inner.queue.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop. Returns `None` only once the queue is closed *and*
    /// drained, so every accepted job runs before shutdown completes.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.queue.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Close the queue: further pushes fail, waiting poppers drain what is
    /// left and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

/// Rejection from [`BoundedQueue::try_push`], returning the item.
pub enum PushError<T> {
    /// Queue at capacity.
    Full(T),
    /// Queue closed (server shutting down).
    Closed(T),
}

/// A fixed set of worker threads draining a [`BoundedQueue`] of [`Job`]s.
pub struct WorkerPool {
    queue: Arc<BoundedQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads draining `queue`.
    pub fn start(queue: Arc<BoundedQueue<Job>>, workers: usize) -> Self {
        let workers = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("spp-server-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            job();
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { queue, workers }
    }

    /// The shared queue (for producers).
    pub fn queue(&self) -> &Arc<BoundedQueue<Job>> {
        &self.queue
    }

    /// Quiesce: close the queue, let the workers drain every accepted job,
    /// and join them.
    pub fn shutdown(self) {
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn try_push_reports_full_at_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            _ => panic!("expected Full(3)"),
        }
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(8);
        q.try_push(1).map_err(|_| ()).unwrap();
        q.try_push(2).map_err(|_| ()).unwrap();
        q.close();
        match q.try_push(3) {
            Err(PushError::Closed(3)) => {}
            _ => panic!("expected Closed(3)"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn worker_pool_runs_all_accepted_jobs() {
        let queue = Arc::new(BoundedQueue::new(64));
        let pool = WorkerPool::start(Arc::clone(&queue), 4);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let ran = Arc::clone(&ran);
            // Push may transiently hit Full under tiny capacities; retry.
            let mut job: Job = Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            loop {
                match queue.try_push(job) {
                    Ok(()) => break,
                    Err(PushError::Full(j)) => {
                        job = j;
                        std::thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => panic!("queue closed early"),
                }
            }
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }
}
