//! A blocking wire-protocol client: one TCP connection, closed-loop
//! request/response. Used by the load generator and the integration tests.

use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::wire::{
    decode_frame, encode_multi_request, encode_repl_batch, encode_request, parse_response, ReplOp,
    Request, Response, WireError,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket error (includes the peer closing mid-response).
    Io(std::io::Error),
    /// The server sent bytes the codec rejects.
    Wire(WireError),
    /// The server answered `ERR` with this message.
    Remote(String),
    /// The server answered `BUSY` (queue or connection limit saturated).
    Busy,
    /// The server answered with a response that does not fit the request
    /// (e.g. `PONG` to a `PUT`).
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Remote(m) => write!(f, "server error: {m}"),
            ClientError::Busy => write!(f, "server busy"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to an `spp-server`.
pub struct Client {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
}

impl Client {
    /// Connect once.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            rbuf: Vec::with_capacity(4096),
            wbuf: Vec::with_capacity(4096),
        })
    }

    /// Connect with retries until `deadline` elapses — for racing a server
    /// that is still binding its listener.
    ///
    /// # Errors
    ///
    /// The last connection error once the deadline passes.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Copy,
        deadline: Duration,
    ) -> std::io::Result<Client> {
        let start = Instant::now();
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    fn roundtrip<R>(
        &mut self,
        req: &Request<'_>,
        on_resp: impl FnOnce(Response<'_>) -> Result<R, ClientError>,
    ) -> Result<R, ClientError> {
        self.wbuf.clear();
        encode_request(&mut self.wbuf, req);
        self.stream.write_all(&self.wbuf)?;
        // Pull bytes until one complete response frame is buffered. A
        // leftover tail (the server never pipelines, but a malicious peer
        // could) is preserved for the next call.
        loop {
            if let Some(frame) = decode_frame(&self.rbuf)? {
                let consumed = frame.consumed;
                let result = parse_response(&frame)
                    .map_err(ClientError::from)
                    .and_then(|resp| match resp {
                        Response::Err(m) => Err(ClientError::Remote(m.to_string())),
                        Response::Busy => Err(ClientError::Busy),
                        other => on_resp(other),
                    });
                self.rbuf.drain(..consumed);
                return result;
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection mid-response",
                )));
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
    }

    /// `PUT`: durable once this returns `Ok`.
    ///
    /// # Errors
    ///
    /// [`ClientError`]; [`ClientError::Busy`] is retryable.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), ClientError> {
        self.roundtrip(&Request::Put { key, value }, |resp| match resp {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("PUT wants OK")),
        })
    }

    /// `GET`: appends the value to `out` on a hit and returns whether the
    /// key existed.
    ///
    /// # Errors
    ///
    /// [`ClientError`].
    pub fn get(&mut self, key: &[u8], out: &mut Vec<u8>) -> Result<bool, ClientError> {
        self.roundtrip(&Request::Get { key }, |resp| match resp {
            Response::Value(v) => {
                out.extend_from_slice(v);
                Ok(true)
            }
            Response::NotFound => Ok(false),
            _ => Err(ClientError::Unexpected("GET wants VALUE or NOT_FOUND")),
        })
    }

    /// `DEL`: returns whether the key existed.
    ///
    /// # Errors
    ///
    /// [`ClientError`].
    pub fn del(&mut self, key: &[u8]) -> Result<bool, ClientError> {
        self.roundtrip(&Request::Del { key }, |resp| match resp {
            Response::Ok => Ok(true),
            Response::NotFound => Ok(false),
            _ => Err(ClientError::Unexpected("DEL wants OK or NOT_FOUND")),
        })
    }

    /// `STATS`: the engine's `key=value` introspection body.
    ///
    /// # Errors
    ///
    /// [`ClientError`].
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.roundtrip(&Request::Stats, |resp| match resp {
            Response::Stats(s) => Ok(s.to_string()),
            _ => Err(ClientError::Unexpected("STATS wants STATS_BODY")),
        })
    }

    /// `FLUSH`: drain outstanding device writes.
    ///
    /// # Errors
    ///
    /// [`ClientError`].
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Flush, |resp| match resp {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("FLUSH wants OK")),
        })
    }

    /// `PING`: liveness probe.
    ///
    /// # Errors
    ///
    /// [`ClientError`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Ping, |resp| match resp {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("PING wants PONG")),
        })
    }

    /// `SHUTDOWN`: acked with `OK`, then the server quiesces.
    ///
    /// # Errors
    ///
    /// [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Shutdown, |resp| match resp {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("SHUTDOWN wants OK")),
        })
    }

    /// `MULTI`: one atomic batch frame. All `PUT`/`DEL`s in the batch
    /// commit under a single durability boundary — either every write in
    /// the batch survives a crash or none does. Replies are index-aligned
    /// with `reqs`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] if the server rejected the whole batch
    /// (retryable); [`ClientError`] otherwise.
    ///
    /// # Panics
    ///
    /// Panics (in the encoder) on an empty batch, a nested `Multi`, a
    /// `Shutdown`, or an oversized frame.
    pub fn multi(&mut self, reqs: &[Request<'_>]) -> Result<Vec<Reply>, ClientError> {
        self.wbuf.clear();
        encode_multi_request(&mut self.wbuf, reqs);
        self.stream.write_all(&self.wbuf)?;
        match self.read_reply()? {
            Reply::Multi(rs) => {
                if rs.len() == reqs.len() {
                    Ok(rs)
                } else {
                    Err(ClientError::Unexpected("MULTI reply count mismatch"))
                }
            }
            Reply::Busy => Err(ClientError::Busy),
            Reply::Err(m) => Err(ClientError::Remote(m)),
            _ => Err(ClientError::Unexpected("MULTI wants MULTI_BODY")),
        }
    }

    /// Pipelined send: write every request back-to-back without waiting,
    /// then collect exactly one reply per request, in order. Unlike the
    /// closed-loop helpers this surfaces per-request `BUSY`/`ERR` as
    /// [`Reply`] values rather than errors, because partial success is
    /// meaningful under backpressure.
    ///
    /// Do not include `SHUTDOWN` (the server closes the connection before
    /// answering later requests).
    ///
    /// # Errors
    ///
    /// Socket or codec failures only.
    pub fn pipeline(&mut self, reqs: &[Request<'_>]) -> Result<Vec<Reply>, ClientError> {
        self.wbuf.clear();
        for r in reqs {
            encode_request(&mut self.wbuf, r);
        }
        self.stream.write_all(&self.wbuf)?;
        let mut out = Vec::with_capacity(reqs.len());
        for _ in 0..reqs.len() {
            out.push(self.read_reply()?);
        }
        Ok(out)
    }

    /// Read one response frame into an owned [`Reply`].
    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        loop {
            if let Some(frame) = decode_frame(&self.rbuf)? {
                let consumed = frame.consumed;
                let reply = parse_response(&frame).map(|r| reply_of(&r));
                self.rbuf.drain(..consumed);
                return reply.map_err(ClientError::from);
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection mid-response",
                )));
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
    }

    /// `REPL_BATCH`: ship one replicated write batch for `shard` with
    /// sequence number `seq`, blocking until the backup's `REPL_ACK` —
    /// i.e. until the batch is durable on the backup. Returns the echoed
    /// `(shard, seq)`.
    ///
    /// # Errors
    ///
    /// [`ClientError`]; a promoted backup answers `ERR`, surfaced as
    /// [`ClientError::Remote`].
    ///
    /// # Panics
    ///
    /// Panics (in the encoder) on an empty or oversized batch.
    pub fn repl_batch(
        &mut self,
        shard: u32,
        seq: u64,
        ops: &[ReplOp<'_>],
    ) -> Result<(u32, u64), ClientError> {
        self.wbuf.clear();
        encode_repl_batch(&mut self.wbuf, shard, seq, ops);
        self.stream.write_all(&self.wbuf)?;
        match self.read_reply()? {
            Reply::ReplAck { shard, seq } => Ok((shard, seq)),
            Reply::Busy => Err(ClientError::Busy),
            Reply::Err(m) => Err(ClientError::Remote(m)),
            _ => Err(ClientError::Unexpected("REPL_BATCH wants REPL_ACK")),
        }
    }

    /// `REPL_HELLO`: announce this primary's shard count on a replication
    /// connection. The backup acks `OK` only when its own layout matches,
    /// refusing cross-layout replication before any batch ships.
    ///
    /// # Errors
    ///
    /// [`ClientError`]; a mismatch (or a promoted backup) answers `ERR`,
    /// surfaced as [`ClientError::Remote`].
    pub fn repl_hello(&mut self, shards: u32) -> Result<(), ClientError> {
        self.roundtrip(&Request::ReplHello { shards }, |resp| match resp {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("REPL_HELLO wants OK")),
        })
    }

    /// `PROMOTE`: flip a backup into a primary. Acked with `OK` after
    /// every shard has been fenced.
    ///
    /// # Errors
    ///
    /// [`ClientError`].
    pub fn promote(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Promote, |resp| match resp {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("PROMOTE wants OK")),
        })
    }

    /// Send raw bytes, bypassing the codec — for malformed-frame tests.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Read one response frame after [`Client::send_raw`].
    ///
    /// # Errors
    ///
    /// [`ClientError`]; `ERR` bodies surface as [`ClientError::Remote`].
    pub fn recv_response_kind(&mut self) -> Result<RespKind, ClientError> {
        loop {
            if let Some(frame) = decode_frame(&self.rbuf)? {
                let consumed = frame.consumed;
                let kind = parse_response(&frame).map(|resp| match resp {
                    Response::Ok => RespKind::Ok,
                    Response::Value(_) => RespKind::Value,
                    Response::NotFound => RespKind::NotFound,
                    Response::Err(m) => RespKind::Err(m.to_string()),
                    Response::Busy => RespKind::Busy,
                    Response::Stats(_) => RespKind::Stats,
                    Response::Pong => RespKind::Pong,
                    Response::Multi(_) => RespKind::Multi,
                    Response::ReplAck { .. } => RespKind::ReplAck,
                });
                self.rbuf.drain(..consumed);
                return kind.map_err(ClientError::from);
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                )));
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Owned response discriminant for [`Client::recv_response_kind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespKind {
    /// `OK`.
    Ok,
    /// `VALUE`.
    Value,
    /// `NOT_FOUND`.
    NotFound,
    /// `ERR` with its message.
    Err(String),
    /// `BUSY`.
    Busy,
    /// `STATS_BODY`.
    Stats,
    /// `PONG`.
    Pong,
    /// `MULTI_BODY`.
    Multi,
    /// `REPL_ACK`.
    ReplAck,
}

/// An owned server reply, as returned by [`Client::multi`] and
/// [`Client::pipeline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `OK` — for a write, durable before this was sent.
    Ok,
    /// `VALUE` with the bytes.
    Value(Vec<u8>),
    /// `NOT_FOUND`.
    NotFound,
    /// `ERR` with its message.
    Err(String),
    /// `BUSY` — retryable backpressure.
    Busy,
    /// `STATS_BODY` text.
    Stats(String),
    /// `PONG`.
    Pong,
    /// `MULTI_BODY`: one reply per batched request, in order.
    Multi(Vec<Reply>),
    /// `REPL_ACK`: the batch is durable on the backup.
    ReplAck {
        /// The acknowledged shard.
        shard: u32,
        /// The acknowledged batch sequence number.
        seq: u64,
    },
}

fn reply_of(resp: &Response<'_>) -> Reply {
    match resp {
        Response::Ok => Reply::Ok,
        Response::Value(v) => Reply::Value(v.to_vec()),
        Response::NotFound => Reply::NotFound,
        Response::Err(m) => Reply::Err(m.to_string()),
        Response::Busy => Reply::Busy,
        Response::Stats(s) => Reply::Stats(s.to_string()),
        Response::Pong => Reply::Pong,
        Response::Multi(mb) => Reply::Multi(mb.responses().map(|r| reply_of(&r)).collect()),
        Response::ReplAck { shard, seq } => Reply::ReplAck {
            shard: *shard,
            seq: *seq,
        },
    }
}
