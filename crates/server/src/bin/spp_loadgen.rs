//! `spp-loadgen`: a `db_bench`-style closed-loop load generator for
//! `spp-server`.
//!
//! ```text
//! spp-loadgen [--addr HOST:PORT] [--policy pmdk|spp|safepm]
//!             [--conns 4] [--ops 20000] [--value-size 100] [--read-pct 50]
//!             [--pool-mb 64] [--workers 4] [--nbuckets 4096]
//!             [--smoke] [--shutdown] [--inject-garbage]
//! ```
//!
//! Without `--addr`, an in-process server (ephemeral port, `--policy`) is
//! spawned and measured — the one-command mode CI and `EXPERIMENTS.md`
//! use. Each connection runs a closed loop of `--ops` operations
//! (`--read-pct`% GETs over previously-written keys, the rest durable
//! PUTs), retrying on `BUSY`. The run reports throughput and p50/p95/p99
//! latency per operation class, writes `results/server_loadgen.json`, and
//! self-validates the rows through `spp-bench`'s `validate_rows` — empty
//! or non-finite results exit nonzero (`--inject-garbage` deliberately
//! poisons a row so CI can prove that path stays red).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spp_bench::{banner, validate_rows, Args, Json};
use spp_server::{
    fresh_server_pool, Client, ClientError, KvEngine, PolicyKind, Server, ServerConfig,
};

const KEY_SIZE: usize = 16;

/// Nanosecond latency samples for one operation class.
#[derive(Default)]
struct Lats {
    ns: Vec<u64>,
}

impl Lats {
    fn push(&mut self, d: Duration) {
        self.ns.push(d.as_nanos() as u64);
    }

    fn percentile_us(&self, p: f64) -> f64 {
        if self.ns.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx] as f64 / 1_000.0
    }
}

struct ConnResult {
    puts: Lats,
    gets: Lats,
    busy_retries: u64,
}

fn key_of(conn: u32, seq: u64) -> [u8; KEY_SIZE] {
    let mut k = [0u8; KEY_SIZE];
    k[..4].copy_from_slice(&conn.to_be_bytes());
    k[4..12].copy_from_slice(&seq.to_be_bytes());
    k
}

/// Closed-loop worker: `ops` operations, `read_pct`% GETs over keys this
/// connection already wrote, retrying `BUSY` with a short backoff.
fn run_conn(
    addr: std::net::SocketAddr,
    conn_id: u32,
    ops: u64,
    value: &[u8],
    read_pct: u32,
) -> Result<ConnResult, String> {
    let mut client = Client::connect_retry(addr, Duration::from_secs(5))
        .map_err(|e| format!("conn {conn_id}: connect: {e}"))?;
    let mut res = ConnResult {
        puts: Lats::default(),
        gets: Lats::default(),
        busy_retries: 0,
    };
    let mut written: u64 = 0;
    // Per-connection xorshift for the op mix and GET key choice.
    let mut x: u64 = 0x9e37_79b9 ^ u64::from(conn_id) << 17 | 1;
    let mut rng = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut out = Vec::with_capacity(value.len());
    for _ in 0..ops {
        let is_get = written > 0 && (rng() % 100) < u64::from(read_pct);
        if is_get {
            let key = key_of(conn_id, rng() % written);
            let start = Instant::now();
            out.clear();
            let hit = retry_busy(&mut res.busy_retries, || client.get(&key, &mut out))
                .map_err(|e| format!("conn {conn_id}: GET: {e}"))?;
            res.gets.push(start.elapsed());
            if !hit {
                return Err(format!("conn {conn_id}: GET missed an acked key"));
            }
        } else {
            let key = key_of(conn_id, written);
            let start = Instant::now();
            retry_busy(&mut res.busy_retries, || client.put(&key, value))
                .map_err(|e| format!("conn {conn_id}: PUT: {e}"))?;
            res.puts.push(start.elapsed());
            written += 1;
        }
    }
    Ok(res)
}

fn retry_busy<R>(
    busy: &mut u64,
    mut f: impl FnMut() -> Result<R, ClientError>,
) -> Result<R, ClientError> {
    loop {
        match f() {
            Err(ClientError::Busy) => {
                *busy += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            other => return other,
        }
    }
}

fn lat_row(policy: PolicyKind, op: &'static str, lats: &Lats, elapsed_s: f64) -> Json {
    Json::Obj(vec![
        ("policy", Json::Str(policy.label().to_string())),
        ("op", Json::Str(op.to_string())),
        ("ops", Json::Int(lats.ns.len() as u64)),
        (
            "throughput_ops_s",
            Json::Num(lats.ns.len() as f64 / elapsed_s),
        ),
        ("p50_us", Json::Num(lats.percentile_us(0.50))),
        ("p95_us", Json::Num(lats.percentile_us(0.95))),
        ("p99_us", Json::Num(lats.percentile_us(0.99))),
    ])
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let policy: PolicyKind = args.get("policy", PolicyKind::Spp);
    let conns: u32 = args.get("conns", if smoke { 2 } else { 4 });
    let ops: u64 = args.get("ops", if smoke { 500 } else { 20_000 });
    let value_size: usize = args.get("value-size", if smoke { 64 } else { 100 });
    let read_pct: u32 = args.get("read-pct", 50).min(100);
    let addr_arg: String = args.get("addr", String::new());
    let want_shutdown = args.flag("shutdown");
    let inject_garbage = args.flag("inject-garbage");

    banner(&format!(
        "spp-loadgen: policy={} conns={conns} ops/conn={ops} value={value_size}B reads={read_pct}%",
        policy.label()
    ));

    // Either measure an external server or spawn one in-process.
    let mut local: Option<Server> = None;
    let addr: std::net::SocketAddr = if addr_arg.is_empty() {
        let pool = fresh_server_pool(args.get("pool-mb", 64u64) << 20, 16, false)
            .map_err(|e| format!("pool create: {e}"))?;
        let engine = Arc::new(
            KvEngine::create(pool, policy, args.get("nbuckets", 4096))
                .map_err(|e| format!("engine create: {e}"))?,
        );
        let cfg = ServerConfig {
            workers: args.get("workers", 4),
            max_conns: args.get("max-conns", 64),
            queue_depth: args.get("queue-depth", 128),
        };
        let server = Server::start(engine, ("127.0.0.1", 0), cfg)
            .map_err(|e| format!("in-process server: {e}"))?;
        let addr = server.local_addr();
        println!("spawned in-process server on {addr}");
        local = Some(server);
        addr
    } else {
        addr_arg
            .parse()
            .map_err(|e| format!("bad --addr `{addr_arg}`: {e}"))?
    };

    let value = vec![0xA5u8; value_size];
    let start = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|conn_id| {
            let value = value.clone();
            std::thread::spawn(move || run_conn(addr, conn_id, ops, &value, read_pct))
        })
        .collect();
    let mut puts = Lats::default();
    let mut gets = Lats::default();
    let mut busy_retries = 0u64;
    for h in handles {
        let r = h.join().map_err(|_| "loadgen thread panicked")??;
        puts.ns.extend_from_slice(&r.puts.ns);
        gets.ns.extend_from_slice(&r.gets.ns);
        busy_retries += r.busy_retries;
    }
    let elapsed = start.elapsed().as_secs_f64();

    // Server-side introspection after the run (also exercises STATS).
    let mut client =
        Client::connect_retry(addr, Duration::from_secs(5)).map_err(|e| format!("stats: {e}"))?;
    let stats = client.stats().map_err(|e| format!("STATS: {e}"))?;
    println!("--- server stats ---\n{stats}--------------------");

    if want_shutdown {
        client.shutdown().map_err(|e| format!("SHUTDOWN: {e}"))?;
    }
    if let Some(server) = local.take() {
        // Idempotent with a wire-initiated SHUTDOWN; quiesces the pool.
        server.shutdown();
    }

    let total_ops = (puts.ns.len() + gets.ns.len()) as f64;
    println!(
        "total: {total_ops:.0} ops in {elapsed:.3}s = {:.0} ops/s ({busy_retries} BUSY retries)",
        total_ops / elapsed
    );
    let mut rows = vec![lat_row(policy, "put", &puts, elapsed)];
    if !gets.ns.is_empty() {
        rows.push(lat_row(policy, "get", &gets, elapsed));
    }
    for row in &rows {
        println!("{}", row.render());
    }
    if inject_garbage {
        // Negative CI hook: a poisoned row must make validation fail.
        rows.push(Json::Obj(vec![
            ("policy", Json::Str(policy.label().to_string())),
            ("op", Json::Str("garbage".to_string())),
            ("ops", Json::Int(0)),
            ("throughput_ops_s", Json::Num(f64::NAN)),
            ("p50_us", Json::Num(f64::NAN)),
            ("p95_us", Json::Num(f64::NAN)),
            ("p99_us", Json::Num(f64::NAN)),
        ]));
    }
    validate_rows(
        &rows,
        &["throughput_ops_s", "p50_us", "p95_us", "p99_us", "ops"],
    )
    .map_err(|e| format!("result validation failed: {e}"))?;

    let doc = Json::Obj(vec![
        ("name", Json::Str("server_loadgen".to_string())),
        ("policy", Json::Str(policy.label().to_string())),
        ("conns", Json::Int(u64::from(conns))),
        ("ops_per_conn", Json::Int(ops)),
        ("value_size", Json::Int(value_size as u64)),
        ("read_pct", Json::Int(u64::from(read_pct))),
        ("busy_retries", Json::Int(busy_retries)),
        ("elapsed_s", Json::Num(elapsed)),
        ("rows", Json::Arr(rows)),
    ]);
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| format!("create results/: {e}"))?;
    let path = dir.join("server_loadgen.json");
    std::fs::write(&path, doc.render() + "\n").map_err(|e| format!("write {path:?}: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("spp-loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}
