//! `spp-loadgen`: a `db_bench`-style closed-loop load generator for
//! `spp-server`.
//!
//! ```text
//! spp-loadgen [--addr HOST:PORT] [--policy pmdk|spp|safepm]
//!             [--conns 4] [--ops 20000] [--value-size 100] [--read-pct 50]
//!             [--pool-mb 64] [--workers 4] [--nbuckets 4096]
//!             [--smoke] [--shutdown] [--inject-garbage]
//!             [--sweep-threads 1,2,4,8] [--flush-wait-ns 15000]
//!             [--pipeline 8] [--throttle-us 0]
//!             [--io-mode threads|epoll] [--reactors 2] [--idle-conns 2000]
//!             [--addrs HOST:PORT,HOST:PORT,...] [--local-shards N]
//! ```
//!
//! `--addrs a,b,c` switches to multi-endpoint mode (see [`run_multi`]):
//! the loadgen builds the same consistent-hash [`Ring`] the server crate
//! uses — from nothing but the endpoint count — and routes every key to
//! its owning endpoint, exactly as a smart client fronts a sharded
//! deployment. The report breaks throughput down per shard and records
//! the skew (max/mean ops); `--local-shards N` spawns N in-process
//! single-shard servers instead, for the self-contained CI smoke.
//!
//! `--io-mode`/`--reactors` select the in-process server's front end for
//! any mode. `--idle-conns N` switches to idle-scaling mode (see
//! [`run_idle`]): N open-but-quiet connections are parked on the server
//! while a small hot core drives pipelined load; the run reports
//! process thread count and RSS with the idle fleet attached, and — in
//! epoll mode — self-validates that threads stayed O(reactors + workers),
//! not O(connections).
//!
//! `--sweep-threads` switches to thread-sweep mode: one fresh in-process
//! server per connection count on device-wait media, reporting ops/s per
//! point and the throughput knee (see [`run_sweep`]).
//!
//! `--pipeline N` switches to pipeline-comparison mode (see
//! [`run_pipeline`]): a closed-loop round-trip phase, then a phase where
//! each connection ships batches of `N` operations — alternating `MULTI`
//! frames (one atomic group-committed batch) and raw pipelined frames —
//! and the report records round-trip vs pipelined throughput plus their
//! ratio. The run self-validates that ratio against a floor unless
//! `--throttle-us` deliberately slows the pipelined phase (the hook CI's
//! perf-gate self-test uses to prove the gate is not blind).
//!
//! Without `--addr`, an in-process server (ephemeral port, `--policy`) is
//! spawned and measured — the one-command mode CI and `EXPERIMENTS.md`
//! use. Each connection runs a closed loop of `--ops` operations
//! (`--read-pct`% GETs over previously-written keys, the rest durable
//! PUTs), retrying on `BUSY`. The run reports throughput and p50/p95/p99
//! latency per operation class, writes `results/server_loadgen.json`, and
//! self-validates the rows through `spp-bench`'s `validate_rows` — empty
//! or non-finite results exit nonzero (`--inject-garbage` deliberately
//! poisons a row so CI can prove that path stays red).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spp_bench::{banner, validate_rows, write_text_artifact, Args, Json};
use spp_pm::contention;
use spp_server::{
    fresh_server_pool, fresh_server_pool_wait, raise_nofile_limit, Client, ClientError, IoMode,
    KvEngine, PolicyKind, Reply, Request, Ring, Server, ServerConfig,
};

const KEY_SIZE: usize = 16;

/// Log-linear histogram resolution: sub-buckets per power of two. 32 keeps
/// the quantile error under ~3%.
const HIST_SUB_BITS: u32 = 5;
const HIST_SUB: u64 = 1 << HIST_SUB_BITS;
/// Buckets 0..2*HIST_SUB are exact (ns < 64); above that, each power of two
/// splits into `HIST_SUB` linear sub-buckets up to the full u64 range.
const HIST_BUCKETS: usize =
    (2 * HIST_SUB as usize) + (63 - HIST_SUB_BITS as usize) * HIST_SUB as usize;

fn bucket_of(ns: u64) -> usize {
    if ns < 2 * HIST_SUB {
        return ns as usize;
    }
    let msb = 63 - u64::from(ns.leading_zeros());
    let shift = msb - u64::from(HIST_SUB_BITS);
    let sub = (ns >> shift) - HIST_SUB;
    (2 * HIST_SUB + (msb - u64::from(HIST_SUB_BITS) - 1) * HIST_SUB + sub) as usize
}

/// Midpoint of a bucket's value range, in nanoseconds.
fn bucket_rep(idx: usize) -> u64 {
    if idx < 2 * HIST_SUB as usize {
        return idx as u64;
    }
    let off = idx as u64 - 2 * HIST_SUB;
    let group = off / HIST_SUB;
    let sub = off % HIST_SUB;
    let shift = group + 1;
    ((HIST_SUB + sub) << shift) + (1 << shift) / 2
}

/// Nanosecond latency distribution for one operation class: a fixed-footprint
/// log-linear histogram. Each connection thread fills its own and the driver
/// merges them bucket-wise — O(1) per sample, O(`HIST_BUCKETS`) per merge —
/// replacing the per-operation `Vec<u64>` that previously grew (and
/// reallocated) once per request for the whole run.
struct Lats {
    count: u64,
    buckets: Box<[u64]>,
}

impl Default for Lats {
    fn default() -> Self {
        Lats {
            count: 0,
            buckets: vec![0u64; HIST_BUCKETS].into_boxed_slice(),
        }
    }
}

impl Lats {
    fn push(&mut self, d: Duration) {
        self.buckets[bucket_of(d.as_nanos() as u64)] += 1;
        self.count += 1;
    }

    fn merge(&mut self, other: &Lats) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
    }

    fn percentile_us(&self, p: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = ((self.count - 1) as f64 * p).round() as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen > rank {
                return bucket_rep(idx) as f64 / 1_000.0;
            }
        }
        f64::NAN
    }
}

struct ConnResult {
    puts: Lats,
    gets: Lats,
    busy_retries: u64,
}

fn key_of(conn: u32, seq: u64) -> [u8; KEY_SIZE] {
    let mut k = [0u8; KEY_SIZE];
    k[..4].copy_from_slice(&conn.to_be_bytes());
    k[4..12].copy_from_slice(&seq.to_be_bytes());
    k
}

/// Closed-loop worker: `ops` operations, `read_pct`% GETs over keys this
/// connection already wrote, retrying `BUSY` with a short backoff.
fn run_conn(
    addr: std::net::SocketAddr,
    conn_id: u32,
    ops: u64,
    value: &[u8],
    read_pct: u32,
) -> Result<ConnResult, String> {
    let mut client = Client::connect_retry(addr, Duration::from_secs(5))
        .map_err(|e| format!("conn {conn_id}: connect: {e}"))?;
    let mut res = ConnResult {
        puts: Lats::default(),
        gets: Lats::default(),
        busy_retries: 0,
    };
    let mut written: u64 = 0;
    // Per-connection xorshift for the op mix and GET key choice.
    let mut x: u64 = 0x9e37_79b9 ^ u64::from(conn_id) << 17 | 1;
    let mut rng = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut out = Vec::with_capacity(value.len());
    for _ in 0..ops {
        let is_get = written > 0 && (rng() % 100) < u64::from(read_pct);
        if is_get {
            let key = key_of(conn_id, rng() % written);
            let start = Instant::now();
            out.clear();
            let hit = retry_busy(&mut res.busy_retries, || client.get(&key, &mut out))
                .map_err(|e| format!("conn {conn_id}: GET: {e}"))?;
            res.gets.push(start.elapsed());
            if !hit {
                return Err(format!("conn {conn_id}: GET missed an acked key"));
            }
        } else {
            let key = key_of(conn_id, written);
            let start = Instant::now();
            retry_busy(&mut res.busy_retries, || client.put(&key, value))
                .map_err(|e| format!("conn {conn_id}: PUT: {e}"))?;
            res.puts.push(start.elapsed());
            written += 1;
        }
    }
    Ok(res)
}

fn retry_busy<R>(
    busy: &mut u64,
    mut f: impl FnMut() -> Result<R, ClientError>,
) -> Result<R, ClientError> {
    loop {
        match f() {
            Err(ClientError::Busy) => {
                *busy += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            other => return other,
        }
    }
}

/// Pipelined worker: the same op mix as [`run_conn`], but shipped in
/// batches of `depth` without waiting per op. Batches alternate between a
/// `MULTI` frame (one atomic, group-committed unit) and raw back-to-back
/// pipelined frames, so both server paths are measured. A `BUSY` (whole
/// batch or any slot) retries the batch — PUTs are idempotent here. Batch
/// latency is attributed evenly across the batch's ops.
fn run_conn_pipelined(
    addr: std::net::SocketAddr,
    conn_id: u32,
    ops: u64,
    value: &[u8],
    read_pct: u32,
    depth: usize,
    throttle: Duration,
) -> Result<ConnResult, String> {
    let mut client = Client::connect_retry(addr, Duration::from_secs(5))
        .map_err(|e| format!("conn {conn_id}: connect: {e}"))?;
    let mut res = ConnResult {
        puts: Lats::default(),
        gets: Lats::default(),
        busy_retries: 0,
    };
    let mut written: u64 = 0;
    let mut x: u64 = 0x9e37_79b9 ^ u64::from(conn_id) << 17 | 1;
    let mut rng = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut done: u64 = 0;
    let mut batch_no: u64 = 0;
    while done < ops {
        let n = depth.min((ops - done) as usize).max(1);
        // Plan the batch up front: a GET may target a key whose PUT sits
        // earlier in the same batch — the server's run execution
        // guarantees reads observe earlier writes of the run.
        let mut plan: Vec<(bool, [u8; KEY_SIZE])> = Vec::with_capacity(n);
        let mut w = written;
        for _ in 0..n {
            let is_get = w > 0 && (rng() % 100) < u64::from(read_pct);
            if is_get {
                plan.push((true, key_of(conn_id, rng() % w)));
            } else {
                plan.push((false, key_of(conn_id, w)));
                w += 1;
            }
        }
        let reqs: Vec<Request<'_>> = plan
            .iter()
            .map(|(is_get, key)| {
                if *is_get {
                    Request::Get { key }
                } else {
                    Request::Put { key, value }
                }
            })
            .collect();
        let start = Instant::now();
        let replies = loop {
            let attempt = if batch_no.is_multiple_of(2) {
                client.multi(&reqs)
            } else {
                client.pipeline(&reqs)
            };
            match attempt {
                Ok(rs) if rs.iter().any(|r| matches!(r, Reply::Busy)) => {
                    res.busy_retries += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Ok(rs) => break rs,
                Err(ClientError::Busy) => {
                    res.busy_retries += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => return Err(format!("conn {conn_id}: batch: {e}")),
            }
        };
        let per_op = start.elapsed() / n as u32;
        for ((is_get, _), reply) in plan.iter().zip(&replies) {
            match (is_get, reply) {
                (true, Reply::Value(v)) if v == value => res.gets.push(per_op),
                (false, Reply::Ok) => res.puts.push(per_op),
                _ => {
                    return Err(format!(
                        "conn {conn_id}: unexpected batch reply {reply:?} (get={is_get})"
                    ))
                }
            }
        }
        written = w;
        done += n as u64;
        batch_no += 1;
        if throttle > Duration::ZERO {
            std::thread::sleep(throttle);
        }
    }
    Ok(res)
}

struct MultiConnResult {
    /// All-op latency distribution per endpoint, in endpoint order.
    per_shard: Vec<Lats>,
    busy_retries: u64,
}

/// Multi-endpoint worker: the [`run_conn`] op mix, but each key is routed
/// through the client-side [`Ring`] to the endpoint that owns it — one
/// open connection per endpoint. Routing is deterministic, so a GET for a
/// previously-acked key always lands on the endpoint that took the PUT.
fn run_conn_multi(
    endpoints: Arc<Vec<std::net::SocketAddr>>,
    ring: Arc<Ring>,
    conn_id: u32,
    ops: u64,
    value: &[u8],
    read_pct: u32,
) -> Result<MultiConnResult, String> {
    let mut clients = Vec::with_capacity(endpoints.len());
    for (s, addr) in endpoints.iter().enumerate() {
        clients.push(
            Client::connect_retry(*addr, Duration::from_secs(5))
                .map_err(|e| format!("conn {conn_id}: connect shard {s} ({addr}): {e}"))?,
        );
    }
    let mut res = MultiConnResult {
        per_shard: (0..endpoints.len()).map(|_| Lats::default()).collect(),
        busy_retries: 0,
    };
    let mut written: u64 = 0;
    let mut x: u64 = 0x9e37_79b9 ^ u64::from(conn_id) << 17 | 1;
    let mut rng = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut out = Vec::with_capacity(value.len());
    for _ in 0..ops {
        let is_get = written > 0 && (rng() % 100) < u64::from(read_pct);
        let key = if is_get {
            key_of(conn_id, rng() % written)
        } else {
            key_of(conn_id, written)
        };
        let shard = ring.shard_of(&key) as usize;
        let client = &mut clients[shard];
        let start = Instant::now();
        if is_get {
            out.clear();
            let hit = retry_busy(&mut res.busy_retries, || client.get(&key, &mut out))
                .map_err(|e| format!("conn {conn_id}: GET shard {shard}: {e}"))?;
            if !hit {
                return Err(format!(
                    "conn {conn_id}: shard {shard} missed an acked key — \
                     client ring disagrees with placement"
                ));
            }
        } else {
            retry_busy(&mut res.busy_retries, || client.put(&key, value))
                .map_err(|e| format!("conn {conn_id}: PUT shard {shard}: {e}"))?;
            written += 1;
        }
        res.per_shard[shard].push(start.elapsed());
    }
    Ok(res)
}

/// Multi-endpoint mode (`--addrs a,b,c` / `--local-shards N`): drive a
/// sharded deployment through a client-side ring and report how evenly
/// the ring spread real traffic. One row per shard; the headline skew is
/// `max/mean` of per-shard op counts (1.0 = perfectly even). The run
/// self-validates through `validate_rows` and fails if any shard saw no
/// traffic — a starved shard means client and server rings disagree.
fn run_multi(
    args: &Args,
    endpoints: Vec<std::net::SocketAddr>,
    mut local: Vec<Server>,
) -> Result<(), String> {
    let smoke = args.flag("smoke");
    let policy: PolicyKind = args.get("policy", PolicyKind::Spp);
    let conns: u32 = args.get("conns", if smoke { 2 } else { 4 });
    let ops: u64 = args.get("ops", if smoke { 500 } else { 20_000 });
    let value_size: usize = args.get("value-size", if smoke { 64 } else { 100 });
    let read_pct: u32 = args.get("read-pct", 50).min(100);
    let nshards = endpoints.len();

    banner(&format!(
        "spp-loadgen multi: {nshards} endpoints conns={conns} ops/conn={ops} \
         value={value_size}B reads={read_pct}%"
    ));
    for (s, addr) in endpoints.iter().enumerate() {
        println!("  shard {s} -> {addr}");
    }

    let endpoints = Arc::new(endpoints);
    let ring = Arc::new(Ring::new(nshards as u32));
    let value = vec![0xA5u8; value_size];
    let start = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|conn_id| {
            let endpoints = Arc::clone(&endpoints);
            let ring = Arc::clone(&ring);
            let value = value.clone();
            std::thread::spawn(move || {
                run_conn_multi(endpoints, ring, conn_id, ops, &value, read_pct)
            })
        })
        .collect();
    let mut per_shard: Vec<Lats> = (0..nshards).map(|_| Lats::default()).collect();
    let mut busy_retries = 0u64;
    for h in handles {
        let r = h.join().map_err(|_| "loadgen thread panicked")??;
        for (acc, lats) in per_shard.iter_mut().zip(&r.per_shard) {
            acc.merge(lats);
        }
        busy_retries += r.busy_retries;
    }
    let elapsed = start.elapsed().as_secs_f64();

    let counts: Vec<u64> = per_shard.iter().map(|l| l.count).collect();
    let total: u64 = counts.iter().sum();
    let mean = total as f64 / nshards as f64;
    let skew = counts.iter().copied().max().unwrap_or(0) as f64 / mean;
    for (s, lats) in per_shard.iter().enumerate() {
        println!(
            "  shard {s}: {:>8} ops  {:>10.0} ops/s  p50={:.1}us p99={:.1}us",
            lats.count,
            lats.count as f64 / elapsed,
            lats.percentile_us(0.50),
            lats.percentile_us(0.99),
        );
    }
    println!(
        "total: {total} ops in {elapsed:.3}s = {:.0} ops/s  shard skew (max/mean): {skew:.2} \
         ({busy_retries} BUSY retries)",
        total as f64 / elapsed
    );
    if let Some(starved) = counts.iter().position(|&c| c == 0) {
        return Err(format!(
            "shard {starved} received no traffic — client ring and deployment disagree"
        ));
    }

    let mut rows = Vec::with_capacity(nshards);
    for (s, lats) in per_shard.iter().enumerate() {
        let mut row = lat_row(policy, "multi_shard", lats, elapsed);
        if let Json::Obj(fields) = &mut row {
            fields.insert(2, ("shard", Json::Int(s as u64)));
        }
        rows.push(row);
    }
    for row in &rows {
        println!("{}", row.render());
    }
    validate_rows(
        &rows,
        &["throughput_ops_s", "p50_us", "p95_us", "p99_us", "ops"],
    )
    .map_err(|e| format!("result validation failed: {e}"))?;

    let doc = Json::Obj(vec![
        ("name", Json::Str("server_loadgen".to_string())),
        ("mode", Json::Str("multi".to_string())),
        ("policy", Json::Str(policy.label().to_string())),
        ("shards", Json::Int(nshards as u64)),
        ("conns", Json::Int(u64::from(conns))),
        ("ops_per_conn", Json::Int(ops)),
        ("value_size", Json::Int(value_size as u64)),
        ("read_pct", Json::Int(u64::from(read_pct))),
        ("elapsed_s", Json::Num(elapsed)),
        ("total_ops_s", Json::Num(total as f64 / elapsed)),
        (
            "shard_ops",
            Json::Arr(counts.iter().map(|&c| Json::Int(c)).collect()),
        ),
        ("shard_skew_max_over_mean", Json::Num(skew)),
        ("busy_retries", Json::Int(busy_retries)),
        ("rows", Json::Arr(rows)),
    ]);
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| format!("create results/: {e}"))?;
    let path = dir.join("server_loadgen.json");
    std::fs::write(&path, doc.render() + "\n").map_err(|e| format!("write {path:?}: {e}"))?;
    println!("wrote {}", path.display());

    if args.flag("shutdown") && local.is_empty() {
        for addr in endpoints.iter() {
            let mut c = Client::connect_retry(*addr, Duration::from_secs(5))
                .map_err(|e| format!("shutdown connect {addr}: {e}"))?;
            c.shutdown().map_err(|e| format!("SHUTDOWN {addr}: {e}"))?;
        }
    }
    for server in local.drain(..) {
        server.shutdown();
    }
    Ok(())
}

struct PhaseOut {
    elapsed_s: f64,
    puts: Lats,
    gets: Lats,
    busy_retries: u64,
    /// `(batches, ops)` group-commit counters — in-process servers only.
    group: Option<(u64, u64)>,
}

/// Run one measurement phase: `depth == 0` is the closed-loop round-trip
/// baseline, `depth > 0` ships pipelined batches. Spawns a fresh in-process
/// server unless `addr_arg` names an external one (then `conn_base` keeps
/// the phases' keyspaces disjoint).
#[allow(clippy::too_many_arguments)]
fn run_phase(
    args: &Args,
    policy: PolicyKind,
    addr_arg: &str,
    conn_base: u32,
    conns: u32,
    ops: u64,
    value: &[u8],
    read_pct: u32,
    depth: usize,
    throttle: Duration,
) -> Result<PhaseOut, String> {
    let mut local: Option<Server> = None;
    let addr: std::net::SocketAddr = if addr_arg.is_empty() {
        let pool = fresh_server_pool(args.get("pool-mb", 64u64) << 20, 16, false)
            .map_err(|e| format!("pool create: {e}"))?;
        let engine = Arc::new(
            KvEngine::create(pool, policy, args.get("nbuckets", 4096))
                .map_err(|e| format!("engine create: {e}"))?,
        );
        let cfg = ServerConfig {
            workers: args.get("workers", 4),
            max_conns: args.get("max-conns", 64),
            queue_depth: args.get("queue-depth", 128),
            io: args.get("io-mode", IoMode::Threads),
            reactors: args.get("reactors", 2),
            ..ServerConfig::default()
        };
        let server = Server::start(engine, ("127.0.0.1", 0), cfg)
            .map_err(|e| format!("in-process server: {e}"))?;
        let addr = server.local_addr();
        local = Some(server);
        addr
    } else {
        addr_arg
            .parse()
            .map_err(|e| format!("bad --addr `{addr_arg}`: {e}"))?
    };

    let start = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|i| {
            let value = value.to_vec();
            std::thread::spawn(move || {
                if depth == 0 {
                    run_conn(addr, conn_base + i, ops, &value, read_pct)
                } else {
                    run_conn_pipelined(addr, conn_base + i, ops, &value, read_pct, depth, throttle)
                }
            })
        })
        .collect();
    let mut puts = Lats::default();
    let mut gets = Lats::default();
    let mut busy_retries = 0u64;
    for h in handles {
        let r = h.join().map_err(|_| "loadgen thread panicked")??;
        puts.merge(&r.puts);
        gets.merge(&r.gets);
        busy_retries += r.busy_retries;
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let group = local.as_ref().map(Server::group_stats);
    if let Some(server) = local.take() {
        server.shutdown();
    }
    Ok(PhaseOut {
        elapsed_s,
        puts,
        gets,
        busy_retries,
        group,
    })
}

/// Pipeline-comparison mode (`--pipeline N`): round-trip baseline phase,
/// then a pipelined phase at depth `N`, reporting both throughputs and
/// their ratio. Exits nonzero if the speedup misses the floor (2.0x full,
/// 1.5x smoke) — unless `--throttle-us` is deliberately degrading the run
/// for the perf-gate's injected-regression self-test.
fn run_pipeline(args: &Args, depth: usize) -> Result<(), String> {
    let smoke = args.flag("smoke");
    let policy: PolicyKind = args.get("policy", PolicyKind::Spp);
    let conns: u32 = args.get("conns", if smoke { 2 } else { 4 });
    let ops: u64 = args.get("ops", if smoke { 500 } else { 20_000 });
    let value_size: usize = args.get("value-size", if smoke { 64 } else { 100 });
    let read_pct: u32 = args.get("read-pct", 50).min(100);
    let addr_arg: String = args.get("addr", String::new());
    let throttle = Duration::from_micros(args.get("throttle-us", 0u64));

    banner(&format!(
        "spp-loadgen pipeline: policy={} depth={depth} conns={conns} ops/conn={ops} \
         value={value_size}B reads={read_pct}%",
        policy.label()
    ));
    let value = vec![0xA5u8; value_size];

    let rt = run_phase(
        args,
        policy,
        &addr_arg,
        0,
        conns,
        ops,
        &value,
        read_pct,
        0,
        Duration::ZERO,
    )?;
    let rt_tput = (rt.puts.count + rt.gets.count) as f64 / rt.elapsed_s;
    println!(
        "round-trip: {rt_tput:>10.0} ops/s  p50={:.1}us p99={:.1}us ({} BUSY retries)",
        rt.puts.percentile_us(0.50),
        rt.puts.percentile_us(0.99),
        rt.busy_retries
    );

    let pl = run_phase(
        args,
        policy,
        &addr_arg,
        1 << 20,
        conns,
        ops,
        &value,
        read_pct,
        depth,
        throttle,
    )?;
    let pl_tput = (pl.puts.count + pl.gets.count) as f64 / pl.elapsed_s;
    println!(
        "pipelined:  {pl_tput:>10.0} ops/s  p50={:.1}us p99={:.1}us ({} BUSY retries)",
        pl.puts.percentile_us(0.50),
        pl.puts.percentile_us(0.99),
        pl.busy_retries
    );
    if let Some((batches, gops)) = pl.group {
        let avg = if batches > 0 {
            gops as f64 / batches as f64
        } else {
            0.0
        };
        println!(
            "group commit: {gops} write ops over {batches} boundaries ({avg:.1} ops/boundary)"
        );
    }

    let speedup = pl_tput / rt_tput;
    println!("pipeline speedup: {speedup:.2}x");
    let floor = if smoke { 1.5 } else { 2.0 };
    if throttle > Duration::ZERO {
        println!("throttled run ({throttle:?}/batch): speedup floor check skipped");
    } else if speedup < floor {
        return Err(format!(
            "pipeline speedup {speedup:.2}x under the {floor:.1}x floor — batching regressed"
        ));
    }

    let mut rows = vec![
        lat_row(policy, "put_roundtrip", &rt.puts, rt.elapsed_s),
        lat_row(policy, "put_pipelined", &pl.puts, pl.elapsed_s),
    ];
    if rt.gets.count > 0 {
        rows.push(lat_row(policy, "get_roundtrip", &rt.gets, rt.elapsed_s));
    }
    if pl.gets.count > 0 {
        rows.push(lat_row(policy, "get_pipelined", &pl.gets, pl.elapsed_s));
    }
    for row in &rows {
        println!("{}", row.render());
    }
    validate_rows(
        &rows,
        &["throughput_ops_s", "p50_us", "p95_us", "p99_us", "ops"],
    )
    .map_err(|e| format!("result validation failed: {e}"))?;

    let (group_batches, group_ops) = pl.group.unwrap_or((0, 0));
    let doc = Json::Obj(vec![
        ("name", Json::Str("server_loadgen".to_string())),
        ("mode", Json::Str("pipeline".to_string())),
        ("policy", Json::Str(policy.label().to_string())),
        ("pipeline_depth", Json::Int(depth as u64)),
        ("conns", Json::Int(u64::from(conns))),
        ("ops_per_conn", Json::Int(ops)),
        ("value_size", Json::Int(value_size as u64)),
        ("read_pct", Json::Int(u64::from(read_pct))),
        ("throttle_us", Json::Int(throttle.as_micros() as u64)),
        ("roundtrip_ops_s", Json::Num(rt_tput)),
        ("pipelined_ops_s", Json::Num(pl_tput)),
        ("pipeline_speedup", Json::Num(speedup)),
        ("group_batches", Json::Int(group_batches)),
        ("group_batched_ops", Json::Int(group_ops)),
        ("busy_retries", Json::Int(rt.busy_retries + pl.busy_retries)),
        ("rows", Json::Arr(rows)),
    ]);
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| format!("create results/: {e}"))?;
    let path = dir.join("server_loadgen.json");
    std::fs::write(&path, doc.render() + "\n").map_err(|e| format!("write {path:?}: {e}"))?;
    println!("wrote {}", path.display());

    // Both phases already tore down their in-process servers; --shutdown
    // only matters against an external --addr server (the CI smoke job
    // ends each policy's serving round through this).
    if args.flag("shutdown") && !addr_arg.is_empty() {
        let mut client = Client::connect_retry(&addr_arg, Duration::from_secs(5))
            .map_err(|e| format!("shutdown connect: {e}"))?;
        client.shutdown().map_err(|e| format!("SHUTDOWN: {e}"))?;
    }
    Ok(())
}

fn lat_row(policy: PolicyKind, op: &'static str, lats: &Lats, elapsed_s: f64) -> Json {
    Json::Obj(vec![
        ("policy", Json::Str(policy.label().to_string())),
        ("op", Json::Str(op.to_string())),
        ("ops", Json::Int(lats.count)),
        ("throughput_ops_s", Json::Num(lats.count as f64 / elapsed_s)),
        ("p50_us", Json::Num(lats.percentile_us(0.50))),
        ("p95_us", Json::Num(lats.percentile_us(0.95))),
        ("p99_us", Json::Num(lats.percentile_us(0.99))),
    ])
}

/// Thread-sweep mode (`--sweep-threads 1,2,4,8`): one fresh in-process
/// server per connection count, all on device-wait media, reporting where
/// the throughput knee sits. Each point's row lands in
/// `results/server_loadgen.json` with `op: "sweep"`; the contention profile
/// accumulated across the sweep is dumped to
/// `results/contention_loadgen.txt`.
fn run_sweep(args: &Args, sweep_csv: &str) -> Result<(), String> {
    let smoke = args.flag("smoke");
    let policy: PolicyKind = args.get("policy", PolicyKind::Pmdk);
    let ops: u64 = args.get("ops", if smoke { 300 } else { 4_000 });
    let value_size: usize = args.get("value-size", if smoke { 64 } else { 100 });
    let read_pct: u32 = args.get("read-pct", 50).min(100);
    let flush_wait_ns: u32 = args.get("flush-wait-ns", 15_000);
    let conn_counts: Vec<u32> = sweep_csv
        .split(',')
        .filter_map(|t| t.parse().ok())
        .collect();
    if conn_counts.len() < 2 {
        return Err(format!(
            "--sweep-threads needs >= 2 counts, got `{sweep_csv}`"
        ));
    }

    banner(&format!(
        "spp-loadgen sweep: policy={} conns={conn_counts:?} ops/conn={ops} \
         value={value_size}B reads={read_pct}% flush-wait={flush_wait_ns}ns",
        policy.label()
    ));

    contention::reset_all();
    let value = vec![0xA5u8; value_size];
    let mut rows = Vec::new();
    let mut tputs: Vec<f64> = Vec::new();
    for &conns in &conn_counts {
        let pool = fresh_server_pool_wait(args.get("pool-mb", 64u64) << 20, 16, flush_wait_ns)
            .map_err(|e| format!("pool create: {e}"))?;
        let pm = Arc::clone(pool.pm());
        let engine = Arc::new(
            KvEngine::create(pool, policy, args.get("nbuckets", 4096))
                .map_err(|e| format!("engine create: {e}"))?,
        );
        let cfg = ServerConfig {
            workers: args.get("workers", 8),
            max_conns: args.get("max-conns", 64),
            queue_depth: args.get("queue-depth", 256),
            io: args.get("io-mode", IoMode::Threads),
            reactors: args.get("reactors", 2),
            ..ServerConfig::default()
        };
        let server = Server::start(engine, ("127.0.0.1", 0), cfg)
            .map_err(|e| format!("in-process server: {e}"))?;
        let addr = server.local_addr();
        pm.set_latency_enabled(true);

        let start = Instant::now();
        let handles: Vec<_> = (0..conns)
            .map(|conn_id| {
                let value = value.clone();
                std::thread::spawn(move || run_conn(addr, conn_id, ops, &value, read_pct))
            })
            .collect();
        let mut all = Lats::default();
        let mut busy_retries = 0u64;
        for h in handles {
            let r = h.join().map_err(|_| "loadgen thread panicked")??;
            all.merge(&r.puts);
            all.merge(&r.gets);
            busy_retries += r.busy_retries;
        }
        let elapsed = start.elapsed().as_secs_f64();
        server.shutdown();

        let tput = all.count as f64 / elapsed;
        println!(
            "  conns={conns:<3} {tput:>10.0} ops/s  p50={:>8.1}us  p99={:>8.1}us  \
             ({busy_retries} BUSY retries)",
            all.percentile_us(0.50),
            all.percentile_us(0.99),
        );
        let mut row = lat_row(policy, "sweep", &all, elapsed);
        if let Json::Obj(fields) = &mut row {
            fields.insert(2, ("conns", Json::Int(u64::from(conns))));
        }
        rows.push(row);
        tputs.push(tput);
    }

    // The knee: the last connection count that still bought >= 10% more
    // throughput than the previous point.
    let mut knee = conn_counts[0];
    for i in 1..tputs.len() {
        if tputs[i] >= tputs[i - 1] * 1.10 {
            knee = conn_counts[i];
        } else {
            break;
        }
    }
    println!("throughput knee at {knee} connections");
    println!("top contended locks during the sweep:");
    for snap in contention::top_contended(3) {
        println!(
            "  {:<16} {:>8} acq  {:>6.2}% contended  {:>8.2}ms waited",
            snap.name,
            snap.acquisitions,
            snap.contended_fraction() * 100.0,
            snap.wait_ns as f64 / 1e6,
        );
    }
    let dump_path = write_text_artifact("contention_loadgen.txt", &contention::dump());
    println!("contention dump written to {}", dump_path.display());

    validate_rows(
        &rows,
        &[
            "throughput_ops_s",
            "p50_us",
            "p95_us",
            "p99_us",
            "ops",
            "conns",
        ],
    )
    .map_err(|e| format!("sweep validation failed: {e}"))?;

    let doc = Json::Obj(vec![
        ("name", Json::Str("server_loadgen".to_string())),
        ("mode", Json::Str("sweep".to_string())),
        ("policy", Json::Str(policy.label().to_string())),
        ("ops_per_conn", Json::Int(ops)),
        ("value_size", Json::Int(value_size as u64)),
        ("read_pct", Json::Int(u64::from(read_pct))),
        ("flush_wait_ns", Json::Int(u64::from(flush_wait_ns))),
        (
            "sweep_conns",
            Json::Arr(
                conn_counts
                    .iter()
                    .map(|&c| Json::Int(u64::from(c)))
                    .collect(),
            ),
        ),
        (
            "sweep_ops_per_s",
            Json::Arr(tputs.iter().map(|&v| Json::Num(v)).collect()),
        ),
        ("knee_conns", Json::Int(u64::from(knee))),
        ("rows", Json::Arr(rows)),
    ]);
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| format!("create results/: {e}"))?;
    let path = dir.join("server_loadgen.json");
    std::fs::write(&path, doc.render() + "\n").map_err(|e| format!("write {path:?}: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}

/// `(threads, vm_rss_kb)` for this process, from `/proc/self/status`;
/// `(0, 0)` when procfs is unavailable (the caller treats that as
/// "cannot self-validate", not as a pass).
fn proc_status() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |name: &str| {
        status
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    };
    (field("Threads:"), field("VmRSS:"))
}

/// Idle-scaling mode (`--idle-conns N`): park N open-but-quiet
/// connections on a fresh in-process server, then drive pipelined load
/// over a small hot core and report what the idle fleet actually cost —
/// process thread count and RSS with the fleet attached, plus hot-path
/// p50/p99 — and finally ping every idle connection to prove the fleet
/// stayed serviceable. In epoll mode the run **self-validates** the
/// headline claim: total threads stay within `reactors + workers +
/// hot + slack`, i.e. O(reactors + workers), not O(connections). In
/// threads mode the same row is reported without a budget (each idle
/// connection pins a blocked thread — the baseline the reactor exists
/// to beat), which is what the `EXPERIMENTS.md` comparison table plots.
fn run_idle(args: &Args, idle_conns: u32) -> Result<(), String> {
    let smoke = args.flag("smoke");
    let policy: PolicyKind = args.get("policy", PolicyKind::Spp);
    let io: IoMode = args.get("io-mode", IoMode::Epoll);
    let reactors: usize = args.get("reactors", 2);
    let workers: usize = args.get("workers", 4);
    let hot: u32 = args.get("conns", 2);
    let ops: u64 = args.get("ops", if smoke { 400 } else { 4_000 });
    let depth: usize = args.get("pipeline", 8usize).max(1);
    let value_size: usize = args.get("value-size", if smoke { 64 } else { 100 });
    let read_pct: u32 = args.get("read-pct", 50).min(100);

    // The fd limit, not memory, is the usual first wall at thousands of
    // sockets; raise it before opening anything.
    let nofile = raise_nofile_limit();
    let need = u64::from(idle_conns) + u64::from(hot) + 64;
    if nofile < need {
        return Err(format!(
            "RLIMIT_NOFILE {nofile} too low for {idle_conns} idle connections (need ~{need})"
        ));
    }

    banner(&format!(
        "spp-loadgen idle-scaling: io={io} policy={} idle={idle_conns} hot={hot} \
         depth={depth} ops/hot-conn={ops}",
        policy.label()
    ));

    let pool = fresh_server_pool(args.get("pool-mb", 64u64) << 20, 16, false)
        .map_err(|e| format!("pool create: {e}"))?;
    let engine = Arc::new(
        KvEngine::create(pool, policy, args.get("nbuckets", 4096))
            .map_err(|e| format!("engine create: {e}"))?,
    );
    let cfg = ServerConfig {
        workers,
        max_conns: idle_conns as usize + hot as usize + 8,
        queue_depth: args.get("queue-depth", 128),
        io,
        reactors,
        ..ServerConfig::default()
    };
    let server = Server::start(engine, ("127.0.0.1", 0), cfg)
        .map_err(|e| format!("in-process server: {e}"))?;
    let addr = server.local_addr();
    let (threads_base, rss_base_kb) = proc_status();

    // Park the idle fleet. Each connection proves it was admitted and
    // served (one PING) before going quiet.
    let open_start = Instant::now();
    let mut idle: Vec<Client> = Vec::with_capacity(idle_conns as usize);
    for i in 0..idle_conns {
        let mut c = Client::connect_retry(addr, Duration::from_secs(10))
            .map_err(|e| format!("idle conn {i}: connect: {e}"))?;
        c.ping().map_err(|e| format!("idle conn {i}: ping: {e}"))?;
        idle.push(c);
    }
    let open_s = open_start.elapsed().as_secs_f64();
    let (threads_idle, rss_idle_kb) = proc_status();
    println!(
        "idle fleet up: {idle_conns} conns in {open_s:.2}s  threads {threads_base} -> \
         {threads_idle}  rss {rss_base_kb} -> {rss_idle_kb} kB"
    );

    // Hot pipelined core over the parked fleet.
    let value = vec![0xA5u8; value_size];
    let start = Instant::now();
    let handles: Vec<_> = (0..hot)
        .map(|i| {
            let value = value.clone();
            std::thread::spawn(move || {
                run_conn_pipelined(
                    addr,
                    (1 << 20) + i,
                    ops,
                    &value,
                    read_pct,
                    depth,
                    Duration::ZERO,
                )
            })
        })
        .collect();
    // Sample the thread count while the hot core is actually running —
    // that is the moment the claim is about.
    std::thread::sleep(Duration::from_millis(50));
    let (threads_load, rss_load_kb) = proc_status();
    let mut puts = Lats::default();
    let mut gets = Lats::default();
    let mut busy_retries = 0u64;
    for h in handles {
        let r = h.join().map_err(|_| "loadgen thread panicked")??;
        puts.merge(&r.puts);
        gets.merge(&r.gets);
        busy_retries += r.busy_retries;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let tput = (puts.count + gets.count) as f64 / elapsed;
    println!(
        "hot core: {tput:>10.0} ops/s  p50={:.1}us p99={:.1}us ({busy_retries} BUSY retries)  \
         threads under load: {threads_load}  rss: {rss_load_kb} kB",
        puts.percentile_us(0.50),
        puts.percentile_us(0.99),
    );

    // The fleet must still be alive and serviceable after the load ran.
    for (i, c) in idle.iter_mut().enumerate() {
        c.ping()
            .map_err(|e| format!("idle conn {i} died while parked: {e}"))?;
    }
    println!("all {idle_conns} idle connections still answer PING");
    drop(idle);
    server.shutdown();

    // Self-validation: with epoll reactors, idle connections are epoll
    // registrations, so total process threads are bounded by the fixed
    // staff — reactors + workers + hot client threads + slack for main,
    // committer, and runtime helpers. 5000 idle conns vs a budget of
    // ~hot+reactors+workers+8 leaves no room for an O(conns) regression
    // to hide.
    let budget = (reactors + workers + hot as usize + 8) as u64;
    if io == IoMode::Epoll {
        if threads_load == 0 {
            return Err("procfs unavailable: cannot validate the thread budget".into());
        }
        if threads_load > budget {
            return Err(format!(
                "thread count {threads_load} exceeds budget {budget} \
                 (reactors={reactors} workers={workers} hot={hot}): \
                 threads are scaling with connections"
            ));
        }
        println!("thread budget holds: {threads_load} <= {budget}");
    }

    let mut rows = vec![lat_row(policy, "idle_hot_put", &puts, elapsed)];
    if gets.count > 0 {
        rows.push(lat_row(policy, "idle_hot_get", &gets, elapsed));
    }
    for row in &rows {
        println!("{}", row.render());
    }
    validate_rows(
        &rows,
        &["throughput_ops_s", "p50_us", "p95_us", "p99_us", "ops"],
    )
    .map_err(|e| format!("result validation failed: {e}"))?;

    let doc = Json::Obj(vec![
        ("name", Json::Str("server_loadgen".to_string())),
        ("mode", Json::Str("idle_scaling".to_string())),
        ("io_mode", Json::Str(io.to_string())),
        ("policy", Json::Str(policy.label().to_string())),
        ("idle_conns", Json::Int(u64::from(idle_conns))),
        ("hot_conns", Json::Int(u64::from(hot))),
        ("reactors", Json::Int(reactors as u64)),
        ("workers", Json::Int(workers as u64)),
        ("pipeline_depth", Json::Int(depth as u64)),
        ("ops_per_conn", Json::Int(ops)),
        ("value_size", Json::Int(value_size as u64)),
        ("read_pct", Json::Int(u64::from(read_pct))),
        ("open_fleet_s", Json::Num(open_s)),
        ("os_threads_base", Json::Int(threads_base)),
        ("os_threads_idle", Json::Int(threads_idle)),
        ("os_threads_load", Json::Int(threads_load)),
        ("thread_budget", Json::Int(budget)),
        ("vm_rss_kb_base", Json::Int(rss_base_kb)),
        ("vm_rss_kb_idle", Json::Int(rss_idle_kb)),
        ("vm_rss_kb_load", Json::Int(rss_load_kb)),
        ("hot_ops_s", Json::Num(tput)),
        ("busy_retries", Json::Int(busy_retries)),
        ("rows", Json::Arr(rows)),
    ]);
    // A sibling artifact, not `server_loadgen.json`: the pipeline and
    // sweep artifacts live there, and the perf gate pins that file to
    // `mode: "pipeline"` — idle-scaling results must not clobber them.
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| format!("create results/: {e}"))?;
    let path = dir.join("server_loadgen_idle.json");
    std::fs::write(&path, doc.render() + "\n").map_err(|e| format!("write {path:?}: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    let sweep_csv: String = args.get("sweep-threads", String::new());
    if !sweep_csv.is_empty() {
        return run_sweep(&args, &sweep_csv);
    }
    let idle_conns: u32 = args.get("idle-conns", 0u32);
    if idle_conns > 0 {
        return run_idle(&args, idle_conns);
    }
    let pipeline_depth: usize = args.get("pipeline", 0usize);
    if pipeline_depth > 0 {
        return run_pipeline(&args, pipeline_depth);
    }
    let addrs_csv: String = args.get("addrs", String::new());
    let local_shards: u32 = args.get("local-shards", 0u32);
    if !addrs_csv.is_empty() {
        let endpoints: Vec<std::net::SocketAddr> = addrs_csv
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|e| format!("bad --addrs entry `{t}`: {e}"))
            })
            .collect::<Result<_, _>>()?;
        if endpoints.len() < 2 {
            return Err("--addrs needs at least 2 endpoints (use --addr for one)".to_string());
        }
        return run_multi(&args, endpoints, Vec::new());
    }
    if local_shards > 0 {
        // Self-contained sharded deployment: one in-process single-shard
        // server per endpoint, each with its own pool.
        let policy: PolicyKind = args.get("policy", PolicyKind::Spp);
        let mut servers = Vec::with_capacity(local_shards as usize);
        let mut endpoints = Vec::with_capacity(local_shards as usize);
        for s in 0..local_shards {
            let pool = fresh_server_pool(args.get("pool-mb", 32u64) << 20, 16, false)
                .map_err(|e| format!("shard {s} pool create: {e}"))?;
            let engine = Arc::new(
                KvEngine::create(pool, policy, args.get("nbuckets", 4096))
                    .map_err(|e| format!("shard {s} engine create: {e}"))?,
            );
            let cfg = ServerConfig {
                workers: args.get("workers", 4),
                max_conns: args.get("max-conns", 64),
                queue_depth: args.get("queue-depth", 128),
                io: args.get("io-mode", IoMode::Threads),
                reactors: args.get("reactors", 2),
                ..ServerConfig::default()
            };
            let server = Server::start(engine, ("127.0.0.1", 0), cfg)
                .map_err(|e| format!("shard {s} server: {e}"))?;
            endpoints.push(server.local_addr());
            servers.push(server);
        }
        return run_multi(&args, endpoints, servers);
    }
    let smoke = args.flag("smoke");
    let policy: PolicyKind = args.get("policy", PolicyKind::Spp);
    let conns: u32 = args.get("conns", if smoke { 2 } else { 4 });
    let ops: u64 = args.get("ops", if smoke { 500 } else { 20_000 });
    let value_size: usize = args.get("value-size", if smoke { 64 } else { 100 });
    let read_pct: u32 = args.get("read-pct", 50).min(100);
    let addr_arg: String = args.get("addr", String::new());
    let want_shutdown = args.flag("shutdown");
    let inject_garbage = args.flag("inject-garbage");

    banner(&format!(
        "spp-loadgen: policy={} conns={conns} ops/conn={ops} value={value_size}B reads={read_pct}%",
        policy.label()
    ));

    // Either measure an external server or spawn one in-process.
    let mut local: Option<Server> = None;
    let addr: std::net::SocketAddr = if addr_arg.is_empty() {
        let pool = fresh_server_pool(args.get("pool-mb", 64u64) << 20, 16, false)
            .map_err(|e| format!("pool create: {e}"))?;
        let engine = Arc::new(
            KvEngine::create(pool, policy, args.get("nbuckets", 4096))
                .map_err(|e| format!("engine create: {e}"))?,
        );
        let cfg = ServerConfig {
            workers: args.get("workers", 4),
            max_conns: args.get("max-conns", 64),
            queue_depth: args.get("queue-depth", 128),
            io: args.get("io-mode", IoMode::Threads),
            reactors: args.get("reactors", 2),
            ..ServerConfig::default()
        };
        let server = Server::start(engine, ("127.0.0.1", 0), cfg)
            .map_err(|e| format!("in-process server: {e}"))?;
        let addr = server.local_addr();
        println!("spawned in-process server on {addr}");
        local = Some(server);
        addr
    } else {
        addr_arg
            .parse()
            .map_err(|e| format!("bad --addr `{addr_arg}`: {e}"))?
    };

    let value = vec![0xA5u8; value_size];
    let start = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|conn_id| {
            let value = value.clone();
            std::thread::spawn(move || run_conn(addr, conn_id, ops, &value, read_pct))
        })
        .collect();
    let mut puts = Lats::default();
    let mut gets = Lats::default();
    let mut busy_retries = 0u64;
    for h in handles {
        let r = h.join().map_err(|_| "loadgen thread panicked")??;
        puts.merge(&r.puts);
        gets.merge(&r.gets);
        busy_retries += r.busy_retries;
    }
    let elapsed = start.elapsed().as_secs_f64();

    // Server-side introspection after the run (also exercises STATS).
    let mut client =
        Client::connect_retry(addr, Duration::from_secs(5)).map_err(|e| format!("stats: {e}"))?;
    let stats = client.stats().map_err(|e| format!("STATS: {e}"))?;
    println!("--- server stats ---\n{stats}--------------------");

    if want_shutdown {
        client.shutdown().map_err(|e| format!("SHUTDOWN: {e}"))?;
    }
    if let Some(server) = local.take() {
        // Idempotent with a wire-initiated SHUTDOWN; quiesces the pool.
        server.shutdown();
    }

    let total_ops = (puts.count + gets.count) as f64;
    println!(
        "total: {total_ops:.0} ops in {elapsed:.3}s = {:.0} ops/s ({busy_retries} BUSY retries)",
        total_ops / elapsed
    );
    let mut rows = vec![lat_row(policy, "put", &puts, elapsed)];
    if gets.count > 0 {
        rows.push(lat_row(policy, "get", &gets, elapsed));
    }
    for row in &rows {
        println!("{}", row.render());
    }
    if inject_garbage {
        // Negative CI hook: a poisoned row must make validation fail.
        rows.push(Json::Obj(vec![
            ("policy", Json::Str(policy.label().to_string())),
            ("op", Json::Str("garbage".to_string())),
            ("ops", Json::Int(0)),
            ("throughput_ops_s", Json::Num(f64::NAN)),
            ("p50_us", Json::Num(f64::NAN)),
            ("p95_us", Json::Num(f64::NAN)),
            ("p99_us", Json::Num(f64::NAN)),
        ]));
    }
    validate_rows(
        &rows,
        &["throughput_ops_s", "p50_us", "p95_us", "p99_us", "ops"],
    )
    .map_err(|e| format!("result validation failed: {e}"))?;

    let doc = Json::Obj(vec![
        ("name", Json::Str("server_loadgen".to_string())),
        ("policy", Json::Str(policy.label().to_string())),
        ("conns", Json::Int(u64::from(conns))),
        ("ops_per_conn", Json::Int(ops)),
        ("value_size", Json::Int(value_size as u64)),
        ("read_pct", Json::Int(u64::from(read_pct))),
        ("busy_retries", Json::Int(busy_retries)),
        ("elapsed_s", Json::Num(elapsed)),
        ("rows", Json::Arr(rows)),
    ]);
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| format!("create results/: {e}"))?;
    let path = dir.join("server_loadgen.json");
    std::fs::write(&path, doc.render() + "\n").map_err(|e| format!("write {path:?}: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("spp-loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_in_range() {
        let mut samples: Vec<u64> = (0..64u32)
            .flat_map(|shift| {
                [0u64, 1, 3]
                    .into_iter()
                    .map(move |frac| (1u64 << shift) | (frac << shift.saturating_sub(3)))
            })
            .collect();
        samples.sort_unstable();
        let mut prev = 0usize;
        for ns in samples {
            let idx = bucket_of(ns);
            assert!(idx < HIST_BUCKETS, "ns={ns} idx={idx}");
            assert!(idx >= prev, "bucket index regressed at ns={ns}");
            prev = idx;
        }
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_rep_lands_in_its_own_bucket() {
        for idx in 0..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_rep(idx)), idx, "idx={idx}");
        }
    }

    #[test]
    fn percentiles_track_samples_within_bucket_error() {
        let mut lats = Lats::default();
        for us in 1..=1000u64 {
            lats.push(Duration::from_micros(us));
        }
        let p50 = lats.percentile_us(0.50);
        let p99 = lats.percentile_us(0.99);
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 = {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 = {p99}");
        assert!(lats.percentile_us(1.0) >= p99);
    }

    #[test]
    fn merge_equals_pushing_into_one() {
        let mut a = Lats::default();
        let mut b = Lats::default();
        let mut whole = Lats::default();
        for i in 1..200u64 {
            let d = Duration::from_nanos(i * i * 37);
            if i % 2 == 0 {
                a.push(d);
            } else {
                b.push(d);
            }
            whole.push(d);
        }
        a.merge(&b);
        assert_eq!(a.count, whole.count);
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(a.percentile_us(p), whole.percentile_us(p));
        }
    }

    #[test]
    fn empty_histogram_yields_nan() {
        assert!(Lats::default().percentile_us(0.5).is_nan());
    }
}
