//! The `spp-server` daemon: serve one persistent KV engine over TCP.
//!
//! ```text
//! spp-server [--addr 127.0.0.1] [--port 7877] [--policy pmdk|spp|safepm]
//!            [--pool-mb 64] [--lanes 16] [--nbuckets 4096] [--shards 1]
//!            [--workers 4] [--max-conns 64] [--queue-depth 128]
//!            [--group-max-batch 64] [--group-hold-us 0]
//!            [--io-mode threads|epoll] [--reactors 2] [--idle-timeout-ms 0]
//!            [--pool-file PATH] [--ready-file PATH]
//!            [--repl-to ADDR] [--repl-ack-mode sync|async]
//!            [--repl-drop-batch N]
//! ```
//!
//! `--port 0` binds an ephemeral port; the daemon prints a
//! `spp-server listening on ADDR` line either way, which scripts (and the
//! CI smoke job) parse. `--ready-file` additionally publishes that address
//! to a file once the listener is bound — written to a temp file, fsynced,
//! and renamed into place, so a watcher never observes a partial write:
//! the moment the file exists, its contents are the complete address.
//! With `--pool-file`, an existing image is opened through full pmdk
//! recovery and the durable image is saved back on graceful shutdown. A
//! wire `SHUTDOWN` quiesces the server and the process exits 0.
//!
//! `--io-mode epoll` swaps the blocking thread-per-connection front end
//! for sharded epoll reactors (`--reactors N`), so thousands of idle
//! connections are held by readiness state instead of parked threads;
//! the daemon also raises `RLIMIT_NOFILE` to its hard cap in that mode.
//! `--idle-timeout-ms N` (epoll mode) closes connections quiet for N ms.
//!
//! `--shards N` runs N independent pools behind the crate's consistent
//! hash ring; with `--pool-file PATH`, shard 0 uses `PATH` and shard `i`
//! uses `PATH.shard{i}`. `--repl-to ADDR` turns this process into a
//! replicating primary: every committed batch is shipped to the backup
//! daemon at `ADDR` (which must already be listening) as `REPL_BATCH`
//! frames. `--repl-ack-mode sync` (the default) makes client acks wait
//! for the backup's `REPL_ACK`; `async` acks clients after local
//! durability only. `--repl-drop-batch N` silently drops the Nth shipped
//! batch — a fault-injection hook that exists so the failover rigs can
//! prove they detect replication holes.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use spp_bench::Args;
use spp_pm::{PmPool, PoolConfig};
use spp_pmdk::ObjPool;
use spp_server::{
    fresh_server_pool, raise_nofile_limit, GroupConfig, IoMode, KvEngine, PolicyKind, ReplAckMode,
    ReplConfig, Server, ServerConfig,
};

/// Publish `addr` atomically: temp file in the same directory, fsync, then
/// rename over the final path (rename is atomic on POSIX).
fn write_ready_file(path: &str, addr: &std::net::SocketAddr) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        writeln!(f, "{addr}")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    let addr: String = args.get("addr", "127.0.0.1".to_string());
    let port: u16 = args.get("port", 7877);
    let policy: PolicyKind = args.get("policy", PolicyKind::Spp);
    let pool_mb: u64 = args.get("pool-mb", 64);
    let lanes: usize = args.get("lanes", 16);
    let nbuckets: u64 = args.get("nbuckets", 4096);
    let shards: usize = args.get("shards", 1);
    let pool_file: String = args.get("pool-file", String::new());
    let ready_file: String = args.get("ready-file", String::new());
    let io: IoMode = args.get("io-mode", IoMode::Threads);
    let idle_timeout_ms: u64 = args.get("idle-timeout-ms", 0);
    let repl_to: String = args.get("repl-to", String::new());
    let repl_ack_mode: ReplAckMode = args.get("repl-ack-mode", ReplAckMode::Sync);
    let repl_drop_batch: u64 = args.get("repl-drop-batch", 0);
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let repl = if repl_to.is_empty() {
        None
    } else {
        let backup = repl_to
            .parse()
            .map_err(|e| format!("parse --repl-to `{repl_to}`: {e}"))?;
        Some(ReplConfig {
            backup,
            ack_mode: repl_ack_mode,
            drop_batch: (repl_drop_batch > 0).then_some(repl_drop_batch),
        })
    };
    let cfg_repl_desc = repl
        .as_ref()
        .map(|r| format!(" repl_to={} repl_ack_mode={}", r.backup, r.ack_mode));
    let cfg = ServerConfig {
        workers: args.get("workers", 4),
        max_conns: args.get("max-conns", 64),
        queue_depth: args.get("queue-depth", 128),
        group: GroupConfig {
            max_batch: args.get("group-max-batch", 64),
            max_hold: Duration::from_micros(args.get("group-hold-us", 0)),
        },
        io,
        reactors: args.get("reactors", 2),
        idle_timeout: (idle_timeout_ms > 0).then(|| Duration::from_millis(idle_timeout_ms)),
        repl,
    };
    if io == IoMode::Epoll {
        // Idle connections are cheap now; don't let the default soft
        // fd limit be the thing that caps concurrency.
        let _ = raise_nofile_limit();
    }

    // Shard i's image path: `PATH` for shard 0, `PATH.shard{i}` after —
    // so a single-shard deployment keeps its historical file name.
    let shard_file = |i: usize| -> String {
        if i == 0 {
            pool_file.clone()
        } else {
            format!("{pool_file}.shard{i}")
        }
    };
    let mut engines = Vec::with_capacity(shards);
    let mut reopened = 0usize;
    for i in 0..shards {
        let file = shard_file(i);
        let engine = if !file.is_empty() && std::path::Path::new(&file).exists() {
            // Restart path: load the saved device image and run full pmdk
            // recovery before re-attaching the engine.
            reopened += 1;
            let pm = PmPool::load_from_file(&file, PoolConfig::new(0))
                .map_err(|e| format!("load pool image `{file}`: {e}"))?;
            let pool =
                Arc::new(ObjPool::open(Arc::new(pm)).map_err(|e| format!("pool open: {e}"))?);
            KvEngine::open(pool, policy).map_err(|e| format!("shard {i} engine open: {e}"))?
        } else {
            let pool = fresh_server_pool(pool_mb << 20, lanes, false)
                .map_err(|e| format!("pool create: {e}"))?;
            KvEngine::create(pool, policy, nbuckets)
                .map_err(|e| format!("shard {i} engine create: {e}"))?
        };
        engines.push(Arc::new(engine));
    }
    let reopening = reopened > 0;

    let server = Server::start_multi(engines.clone(), (addr.as_str(), port), cfg)
        .map_err(|e| format!("bind {addr}:{port} or connect --repl-to: {e}"))?;
    println!("spp-server listening on {}", server.local_addr());
    println!(
        "spp-server policy={} io={io} shards={shards} pool_mb={pool_mb} nbuckets={nbuckets} {}{}",
        policy.label(),
        if reopening {
            "reopened=true"
        } else {
            "reopened=false"
        },
        match &cfg_repl_desc {
            Some(d) => d.as_str(),
            None => "",
        }
    );
    let _ = std::io::stdout().flush();
    if !ready_file.is_empty() {
        write_ready_file(&ready_file, &server.local_addr())
            .map_err(|e| format!("write ready file `{ready_file}`: {e}"))?;
    }

    server.wait_shutdown();
    let (batches, batched_ops) = server.group_stats();
    println!("spp-server group_commit batches={batches} ops={batched_ops}");
    if let Some(rs) = server.repl_stats() {
        println!(
            "spp-server repl shipped={} dropped={} failed={}",
            rs.shipped, rs.dropped, rs.failed
        );
    }
    server.shutdown();

    if !pool_file.is_empty() {
        for (i, engine) in engines.iter().enumerate() {
            let file = shard_file(i);
            engine
                .pool()
                .pm()
                .save_to_file(&file)
                .map_err(|e| format!("save pool image `{file}`: {e}"))?;
            println!("spp-server saved pool image to {file}");
        }
    }
    println!("spp-server shut down cleanly");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("spp-server: {msg}");
            ExitCode::from(2)
        }
    }
}
