//! The `spp-server` daemon: serve one persistent KV engine over TCP.
//!
//! ```text
//! spp-server [--addr 127.0.0.1] [--port 7877] [--policy pmdk|spp|safepm]
//!            [--pool-mb 64] [--lanes 16] [--nbuckets 4096]
//!            [--workers 4] [--max-conns 64] [--queue-depth 128]
//!            [--group-max-batch 64] [--group-hold-us 0]
//!            [--io-mode threads|epoll] [--reactors 2] [--idle-timeout-ms 0]
//!            [--pool-file PATH] [--ready-file PATH]
//! ```
//!
//! `--port 0` binds an ephemeral port; the daemon prints a
//! `spp-server listening on ADDR` line either way, which scripts (and the
//! CI smoke job) parse. `--ready-file` additionally publishes that address
//! to a file once the listener is bound — written to a temp file, fsynced,
//! and renamed into place, so a watcher never observes a partial write:
//! the moment the file exists, its contents are the complete address.
//! With `--pool-file`, an existing image is opened through full pmdk
//! recovery and the durable image is saved back on graceful shutdown. A
//! wire `SHUTDOWN` quiesces the server and the process exits 0.
//!
//! `--io-mode epoll` swaps the blocking thread-per-connection front end
//! for sharded epoll reactors (`--reactors N`), so thousands of idle
//! connections are held by readiness state instead of parked threads;
//! the daemon also raises `RLIMIT_NOFILE` to its hard cap in that mode.
//! `--idle-timeout-ms N` (epoll mode) closes connections quiet for N ms.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use spp_bench::Args;
use spp_pm::{PmPool, PoolConfig};
use spp_pmdk::ObjPool;
use spp_server::{
    fresh_server_pool, raise_nofile_limit, GroupConfig, IoMode, KvEngine, PolicyKind, Server,
    ServerConfig,
};

/// Publish `addr` atomically: temp file in the same directory, fsync, then
/// rename over the final path (rename is atomic on POSIX).
fn write_ready_file(path: &str, addr: &std::net::SocketAddr) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        writeln!(f, "{addr}")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    let addr: String = args.get("addr", "127.0.0.1".to_string());
    let port: u16 = args.get("port", 7877);
    let policy: PolicyKind = args.get("policy", PolicyKind::Spp);
    let pool_mb: u64 = args.get("pool-mb", 64);
    let lanes: usize = args.get("lanes", 16);
    let nbuckets: u64 = args.get("nbuckets", 4096);
    let pool_file: String = args.get("pool-file", String::new());
    let ready_file: String = args.get("ready-file", String::new());
    let io: IoMode = args.get("io-mode", IoMode::Threads);
    let idle_timeout_ms: u64 = args.get("idle-timeout-ms", 0);
    let cfg = ServerConfig {
        workers: args.get("workers", 4),
        max_conns: args.get("max-conns", 64),
        queue_depth: args.get("queue-depth", 128),
        group: GroupConfig {
            max_batch: args.get("group-max-batch", 64),
            max_hold: Duration::from_micros(args.get("group-hold-us", 0)),
        },
        io,
        reactors: args.get("reactors", 2),
        idle_timeout: (idle_timeout_ms > 0).then(|| Duration::from_millis(idle_timeout_ms)),
    };
    if io == IoMode::Epoll {
        // Idle connections are cheap now; don't let the default soft
        // fd limit be the thing that caps concurrency.
        let _ = raise_nofile_limit();
    }

    let reopening = !pool_file.is_empty() && std::path::Path::new(&pool_file).exists();
    let engine = if reopening {
        // Restart path: load the saved device image and run full pmdk
        // recovery before re-attaching the engine.
        let pm = PmPool::load_from_file(&pool_file, PoolConfig::new(0))
            .map_err(|e| format!("load pool image `{pool_file}`: {e}"))?;
        let pool = Arc::new(ObjPool::open(Arc::new(pm)).map_err(|e| format!("pool open: {e}"))?);
        KvEngine::open(pool, policy).map_err(|e| format!("engine open: {e}"))?
    } else {
        let pool = fresh_server_pool(pool_mb << 20, lanes, false)
            .map_err(|e| format!("pool create: {e}"))?;
        KvEngine::create(pool, policy, nbuckets).map_err(|e| format!("engine create: {e}"))?
    };
    let engine = Arc::new(engine);

    let server = Server::start(Arc::clone(&engine), (addr.as_str(), port), cfg)
        .map_err(|e| format!("bind {addr}:{port}: {e}"))?;
    println!("spp-server listening on {}", server.local_addr());
    println!(
        "spp-server policy={} io={io} pool_mb={pool_mb} nbuckets={nbuckets} {}",
        policy.label(),
        if reopening {
            "reopened=true"
        } else {
            "reopened=false"
        }
    );
    let _ = std::io::stdout().flush();
    if !ready_file.is_empty() {
        write_ready_file(&ready_file, &server.local_addr())
            .map_err(|e| format!("write ready file `{ready_file}`: {e}"))?;
    }

    server.wait_shutdown();
    let (batches, batched_ops) = server.group_stats();
    println!("spp-server group_commit batches={batches} ops={batched_ops}");
    server.shutdown();

    if !pool_file.is_empty() {
        engine
            .pool()
            .pm()
            .save_to_file(&pool_file)
            .map_err(|e| format!("save pool image `{pool_file}`: {e}"))?;
        println!("spp-server saved pool image to {pool_file}");
    }
    println!("spp-server shut down cleanly");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("spp-server: {msg}");
            ExitCode::from(2)
        }
    }
}
