//! Cross-connection group commit.
//!
//! Pipelined connections produce runs of consecutive PUT/DEL requests.
//! Instead of each worker committing its own transaction per op, writes
//! funnel through a single [`GroupCommitter`] thread that drains every
//! submission queued at that moment into **one** engine batch —
//! [`crate::engine::KvEngine::apply_write_batch`], one transaction, one
//! flush+fence boundary — and acks all submitters only after that boundary.
//!
//! Batching is piggyback-style (the PostgreSQL `commit_delay=0` shape): the
//! committer never waits for batch-mates by default, so a lone interactive
//! writer pays no added latency; under load, submissions arriving while the
//! previous batch commits pile up and ride the next boundary together. A
//! configurable `max_hold` (> 0) additionally stretches the gather window
//! for deliberately bigger batches, bounded by `max_batch` ops.
//!
//! Ack ordering is the invariant the crash tests pin down: a submitter's
//! `submit` only returns after the batch containing its ops has committed,
//! so nothing is acked ahead of its durability boundary, and a batch is
//! atomic — crash before the shared commit record and *none* of its ops
//! survive recovery; after, *all* do.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::{KvEngine, WriteOp, WriteReply};
use crate::repl::ReplSink;
use crate::server::ReplStats;

/// Group-commit tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupConfig {
    /// Target ops per batch. The committer stops gathering once a batch
    /// reaches this many ops (a single submission larger than the target
    /// is still committed whole — submissions are never split).
    pub max_batch: usize,
    /// How long the committer may hold an open batch waiting for more
    /// submissions. Zero (the default) means pure piggyback batching: no
    /// added latency, batches form only from commit-time backlog.
    pub max_hold: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            max_batch: 64,
            max_hold: Duration::ZERO,
        }
    }
}

/// A queued submission: its ops and the channel the committed replies go
/// back on.
struct Pending {
    ops: Vec<WriteOp>,
    reply: SyncSender<Vec<WriteReply>>,
}

struct Inner {
    queue: VecDeque<Pending>,
    closed: bool,
    /// Set by [`GroupCommitter::seal_repl`]: replication submissions are
    /// refused from here on (promotion fences this server's state).
    repl_sealed: bool,
}

/// Recover a lock (or condvar wait) result even if the mutex was poisoned
/// by a panicking committer thread: the `Inner` state is a plain queue +
/// flags with no invariant a panic can corrupt mid-update, and `is_closed`
/// must keep working after a committer dies or parked epoll runs would
/// never be failed over.
fn relock<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Handle to the committer thread. Cheap to share ([`Arc`] it); shut down
/// via [`GroupCommitter::close`], which drains queued submissions before
/// the thread exits.
pub struct GroupCommitter {
    state: Arc<(Mutex<Inner>, Condvar)>,
    thread: Mutex<Option<JoinHandle<()>>>,
    cfg: GroupConfig,
    batches: AtomicU64,
    batched_ops: AtomicU64,
    /// Ships each committed batch to the backup (primary side only).
    repl: Option<Arc<ReplSink>>,
}

/// Why a [`GroupCommitter::submit`] was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The committer is shut down (server stopping).
    Closed,
    /// Replication submissions are sealed (this server was promoted).
    Sealed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => write!(f, "group committer is closed"),
            SubmitError::Sealed => write!(f, "promoted: no longer accepting replication"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl GroupCommitter {
    /// Spawn the committer thread over `engine`.
    pub fn start(engine: Arc<KvEngine>, cfg: GroupConfig) -> Arc<GroupCommitter> {
        GroupCommitter::start_with_repl(engine, cfg, None)
    }

    /// Spawn the committer thread over `engine`, optionally shipping each
    /// committed batch through `repl` (the sharded server's primary side).
    pub(crate) fn start_with_repl(
        engine: Arc<KvEngine>,
        cfg: GroupConfig,
        repl: Option<Arc<ReplSink>>,
    ) -> Arc<GroupCommitter> {
        let committer = Arc::new(GroupCommitter {
            state: Arc::new((
                Mutex::new(Inner {
                    queue: VecDeque::new(),
                    closed: false,
                    repl_sealed: false,
                }),
                Condvar::new(),
            )),
            thread: Mutex::new(None),
            cfg,
            batches: AtomicU64::new(0),
            batched_ops: AtomicU64::new(0),
            repl,
        });
        let thread_self = Arc::clone(&committer);
        let handle = std::thread::Builder::new()
            .name("spp-group-commit".into())
            .spawn(move || thread_self.run(&engine))
            .expect("spawn group-commit thread");
        *committer.thread.lock().unwrap() = Some(handle);
        committer
    }

    /// Submit writes and block until the batch containing them has
    /// committed — i.e. until they are durable. Replies are index-aligned
    /// with `ops`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] once [`close`](Self::close) has run; the
    /// writes were not applied.
    pub fn submit(&self, ops: Vec<WriteOp>) -> Result<Vec<WriteReply>, SubmitError> {
        self.submit_inner(ops, false)
    }

    /// [`submit`](Self::submit) for replicated batches arriving from a
    /// primary: additionally refused with [`SubmitError::Sealed`] once
    /// [`seal_repl`](Self::seal_repl) has run. The seal is checked under
    /// the same lock that enqueues, so no replication batch can slip in
    /// after a promotion's seal+drain.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] or [`SubmitError::Sealed`]; the writes were
    /// not applied.
    pub(crate) fn submit_repl(&self, ops: Vec<WriteOp>) -> Result<Vec<WriteReply>, SubmitError> {
        self.submit_inner(ops, true)
    }

    fn submit_inner(&self, ops: Vec<WriteOp>, repl: bool) -> Result<Vec<WriteReply>, SubmitError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let (tx, rx) = sync_channel(1);
        {
            let (lock, cv) = &*self.state;
            let mut g = relock(lock.lock());
            if g.closed {
                return Err(SubmitError::Closed);
            }
            if repl && g.repl_sealed {
                return Err(SubmitError::Sealed);
            }
            g.queue.push_back(Pending { ops, reply: tx });
            cv.notify_one();
        }
        // The committer drains the queue before exiting (even on a panic,
        // via its exit guard the senders are dropped), so a recv error
        // means it died without serving us.
        rx.recv().map_err(|_| SubmitError::Closed)
    }

    /// Refuse all future [`submit_repl`](Self::submit_repl) calls. Part of
    /// the promotion fence: seal, then [`barrier`](Self::barrier), then
    /// fence — anything replicated that beat the seal commits before the
    /// barrier returns.
    pub(crate) fn seal_repl(&self) {
        let (lock, cv) = &*self.state;
        let mut g = relock(lock.lock());
        g.repl_sealed = true;
        cv.notify_all();
    }

    /// Block until every submission enqueued before this call has been
    /// served (or the committer is closed/dead). Implemented as an empty
    /// sentinel submission: the committer answers it in arrival order.
    pub(crate) fn barrier(&self) {
        let (tx, rx) = sync_channel(1);
        {
            let (lock, cv) = &*self.state;
            let mut g = relock(lock.lock());
            if g.closed {
                return;
            }
            g.queue.push_back(Pending {
                ops: Vec::new(),
                reply: tx,
            });
            cv.notify_one();
        }
        let _ = rx.recv();
    }

    /// (batches committed, ops committed through batches) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.batches.load(Ordering::Relaxed),
            self.batched_ops.load(Ordering::Relaxed),
        )
    }

    /// Replication counters, when this committer ships to a backup.
    pub(crate) fn repl_stats(&self) -> Option<ReplStats> {
        self.repl.as_ref().map(|r| r.stats())
    }

    /// Sever this committer's replication stream (failover-rig hook).
    pub(crate) fn cut_replication(&self) {
        if let Some(r) = &self.repl {
            r.cut();
        }
    }

    /// Whether the committer can no longer serve submissions — because
    /// [`close`](Self::close) ran, or because the committer thread died
    /// (its exit guard flips the flag even on a panic). Either way a run
    /// parked on a full queue can never be served and must fail cleanly.
    pub fn is_closed(&self) -> bool {
        relock(self.state.0.lock()).closed
    }

    /// Stop the committer: reject new submissions, drain what is queued,
    /// and join the thread. Idempotent.
    pub fn close(&self) {
        {
            let (lock, cv) = &*self.state;
            let mut g = relock(lock.lock());
            g.closed = true;
            cv.notify_all();
        }
        if let Some(handle) = relock(self.thread.lock()).take() {
            let _ = handle.join();
        }
    }

    fn run(&self, engine: &KvEngine) {
        // If this thread exits for ANY reason — including a panic in the
        // engine or replication path — the committer must read as closed
        // and queued submitters must be released (dropping their reply
        // senders errors them out). Without this, a dead committer would
        // leave is_closed() false and wedge parked epoll runs forever.
        struct CloseOnExit<'a>(&'a GroupCommitter);
        impl Drop for CloseOnExit<'_> {
            fn drop(&mut self) {
                let (lock, cv) = &*self.0.state;
                let mut g = relock(lock.lock());
                g.closed = true;
                g.queue.clear();
                cv.notify_all();
            }
        }
        let _close_guard = CloseOnExit(self);
        loop {
            let batch = match self.gather() {
                Some(batch) => batch,
                None => return, // closed and drained
            };
            let total: usize = batch.iter().map(|p| p.ops.len()).sum();
            // One engine batch covering every submission gathered: one
            // transaction, one shared durability boundary.
            let mut all_ops = Vec::with_capacity(total);
            for p in &batch {
                all_ops.extend(p.ops.iter().cloned());
            }
            let mut replies = engine.apply_write_batch(&all_ops);
            if total > 0 {
                self.batches.fetch_add(1, Ordering::Relaxed);
                self.batched_ops.fetch_add(total as u64, Ordering::Relaxed);
            }
            // Replication rides between the local boundary and the client
            // acks. Only ops the engine accepted are shipped — a locally
            // rejected op (bad key) must not reach the backup, where it
            // would diverge the streams or be unframeable. Sync mode ships
            // first and fails the whole batch's acks if the backup did not
            // confirm — a client never sees OK for a write that is not
            // durable on both sides. Async mode acks first and ships after
            // (below), trading that guarantee away.
            let to_ship: Vec<WriteOp> = if self.repl.is_some() {
                all_ops
                    .iter()
                    .zip(&replies)
                    .filter(|(_, r)| !matches!(r, WriteReply::Err(_)))
                    .map(|(op, _)| op.clone())
                    .collect()
            } else {
                Vec::new()
            };
            let mut ship_async = false;
            if let Some(repl) = &self.repl {
                if repl.is_sync() {
                    if let Err(msg) = repl.ship(&to_ship) {
                        // Locally applied but not replicated: refuse the
                        // ack so the write is never counted as durable.
                        for r in &mut replies {
                            *r = WriteReply::Err(format!("not replicated: {msg}"));
                        }
                    }
                } else {
                    ship_async = true;
                }
            }
            // Ack only now, after the boundary. A submitter that hung up
            // (connection died) is skipped harmlessly.
            let mut replies = replies.into_iter();
            for p in batch {
                let share: Vec<WriteReply> = replies.by_ref().take(p.ops.len()).collect();
                let _ = p.reply.send(share);
            }
            if ship_async {
                if let Some(repl) = &self.repl {
                    // Best effort: the clients were already acked on local
                    // durability alone.
                    let _ = repl.ship(&to_ship);
                }
            }
        }
    }

    /// Block for the next batch: at least one submission, then everything
    /// already queued (and, with `max_hold > 0`, whatever else arrives
    /// inside the hold window) up to `max_batch` ops. `None` means closed
    /// and fully drained.
    fn gather(&self) -> Option<Vec<Pending>> {
        let (lock, cv) = &*self.state;
        let mut g = relock(lock.lock());
        // Wait for the first submission.
        loop {
            if let Some(p) = g.queue.pop_front() {
                let mut nops = p.ops.len();
                let mut batch = vec![p];
                // Greedy drain of the existing backlog.
                while nops < self.cfg.max_batch {
                    match g.queue.pop_front() {
                        Some(p) => {
                            nops += p.ops.len();
                            batch.push(p);
                        }
                        None => break,
                    }
                }
                // Optional hold window to let more submissions arrive.
                if self.cfg.max_hold > Duration::ZERO {
                    let deadline = Instant::now() + self.cfg.max_hold;
                    while nops < self.cfg.max_batch && !g.closed {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        let (g2, timeout) = relock(cv.wait_timeout(g, deadline - now));
                        g = g2;
                        while nops < self.cfg.max_batch {
                            match g.queue.pop_front() {
                                Some(p) => {
                                    nops += p.ops.len();
                                    batch.push(p);
                                }
                                None => break,
                            }
                        }
                        if timeout.timed_out() {
                            break;
                        }
                    }
                }
                return Some(batch);
            }
            if g.closed {
                return None;
            }
            g = relock(cv.wait(g));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{fresh_server_pool, KvEngine, PolicyKind};
    use spp_kvstore::KEY_SIZE;

    fn key(i: u64) -> Vec<u8> {
        let mut k = vec![0u8; KEY_SIZE];
        k[..8].copy_from_slice(&i.to_be_bytes());
        k
    }

    fn engine() -> Arc<KvEngine> {
        let pool = fresh_server_pool(16 << 20, 4, false).unwrap();
        Arc::new(KvEngine::create(pool, PolicyKind::Spp, 64).unwrap())
    }

    #[test]
    fn submit_applies_and_acks() {
        let engine = engine();
        let gc = GroupCommitter::start(Arc::clone(&engine), GroupConfig::default());
        let replies = gc
            .submit(vec![
                WriteOp::Put {
                    key: key(1),
                    value: b"gc-1".to_vec(),
                },
                WriteOp::Del { key: key(2) },
            ])
            .unwrap();
        assert_eq!(replies, vec![WriteReply::Ok, WriteReply::NotFound]);
        let mut out = Vec::new();
        assert!(engine.get(&key(1), &mut out).unwrap());
        assert_eq!(out, b"gc-1");
        gc.close();
    }

    #[test]
    fn concurrent_submitters_coalesce_into_fewer_batches() {
        let engine = engine();
        // A hold window forces submissions from many threads to ride
        // shared boundaries.
        let gc = GroupCommitter::start(
            Arc::clone(&engine),
            GroupConfig {
                max_batch: 256,
                max_hold: Duration::from_millis(5),
            },
        );
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let gc = &gc;
                s.spawn(move || {
                    for i in 0..20u64 {
                        let replies = gc
                            .submit(vec![WriteOp::Put {
                                key: key(t * 1000 + i),
                                value: vec![t as u8; 32],
                            }])
                            .unwrap();
                        assert_eq!(replies, vec![WriteReply::Ok]);
                    }
                });
            }
        });
        let (batches, ops) = gc.stats();
        assert_eq!(ops, 160);
        assert!(
            batches < 160,
            "8 concurrent submitters never shared a boundary ({batches} batches)"
        );
        assert_eq!(engine.count().unwrap(), 160);
        gc.close();
    }

    #[test]
    fn close_rejects_new_and_drains_queued() {
        let engine = engine();
        let gc = GroupCommitter::start(Arc::clone(&engine), GroupConfig::default());
        gc.close();
        let err = gc
            .submit(vec![WriteOp::Put {
                key: key(1),
                value: b"late".to_vec(),
            }])
            .unwrap_err();
        assert_eq!(err, SubmitError::Closed);
        assert_eq!(engine.count().unwrap(), 0);
        // Idempotent.
        gc.close();
    }

    #[test]
    fn empty_submit_is_a_noop() {
        let gc = GroupCommitter::start(engine(), GroupConfig::default());
        assert_eq!(gc.submit(Vec::new()).unwrap(), Vec::new());
        gc.close();
    }

    #[test]
    fn seal_rejects_replication_but_not_clients() {
        let engine = engine();
        let gc = GroupCommitter::start(Arc::clone(&engine), GroupConfig::default());
        let replies = gc
            .submit_repl(vec![WriteOp::Put {
                key: key(1),
                value: b"before-seal".to_vec(),
            }])
            .unwrap();
        assert_eq!(replies, vec![WriteReply::Ok]);

        gc.seal_repl();
        let err = gc
            .submit_repl(vec![WriteOp::Put {
                key: key(2),
                value: b"after-seal".to_vec(),
            }])
            .unwrap_err();
        assert_eq!(err, SubmitError::Sealed);

        // The barrier drains cleanly and ordinary client writes still flow.
        gc.barrier();
        let replies = gc
            .submit(vec![WriteOp::Put {
                key: key(3),
                value: b"client".to_vec(),
            }])
            .unwrap();
        assert_eq!(replies, vec![WriteReply::Ok]);
        assert_eq!(engine.count().unwrap(), 2);
        gc.close();
        // Post-close, the barrier is a no-op rather than a hang.
        gc.barrier();
    }
}
