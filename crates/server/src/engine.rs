//! Policy selection and the engine the server serves.
//!
//! [`KvEngine`] wraps one [`spp_kvstore::KvStore`] instantiated under one
//! of the three benchmark policies (`--policy pmdk|spp|safepm`), so
//! end-to-end safety overhead is measurable over the wire. The engine owns
//! the durable attachment protocol: on [`KvEngine::create`] the store's
//! meta oid is published into the pool root, and [`KvEngine::open`] (the
//! restart / post-crash path) reads it back after full pmdk recovery.

use std::sync::Arc;

use spp_core::{MemoryPolicy, PmdkPolicy, Result, SppError, SppPolicy, TagConfig};
use spp_kvstore::{BatchOp, BatchOutcome, KvStats, KvStore, KEY_SIZE};
use spp_pm::{Mode, PmPool, PoolConfig};
use spp_pmdk::{ObjPool, OidDest, PoolOpts};
use spp_safepm::SafePmPolicy;

/// Bytes reserved in the pool root for the engine meta oid (the widest
/// encoding, SPP's 24-byte oid, plus slack).
const ROOT_SIZE: u64 = 32;

/// The three servable memory-safety policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Native PMDK (no safety mechanism).
    Pmdk,
    /// Safe persistent pointers (tagged oids, overflow bit).
    Spp,
    /// SafePM persistent shadow memory.
    SafePm,
}

impl PolicyKind {
    /// All policies, baseline first.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Pmdk, PolicyKind::Spp, PolicyKind::SafePm];

    /// CLI / results label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Pmdk => "pmdk",
            PolicyKind::Spp => "spp",
            PolicyKind::SafePm => "safepm",
        }
    }

    /// Parse a `--policy` value.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s.to_ascii_lowercase().as_str() {
            "pmdk" => Some(PolicyKind::Pmdk),
            "spp" => Some(PolicyKind::Spp),
            "safepm" => Some(PolicyKind::SafePm),
            _ => None,
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        PolicyKind::parse(s).ok_or_else(|| format!("unknown policy `{s}` (pmdk|spp|safepm)"))
    }
}

/// Create a fresh simulated device + object pool for the server.
///
/// `tracked` selects [`Mode::Tracked`] (crash-injection test rigs) over the
/// default [`Mode::Fast`] (benchmarks / serving).
pub fn fresh_server_pool(bytes: u64, lanes: usize, tracked: bool) -> Result<Arc<ObjPool>> {
    let mode = if tracked { Mode::Tracked } else { Mode::Fast };
    let pm = Arc::new(PmPool::new(
        PoolConfig::new(bytes).mode(mode).record_stats(false),
    ));
    Ok(Arc::new(ObjPool::create(pm, PoolOpts::new().lanes(lanes))?))
}

/// Create a server pool whose flushes pay an *overlappable* wall-clock
/// device wait ([`spp_pm::LatencyModel::device_wait`]) — the substrate for
/// the load generator's thread sweep, where N connections must overlap
/// their durability stalls the way N cores do on real PM. Latency starts
/// disabled so engine setup runs at DRAM speed; call
/// `pool.pm().set_latency_enabled(true)` around the measured region.
pub fn fresh_server_pool_wait(
    bytes: u64,
    lanes: usize,
    flush_wait_ns: u32,
) -> Result<Arc<ObjPool>> {
    let pm = Arc::new(PmPool::new(
        PoolConfig::new(bytes)
            .record_stats(false)
            .latency(spp_pm::LatencyModel::device_wait(0, flush_wait_ns)),
    ));
    pm.set_latency_enabled(false);
    Ok(Arc::new(ObjPool::create(pm, PoolOpts::new().lanes(lanes))?))
}

/// One mutation in a group-committed write batch (owned — batches cross
/// thread boundaries on their way to the committer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert or update.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Remove a key.
    Del {
        /// The key.
        key: Vec<u8>,
    },
}

impl WriteOp {
    /// The key this op touches.
    pub fn key(&self) -> &[u8] {
        match self {
            WriteOp::Put { key, .. } | WriteOp::Del { key } => key,
        }
    }
}

/// Per-op result of [`KvEngine::apply_write_batch`], index-aligned with
/// the submitted ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteReply {
    /// Applied: a put, or a delete that removed an existing key.
    Ok,
    /// Delete found nothing.
    NotFound,
    /// The op failed (bad key, engine error); the rest of the batch is
    /// unaffected — failed-validation ops are excluded before staging and
    /// engine errors fall back to per-op transactions.
    Err(String),
}

/// The KV store under one concrete policy. Dispatch is a three-way match —
/// the policies are statically known and `KvStore` is generic, so no trait
/// object can cover all three without erasing the policy surface.
pub enum KvEngine {
    /// Native PMDK.
    Pmdk(KvStore<PmdkPolicy>),
    /// Safe persistent pointers.
    Spp(KvStore<SppPolicy>),
    /// SafePM shadow memory.
    SafePm(KvStore<SafePmPolicy>),
}

macro_rules! dispatch {
    ($self:expr, $kv:ident => $body:expr) => {
        match $self {
            KvEngine::Pmdk($kv) => $body,
            KvEngine::Spp($kv) => $body,
            KvEngine::SafePm($kv) => $body,
        }
    };
}

impl KvEngine {
    /// Build a fresh engine over `pool` with `nbuckets` hash buckets and
    /// publish its meta oid in the pool root so [`KvEngine::open`] can
    /// re-attach after a restart.
    ///
    /// # Errors
    ///
    /// Policy construction or allocation errors.
    pub fn create(pool: Arc<ObjPool>, kind: PolicyKind, nbuckets: u64) -> Result<KvEngine> {
        let root = pool.root(ROOT_SIZE)?;
        let engine = match kind {
            PolicyKind::Pmdk => {
                let policy = Arc::new(PmdkPolicy::new(Arc::clone(&pool)));
                KvEngine::Pmdk(KvStore::create(policy, nbuckets)?)
            }
            PolicyKind::Spp => {
                let policy = Arc::new(SppPolicy::new(Arc::clone(&pool), TagConfig::default())?);
                KvEngine::Spp(KvStore::create(policy, nbuckets)?)
            }
            PolicyKind::SafePm => {
                let policy = Arc::new(SafePmPolicy::create(Arc::clone(&pool))?);
                KvEngine::SafePm(KvStore::create(policy, nbuckets)?)
            }
        };
        let (meta, oid_kind) = dispatch!(&engine, kv => (kv.meta(), kv.policy().oid_kind()));
        pool.publish_oid(
            OidDest {
                off: root.off,
                kind: oid_kind,
            },
            meta,
        )?;
        Ok(engine)
    }

    /// Re-attach to an engine created earlier in this pool — the restart /
    /// post-crash path, entered after `ObjPool::open` has already run full
    /// pmdk recovery on the device.
    ///
    /// # Errors
    ///
    /// A [`SppError::Pmdk`] bad-pool error when no engine meta was ever
    /// published; policy reopen errors.
    pub fn open(pool: Arc<ObjPool>, kind: PolicyKind) -> Result<KvEngine> {
        let root = pool.root(ROOT_SIZE)?;
        let bad = || {
            SppError::Pmdk(spp_pmdk::PmdkError::BadPool(
                "pool root holds no kv engine meta oid".into(),
            ))
        };
        match kind {
            PolicyKind::Pmdk => {
                let policy = Arc::new(PmdkPolicy::new(Arc::clone(&pool)));
                let meta = pool.oid_read(root.off, policy.oid_kind())?;
                if meta.is_null() {
                    return Err(bad());
                }
                Ok(KvEngine::Pmdk(KvStore::open(policy, meta)?))
            }
            PolicyKind::Spp => {
                let policy = Arc::new(SppPolicy::new(Arc::clone(&pool), TagConfig::default())?);
                let meta = pool.oid_read(root.off, policy.oid_kind())?;
                if meta.is_null() {
                    return Err(bad());
                }
                Ok(KvEngine::Spp(KvStore::open(policy, meta)?))
            }
            PolicyKind::SafePm => {
                let policy = Arc::new(SafePmPolicy::open(Arc::clone(&pool))?);
                let meta = pool.oid_read(root.off, policy.oid_kind())?;
                if meta.is_null() {
                    return Err(bad());
                }
                Ok(KvEngine::SafePm(KvStore::open(policy, meta)?))
            }
        }
    }

    /// The policy this engine runs under.
    pub fn kind(&self) -> PolicyKind {
        match self {
            KvEngine::Pmdk(_) => PolicyKind::Pmdk,
            KvEngine::Spp(_) => PolicyKind::Spp,
            KvEngine::SafePm(_) => PolicyKind::SafePm,
        }
    }

    /// The underlying object pool.
    pub fn pool(&self) -> &Arc<ObjPool> {
        dispatch!(self, kv => kv.policy().pool())
    }

    /// Insert or update; durable (flushed + fenced) when this returns.
    ///
    /// # Errors
    ///
    /// Engine errors, including a non-[`KEY_SIZE`] key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        check_key(key)?;
        dispatch!(self, kv => kv.put(key, value))
    }

    /// Look up `key`, appending the value to `out`.
    ///
    /// # Errors
    ///
    /// Engine errors, including a non-[`KEY_SIZE`] key.
    pub fn get(&self, key: &[u8], out: &mut Vec<u8>) -> Result<bool> {
        check_key(key)?;
        dispatch!(self, kv => kv.get(key, out))
    }

    /// Remove `key`; durable when this returns.
    ///
    /// # Errors
    ///
    /// Engine errors, including a non-[`KEY_SIZE`] key.
    pub fn remove(&self, key: &[u8]) -> Result<bool> {
        check_key(key)?;
        dispatch!(self, kv => kv.remove(key))
    }

    /// Entry count (full scan).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn count(&self) -> Result<u64> {
        dispatch!(self, kv => kv.count())
    }

    /// Introspection snapshot.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn stats(&self) -> Result<KvStats> {
        dispatch!(self, kv => kv.stats())
    }

    /// Visit every entry (the scan primitive, re-exported at the service
    /// layer for verification tooling).
    ///
    /// # Errors
    ///
    /// Device errors or the first callback error.
    pub fn for_each(&self, f: impl FnMut(&[u8; KEY_SIZE], &[u8]) -> Result<()>) -> Result<u64> {
        dispatch!(self, kv => kv.for_each(f))
    }

    /// Apply a batch of writes through the group-commit path: every op
    /// with a valid key is staged into **one** engine transaction and made
    /// durable by **one** flush+fence boundary ([`KvStore::apply_batch`]).
    /// Replies are index-aligned with `ops`.
    ///
    /// Failure containment: ops with invalid keys get [`WriteReply::Err`]
    /// and are excluded before staging. If the batched transaction itself
    /// fails (e.g. the shared undo log overflows on an oversized batch),
    /// nothing was applied and every op is retried in its own per-op
    /// transaction — batching is a throughput optimisation, never a
    /// correctness cliff.
    pub fn apply_write_batch(&self, ops: &[WriteOp]) -> Vec<WriteReply> {
        let mut replies = vec![WriteReply::Ok; ops.len()];
        let mut valid: Vec<usize> = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            match check_key(op.key()) {
                Ok(()) => valid.push(i),
                Err(e) => replies[i] = WriteReply::Err(e.to_string()),
            }
        }
        if valid.is_empty() {
            return replies;
        }
        let batch: Vec<BatchOp<'_>> = valid
            .iter()
            .map(|&i| match &ops[i] {
                WriteOp::Put { key, value } => BatchOp::Put { key, value },
                WriteOp::Del { key } => BatchOp::Del { key },
            })
            .collect();
        match dispatch!(self, kv => kv.apply_batch(&batch)) {
            Ok(outcomes) => {
                for (&i, outcome) in valid.iter().zip(&outcomes) {
                    replies[i] = match outcome {
                        BatchOutcome::Put | BatchOutcome::Removed => WriteReply::Ok,
                        BatchOutcome::Missed => WriteReply::NotFound,
                    };
                }
            }
            Err(_) => {
                // Rolled back in full; apply each op individually.
                for &i in &valid {
                    replies[i] = match &ops[i] {
                        WriteOp::Put { key, value } => match self.put(key, value) {
                            Ok(()) => WriteReply::Ok,
                            Err(e) => WriteReply::Err(e.to_string()),
                        },
                        WriteOp::Del { key } => match self.remove(key) {
                            Ok(true) => WriteReply::Ok,
                            Ok(false) => WriteReply::NotFound,
                            Err(e) => WriteReply::Err(e.to_string()),
                        },
                    };
                }
            }
        }
        replies
    }

    /// Drain outstanding device writes: a pool-level fence. Acked writes
    /// are already durable; this exists for clients that want an explicit
    /// global barrier.
    pub fn fence(&self) {
        self.pool().pm().fence();
    }

    /// Render the STATS response body: UTF-8 `key=value` lines.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn render_stats(&self) -> Result<String> {
        let s = self.stats()?;
        let occupied_stripes = s.stripe_occupancy.iter().filter(|&&n| n > 0).count();
        let max_stripe = s.stripe_occupancy.iter().copied().max().unwrap_or(0);
        Ok(format!(
            "policy={}\nkeys={}\nresident_bytes={}\nnbuckets={}\nnonempty_buckets={}\n\
             max_chain={}\noccupied_stripes={}\nmax_stripe_occupancy={}\npool_bytes={}\n",
            self.kind().label(),
            s.keys,
            s.resident_bytes,
            s.nbuckets,
            s.nonempty_buckets,
            s.max_chain,
            occupied_stripes,
            max_stripe,
            self.pool().pm().size(),
        ))
    }
}

fn check_key(key: &[u8]) -> Result<()> {
    // KvStore asserts on key length; a network service must reject, not
    // abort, so validate here and surface a typed error.
    if key.len() == KEY_SIZE {
        Ok(())
    } else {
        Err(SppError::Pmdk(spp_pmdk::PmdkError::BadPool(format!(
            "key must be exactly {KEY_SIZE} bytes, got {}",
            key.len()
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_pm::CrashSpec;

    fn key(i: u64) -> [u8; KEY_SIZE] {
        let mut k = [0u8; KEY_SIZE];
        k[..8].copy_from_slice(&i.to_be_bytes());
        k
    }

    #[test]
    fn create_roundtrip_under_all_policies() {
        for kind in PolicyKind::ALL {
            let pool = fresh_server_pool(8 << 20, 4, false).unwrap();
            let engine = KvEngine::create(pool, kind, 64).unwrap();
            assert_eq!(engine.kind(), kind);
            engine.put(&key(1), b"v1").unwrap();
            let mut out = Vec::new();
            assert!(engine.get(&key(1), &mut out).unwrap());
            assert_eq!(out, b"v1");
            assert!(engine.remove(&key(1)).unwrap());
            assert!(!engine.remove(&key(1)).unwrap());
            let stats = engine.render_stats().unwrap();
            assert!(
                stats.contains(&format!("policy={}", kind.label())),
                "{stats}"
            );
        }
    }

    #[test]
    fn bad_key_length_is_an_error_not_a_panic() {
        let pool = fresh_server_pool(4 << 20, 2, false).unwrap();
        let engine = KvEngine::create(pool, PolicyKind::Spp, 16).unwrap();
        assert!(engine.put(b"short", b"v").is_err());
        assert!(engine.get(b"", &mut Vec::new()).is_err());
        assert!(engine.remove(&[0; 64]).is_err());
    }

    #[test]
    fn write_batch_mixed_outcomes_under_all_policies() {
        for kind in PolicyKind::ALL {
            let pool = fresh_server_pool(16 << 20, 4, false).unwrap();
            let engine = KvEngine::create(pool, kind, 64).unwrap();
            engine.put(&key(50), b"old").unwrap();
            let ops = vec![
                WriteOp::Put {
                    key: key(1).to_vec(),
                    value: b"batch-1".to_vec(),
                },
                WriteOp::Del {
                    key: key(50).to_vec(),
                },
                WriteOp::Del {
                    key: key(99).to_vec(),
                },
                WriteOp::Put {
                    key: b"short".to_vec(), // invalid key
                    value: b"x".to_vec(),
                },
                WriteOp::Put {
                    key: key(2).to_vec(),
                    value: b"batch-2".to_vec(),
                },
            ];
            let replies = engine.apply_write_batch(&ops);
            assert_eq!(replies[0], WriteReply::Ok, "{kind:?}");
            assert_eq!(replies[1], WriteReply::Ok);
            assert_eq!(replies[2], WriteReply::NotFound);
            assert!(matches!(replies[3], WriteReply::Err(_)));
            assert_eq!(replies[4], WriteReply::Ok);
            let mut out = Vec::new();
            assert!(engine.get(&key(1), &mut out).unwrap());
            assert_eq!(out, b"batch-1");
            assert!(!engine.get(&key(50), &mut Vec::new()).unwrap());
            assert_eq!(engine.count().unwrap(), 2);
        }
    }

    #[test]
    fn oversized_write_batch_falls_back_to_per_op() {
        // Build an engine over a pool with a tiny undo log, so the merged
        // batch transaction overflows and the per-op fallback kicks in —
        // every op must still land.
        let pm = Arc::new(PmPool::new(PoolConfig::new(32 << 20)));
        let pool =
            Arc::new(ObjPool::create(pm, PoolOpts::new().lanes(4).undo_capacity(2048)).unwrap());
        let engine = KvEngine::create(pool, PolicyKind::Spp, 256).unwrap();
        let ops: Vec<WriteOp> = (0..400u64)
            .map(|i| WriteOp::Put {
                key: key(i).to_vec(),
                value: format!("fallback-{i}").into_bytes(),
            })
            .collect();
        let replies = engine.apply_write_batch(&ops);
        assert!(replies.iter().all(|r| *r == WriteReply::Ok));
        assert_eq!(engine.count().unwrap(), 400);
        let mut out = Vec::new();
        assert!(engine.get(&key(399), &mut out).unwrap());
        assert_eq!(out, b"fallback-399");
    }

    #[test]
    fn open_reattaches_after_clean_image_reload() {
        for kind in PolicyKind::ALL {
            let pool = fresh_server_pool(8 << 20, 4, false).unwrap();
            let engine = KvEngine::create(Arc::clone(&pool), kind, 64).unwrap();
            for i in 0..20u64 {
                engine.put(&key(i), format!("val-{i}").as_bytes()).unwrap();
            }
            let img = pool.pm().crash_image(CrashSpec::KeepAll);
            drop(engine);
            let pm2 = Arc::new(PmPool::from_image(img, PoolConfig::new(0)));
            let pool2 = Arc::new(ObjPool::open(pm2).unwrap());
            let engine2 = KvEngine::open(pool2, kind).unwrap();
            assert_eq!(engine2.count().unwrap(), 20);
            let mut out = Vec::new();
            assert!(engine2.get(&key(7), &mut out).unwrap());
            assert_eq!(out, b"val-7");
        }
    }

    #[test]
    fn open_fresh_pool_reports_missing_meta() {
        let pool = fresh_server_pool(4 << 20, 2, false).unwrap();
        assert!(KvEngine::open(pool, PolicyKind::Pmdk).is_err());
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(PolicyKind::parse("SPP"), Some(PolicyKind::Spp));
        assert_eq!(PolicyKind::parse("pmdk"), Some(PolicyKind::Pmdk));
        assert_eq!(PolicyKind::parse("safepm"), Some(PolicyKind::SafePm));
        assert_eq!(PolicyKind::parse("redis"), None);
        assert_eq!("spp".parse::<PolicyKind>().unwrap(), PolicyKind::Spp);
    }
}
