//! Property tests for the consistent-hash ring that routes keys to
//! shards.
//!
//! Two load-bearing claims: placement is *balanced* (no shard starves or
//! drowns, within the tolerance 64 virtual nodes buy), and resizing is
//! *minimal* (growing from N to N+1 shards moves keys only onto the new
//! shard, and only about a 1/(N+1) fraction of them — equivalently,
//! removing the last shard scatters only that shard's keys). Clients
//! mirror this ring to pick endpoints, so these properties bound both
//! server skew and the rehash traffic a topology change causes.

use proptest::prelude::*;
use spp_server::Ring;

/// Distinct, well-spread 16-byte keys derived from a seed — proptest
/// drives the seed, the multiplier spreads the sequence.
fn keys(seed: u64, n: usize) -> Vec<[u8; 16]> {
    (0..n as u64)
        .map(|i| {
            let x = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut k = [0u8; 16];
            k[..8].copy_from_slice(&x.to_le_bytes());
            k[8..].copy_from_slice(&x.rotate_left(31).to_le_bytes());
            k
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every shard owns a share of random keys within a constant factor
    /// of the fair share — the skew the loadgen reports stays bounded.
    #[test]
    fn placement_is_balanced_within_tolerance(
        seed in any::<u64>(),
        shards in 2u32..=8,
    ) {
        const N: usize = 2000;
        let ring = Ring::new(shards);
        let mut counts = vec![0usize; shards as usize];
        for k in keys(seed, N) {
            counts[ring.shard_of(&k) as usize] += 1;
        }
        let mean = N as f64 / shards as f64;
        for (s, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) > mean * 0.35 && (c as f64) < mean * 2.2,
                "shard {} owns {} of {} keys (mean {:.0}): {:?}",
                s, c, N, mean, counts
            );
        }
    }

    /// Growing the ring by one shard is a *minimal* remap: a key either
    /// keeps its owner or moves to the new shard — never between old
    /// shards — and the moved fraction is close to the fair 1/(N+1).
    /// Read right-to-left, the same walk proves shard removal only
    /// scatters the removed shard's keys.
    #[test]
    fn adding_a_shard_remaps_only_a_fair_fraction_onto_it(
        seed in any::<u64>(),
        shards in 1u32..=7,
    ) {
        const N: usize = 2000;
        let old = Ring::new(shards);
        let new = Ring::new(shards + 1);
        let mut moved = 0usize;
        for k in keys(seed, N) {
            let (a, b) = (old.shard_of(&k), new.shard_of(&k));
            if a != b {
                prop_assert_eq!(
                    b, shards,
                    "key moved between surviving shards ({} -> {})", a, b
                );
                moved += 1;
            }
        }
        let fair = N as f64 / (shards + 1) as f64;
        prop_assert!(moved > 0, "new shard received nothing");
        prop_assert!(
            (moved as f64) < fair * 2.5,
            "{} of {} keys moved; fair share is {:.0}",
            moved, N, fair
        );
    }

    /// The ring is pure state: two independently built rings of the same
    /// size agree on every key — the property that lets clients mirror
    /// server-side routing without any metadata exchange.
    #[test]
    fn independent_rings_agree(seed in any::<u64>(), shards in 1u32..=8) {
        let a = Ring::new(shards);
        let b = Ring::new(shards);
        for k in keys(seed, 256) {
            prop_assert_eq!(a.shard_of(&k), b.shard_of(&k));
        }
    }
}
