//! End-to-end service tests over real sockets: every policy, malformed
//! frames, connection-limit backpressure, and graceful shutdown.

use std::sync::Arc;
use std::time::Duration;

use spp_server::{
    fresh_server_pool, Client, ClientError, KvEngine, PolicyKind, RespKind, Server, ServerConfig,
};

fn key(i: u64) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&i.to_be_bytes());
    k
}

fn start(kind: PolicyKind, cfg: ServerConfig) -> Server {
    let pool = fresh_server_pool(16 << 20, 4, false).unwrap();
    let engine = Arc::new(KvEngine::create(pool, kind, 256).unwrap());
    Server::start(engine, ("127.0.0.1", 0), cfg).unwrap()
}

fn connect(server: &Server) -> Client {
    Client::connect_retry(server.local_addr(), Duration::from_secs(5)).unwrap()
}

#[test]
fn full_roundtrip_under_every_policy() {
    for kind in PolicyKind::ALL {
        let server = start(kind, ServerConfig::default());
        let mut c = connect(&server);
        c.ping().unwrap();
        for i in 0..50u64 {
            c.put(&key(i), format!("value-{i}").as_bytes()).unwrap();
        }
        let mut out = Vec::new();
        assert!(c.get(&key(17), &mut out).unwrap());
        assert_eq!(out, b"value-17");
        out.clear();
        assert!(!c.get(&key(999), &mut out).unwrap());
        assert!(c.del(&key(17)).unwrap());
        assert!(!c.del(&key(17)).unwrap());
        out.clear();
        assert!(!c.get(&key(17), &mut out).unwrap());
        c.flush().unwrap();
        let stats = c.stats().unwrap();
        assert!(
            stats.contains(&format!("policy={}", kind.label())),
            "{stats}"
        );
        assert!(stats.contains("keys=49"), "{stats}");
        c.shutdown().unwrap();
        server.shutdown();
    }
}

#[test]
fn values_cross_policy_engines_identically() {
    // The same byte-for-byte workload must be observable under all three
    // policies — the service layer adds no policy-dependent behaviour.
    let mut images: Vec<String> = Vec::new();
    for kind in PolicyKind::ALL {
        let server = start(kind, ServerConfig::default());
        let mut c = connect(&server);
        for i in 0..20u64 {
            c.put(&key(i), &i.to_le_bytes()).unwrap();
        }
        let mut dump: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        server
            .engine()
            .for_each(|k, v| {
                dump.push((k.to_vec(), v.to_vec()));
                Ok(())
            })
            .unwrap();
        dump.sort();
        images.push(format!("{dump:?}"));
        server.shutdown();
    }
    assert_eq!(images[0], images[1]);
    assert_eq!(images[1], images[2]);
}

#[test]
fn malformed_body_gets_err_and_stream_resyncs() {
    let server = start(PolicyKind::Spp, ServerConfig::default());
    let mut c = connect(&server);

    // Unknown opcode: ERR, connection stays usable.
    c.send_raw(&{
        let mut b = 3u32.to_le_bytes().to_vec();
        b.extend_from_slice(&[0x7F, 1, 2]);
        b
    })
    .unwrap();
    assert!(matches!(c.recv_response_kind().unwrap(), RespKind::Err(_)));
    c.ping().unwrap();

    // PUT whose declared key length overruns the payload: ERR, resync.
    c.send_raw(&{
        let mut b = 4u32.to_le_bytes().to_vec();
        b.extend_from_slice(&[0x01]);
        b.extend_from_slice(&500u16.to_le_bytes());
        b.push(b'k');
        b
    })
    .unwrap();
    assert!(matches!(c.recv_response_kind().unwrap(), RespKind::Err(_)));
    c.ping().unwrap();

    // Wrong key size is an engine error, not a panic; still usable after.
    match c.put(b"short", b"v") {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("16 bytes"), "{msg}"),
        other => panic!("expected Remote error, got {other:?}"),
    }
    c.ping().unwrap();
    server.shutdown();
}

#[test]
fn envelope_garbage_closes_connection_with_err() {
    let server = start(PolicyKind::Pmdk, ServerConfig::default());
    let mut c = connect(&server);
    // Length prefix far beyond MAX_FRAME: ERR, then the server hangs up.
    c.send_raw(&u32::MAX.to_le_bytes()).unwrap();
    match c.recv_response_kind().unwrap() {
        RespKind::Err(msg) => assert!(msg.contains("exceeds maximum"), "{msg}"),
        other => panic!("expected Err, got {other:?}"),
    }
    match c.recv_response_kind() {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected closed connection, got {other:?}"),
    }
    // A fresh connection is unaffected.
    let mut c2 = connect(&server);
    c2.ping().unwrap();
    server.shutdown();
}

#[test]
fn connection_limit_answers_busy() {
    let server = start(
        PolicyKind::Spp,
        ServerConfig {
            workers: 2,
            max_conns: 1,
            queue_depth: 8,
        },
    );
    let mut first = connect(&server);
    first.ping().unwrap();
    // The slot is taken: the next connection is told BUSY and hung up on.
    let mut second = connect(&server);
    match second.recv_response_kind().unwrap() {
        RespKind::Busy => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    // The admitted connection keeps full service.
    first.put(&key(1), b"v").unwrap();
    drop(second);
    server.shutdown();
}

#[test]
fn wire_shutdown_quiesces_and_refuses_new_work() {
    let server = start(PolicyKind::SafePm, ServerConfig::default());
    let addr = server.local_addr();
    let mut c = connect(&server);
    c.put(&key(7), b"survives").unwrap();
    c.shutdown().unwrap();
    server.shutdown();
    // The listener is gone: connecting now fails (or is immediately reset).
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c2) => c2.ping().is_err(),
    };
    assert!(refused, "server accepted work after graceful shutdown");
}

#[test]
fn concurrent_clients_see_consistent_store() {
    let server = start(PolicyKind::Spp, ServerConfig::default());
    let addr = server.local_addr();
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                for i in 0..100u64 {
                    let k = key(t * 1_000 + i);
                    loop {
                        match c.put(&k, &i.to_le_bytes()) {
                            Ok(()) => break,
                            Err(ClientError::Busy) => {
                                std::thread::sleep(Duration::from_micros(100))
                            }
                            Err(e) => panic!("put: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut c = connect(&server);
    assert_eq!(server.engine().count().unwrap(), 400);
    let mut out = Vec::new();
    assert!(c.get(&key(2_042), &mut out).unwrap());
    assert_eq!(out, 42u64.to_le_bytes());
    server.shutdown();
}
