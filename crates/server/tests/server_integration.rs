//! End-to-end service tests over real sockets: every policy, malformed
//! frames, connection-limit backpressure, and graceful shutdown.

use std::sync::Arc;
use std::time::Duration;

use spp_server::{
    fresh_server_pool, Client, ClientError, GroupConfig, KvEngine, PolicyKind, Reply, Request,
    RespKind, Server, ServerConfig,
};

fn key(i: u64) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&i.to_be_bytes());
    k
}

fn start(kind: PolicyKind, cfg: ServerConfig) -> Server {
    let pool = fresh_server_pool(16 << 20, 4, false).unwrap();
    let engine = Arc::new(KvEngine::create(pool, kind, 256).unwrap());
    Server::start(engine, ("127.0.0.1", 0), cfg).unwrap()
}

fn connect(server: &Server) -> Client {
    Client::connect_retry(server.local_addr(), Duration::from_secs(5)).unwrap()
}

#[test]
fn full_roundtrip_under_every_policy() {
    for kind in PolicyKind::ALL {
        let server = start(kind, ServerConfig::default());
        let mut c = connect(&server);
        c.ping().unwrap();
        for i in 0..50u64 {
            c.put(&key(i), format!("value-{i}").as_bytes()).unwrap();
        }
        let mut out = Vec::new();
        assert!(c.get(&key(17), &mut out).unwrap());
        assert_eq!(out, b"value-17");
        out.clear();
        assert!(!c.get(&key(999), &mut out).unwrap());
        assert!(c.del(&key(17)).unwrap());
        assert!(!c.del(&key(17)).unwrap());
        out.clear();
        assert!(!c.get(&key(17), &mut out).unwrap());
        c.flush().unwrap();
        let stats = c.stats().unwrap();
        assert!(
            stats.contains(&format!("policy={}", kind.label())),
            "{stats}"
        );
        assert!(stats.contains("keys=49"), "{stats}");
        c.shutdown().unwrap();
        server.shutdown();
    }
}

#[test]
fn values_cross_policy_engines_identically() {
    // The same byte-for-byte workload must be observable under all three
    // policies — the service layer adds no policy-dependent behaviour.
    let mut images: Vec<String> = Vec::new();
    for kind in PolicyKind::ALL {
        let server = start(kind, ServerConfig::default());
        let mut c = connect(&server);
        for i in 0..20u64 {
            c.put(&key(i), &i.to_le_bytes()).unwrap();
        }
        let mut dump: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        server
            .engine()
            .for_each(|k, v| {
                dump.push((k.to_vec(), v.to_vec()));
                Ok(())
            })
            .unwrap();
        dump.sort();
        images.push(format!("{dump:?}"));
        server.shutdown();
    }
    assert_eq!(images[0], images[1]);
    assert_eq!(images[1], images[2]);
}

#[test]
fn malformed_body_gets_err_and_stream_resyncs() {
    let server = start(PolicyKind::Spp, ServerConfig::default());
    let mut c = connect(&server);

    // Unknown opcode: ERR, connection stays usable.
    c.send_raw(&{
        let mut b = 3u32.to_le_bytes().to_vec();
        b.extend_from_slice(&[0x7F, 1, 2]);
        b
    })
    .unwrap();
    assert!(matches!(c.recv_response_kind().unwrap(), RespKind::Err(_)));
    c.ping().unwrap();

    // PUT whose declared key length overruns the payload: ERR, resync.
    c.send_raw(&{
        let mut b = 4u32.to_le_bytes().to_vec();
        b.extend_from_slice(&[0x01]);
        b.extend_from_slice(&500u16.to_le_bytes());
        b.push(b'k');
        b
    })
    .unwrap();
    assert!(matches!(c.recv_response_kind().unwrap(), RespKind::Err(_)));
    c.ping().unwrap();

    // Wrong key size is an engine error, not a panic; still usable after.
    match c.put(b"short", b"v") {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("16 bytes"), "{msg}"),
        other => panic!("expected Remote error, got {other:?}"),
    }
    c.ping().unwrap();
    server.shutdown();
}

#[test]
fn envelope_garbage_closes_connection_with_err() {
    let server = start(PolicyKind::Pmdk, ServerConfig::default());
    let mut c = connect(&server);
    // Length prefix far beyond MAX_FRAME: ERR, then the server hangs up.
    c.send_raw(&u32::MAX.to_le_bytes()).unwrap();
    match c.recv_response_kind().unwrap() {
        RespKind::Err(msg) => assert!(msg.contains("exceeds maximum"), "{msg}"),
        other => panic!("expected Err, got {other:?}"),
    }
    match c.recv_response_kind() {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected closed connection, got {other:?}"),
    }
    // A fresh connection is unaffected.
    let mut c2 = connect(&server);
    c2.ping().unwrap();
    server.shutdown();
}

#[test]
fn connection_limit_answers_busy() {
    let server = start(
        PolicyKind::Spp,
        ServerConfig {
            workers: 2,
            max_conns: 1,
            queue_depth: 8,
            ..ServerConfig::default()
        },
    );
    let mut first = connect(&server);
    first.ping().unwrap();
    // The slot is taken: the next connection is told BUSY and hung up on.
    let mut second = connect(&server);
    match second.recv_response_kind().unwrap() {
        RespKind::Busy => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    // The admitted connection keeps full service.
    first.put(&key(1), b"v").unwrap();
    drop(second);
    server.shutdown();
}

#[test]
fn wire_shutdown_quiesces_and_refuses_new_work() {
    let server = start(PolicyKind::SafePm, ServerConfig::default());
    let addr = server.local_addr();
    let mut c = connect(&server);
    c.put(&key(7), b"survives").unwrap();
    c.shutdown().unwrap();
    server.shutdown();
    // The listener is gone: connecting now fails (or is immediately reset).
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c2) => c2.ping().is_err(),
    };
    assert!(refused, "server accepted work after graceful shutdown");
}

#[test]
fn multi_roundtrip_under_every_policy() {
    for kind in PolicyKind::ALL {
        let server = start(kind, ServerConfig::default());
        let mut c = connect(&server);
        // One atomic batch mixing writes and reads of its own writes.
        let (k1, k2, k3) = (key(1), key(2), key(3));
        let replies = c
            .multi(&[
                Request::Put {
                    key: &k1,
                    value: b"alpha",
                },
                Request::Put {
                    key: &k2,
                    value: b"beta",
                },
                Request::Get { key: &k1 },
                Request::Del { key: &k3 },
                Request::Ping,
            ])
            .unwrap();
        assert_eq!(
            replies,
            vec![
                Reply::Ok,
                Reply::Ok,
                Reply::Value(b"alpha".to_vec()),
                Reply::NotFound,
                Reply::Pong,
            ],
            "{}",
            kind.label()
        );
        // The batch's writes are visible to plain requests afterwards.
        let mut out = Vec::new();
        assert!(c.get(&k2, &mut out).unwrap());
        assert_eq!(out, b"beta");
        // An invalid key inside a batch errors that slot only.
        let replies = c
            .multi(&[
                Request::Put {
                    key: b"short",
                    value: b"x",
                },
                Request::Put {
                    key: &k3,
                    value: b"gamma",
                },
            ])
            .unwrap();
        assert!(matches!(replies[0], Reply::Err(_)), "{replies:?}");
        assert_eq!(replies[1], Reply::Ok);
        out.clear();
        assert!(c.get(&k3, &mut out).unwrap());
        assert_eq!(out, b"gamma");
        server.shutdown();
    }
}

#[test]
fn pipelined_frames_are_answered_in_order() {
    let server = start(PolicyKind::Spp, ServerConfig::default());
    let mut c = connect(&server);
    // 40 back-to-back frames without waiting: interleaved PUTs, GETs of
    // keys written earlier in the same pipeline, and pings.
    let keys: Vec<[u8; 16]> = (0..16).map(key).collect();
    let values: Vec<Vec<u8>> = (0..16u64).map(|i| i.to_le_bytes().to_vec()).collect();
    let mut reqs: Vec<Request<'_>> = Vec::new();
    for i in 0..16 {
        reqs.push(Request::Put {
            key: &keys[i],
            value: &values[i],
        });
        if i % 4 == 3 {
            // Reads a key PUT earlier in this same pipelined burst.
            reqs.push(Request::Get { key: &keys[i - 2] });
        }
        if i % 8 == 7 {
            reqs.push(Request::Ping);
        }
    }
    let replies = c.pipeline(&reqs).unwrap();
    assert_eq!(replies.len(), reqs.len());
    for (req, reply) in reqs.iter().zip(&replies) {
        match (req, reply) {
            (Request::Put { .. }, Reply::Ok) | (Request::Ping, Reply::Pong) => {}
            (Request::Get { key }, Reply::Value(v)) => {
                let i = u64::from_be_bytes(key[..8].try_into().unwrap());
                assert_eq!(v, &i.to_le_bytes(), "GET {i} out of order");
            }
            other => panic!("mismatched pipelined reply: {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn nested_multi_and_shutdown_in_multi_get_err_and_resync() {
    let server = start(PolicyKind::Pmdk, ServerConfig::default());
    let mut c = connect(&server);
    // MULTI wrapping a MULTI: a body error (known frame boundary), so the
    // stream must answer ERR and stay usable.
    let mut inner = Vec::new();
    spp_server::wire::encode_multi_request(&mut inner, &[Request::Ping]);
    let mut frame = Vec::new();
    frame.extend_from_slice(&((1 + 2 + inner.len()) as u32).to_le_bytes());
    frame.push(0x08);
    frame.extend_from_slice(&1u16.to_le_bytes());
    frame.extend_from_slice(&inner);
    c.send_raw(&frame).unwrap();
    assert!(matches!(c.recv_response_kind().unwrap(), RespKind::Err(_)));
    c.ping().unwrap();

    // MULTI wrapping SHUTDOWN: rejected the same way, and crucially the
    // server must NOT shut down.
    let mut inner = Vec::new();
    inner.extend_from_slice(&1u32.to_le_bytes());
    inner.push(0x06); // OP_SHUTDOWN
    let mut frame = Vec::new();
    frame.extend_from_slice(&((1 + 2 + inner.len()) as u32).to_le_bytes());
    frame.push(0x08);
    frame.extend_from_slice(&1u16.to_le_bytes());
    frame.extend_from_slice(&inner);
    c.send_raw(&frame).unwrap();
    assert!(matches!(c.recv_response_kind().unwrap(), RespKind::Err(_)));
    c.ping().unwrap();
    c.put(&key(5), b"still serving").unwrap();
    server.shutdown();
}

#[test]
fn concurrent_multi_writers_share_commit_boundaries() {
    // A hold window makes cross-connection coalescing deterministic enough
    // to observe: many single-connection batches must land in fewer
    // committer boundaries than submissions.
    let server = start(
        PolicyKind::Spp,
        ServerConfig {
            group: GroupConfig {
                max_batch: 256,
                max_hold: Duration::from_millis(3),
            },
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                for b in 0..10u64 {
                    let keys: Vec<[u8; 16]> = (0..4).map(|i| key(t * 1_000 + b * 4 + i)).collect();
                    let reqs: Vec<Request<'_>> = keys
                        .iter()
                        .map(|k| Request::Put {
                            key: k,
                            value: b"grouped",
                        })
                        .collect();
                    loop {
                        match c.multi(&reqs) {
                            Ok(replies) => {
                                assert!(replies.iter().all(|r| *r == Reply::Ok));
                                break;
                            }
                            Err(ClientError::Busy) => {
                                std::thread::sleep(Duration::from_micros(100))
                            }
                            Err(e) => panic!("multi: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let (batches, ops) = server.group_stats();
    assert_eq!(ops, 160, "every batched PUT must go through the committer");
    assert!(
        batches < 40,
        "40 MULTI submissions never shared a boundary ({batches} batches)"
    );
    assert_eq!(server.engine().count().unwrap(), 160);
    server.shutdown();
}

#[test]
fn concurrent_clients_see_consistent_store() {
    let server = start(PolicyKind::Spp, ServerConfig::default());
    let addr = server.local_addr();
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                for i in 0..100u64 {
                    let k = key(t * 1_000 + i);
                    loop {
                        match c.put(&k, &i.to_le_bytes()) {
                            Ok(()) => break,
                            Err(ClientError::Busy) => {
                                std::thread::sleep(Duration::from_micros(100))
                            }
                            Err(e) => panic!("put: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut c = connect(&server);
    assert_eq!(server.engine().count().unwrap(), 400);
    let mut out = Vec::new();
    assert!(c.get(&key(2_042), &mut out).unwrap());
    assert_eq!(out, 42u64.to_le_bytes());
    server.shutdown();
}
