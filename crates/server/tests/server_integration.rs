//! End-to-end service tests over real sockets: every policy, malformed
//! frames, connection-limit backpressure, and graceful shutdown — each
//! scenario driven against **both** I/O front ends (`threads` and
//! `epoll`), since the wire contract must not depend on who reads the
//! sockets.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spp_server::{
    fresh_server_pool, Client, ClientError, GroupConfig, IoMode, KvEngine, PolicyKind, ReplAckMode,
    ReplConfig, ReplOp, Reply, Request, RespKind, Server, ServerConfig,
};

/// Every front end each scenario must behave identically under.
const IO_MODES: [IoMode; 2] = [IoMode::Threads, IoMode::Epoll];

fn key(i: u64) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&i.to_be_bytes());
    k
}

fn start(kind: PolicyKind, cfg: ServerConfig) -> Server {
    let pool = fresh_server_pool(16 << 20, 4, false).unwrap();
    let engine = Arc::new(KvEngine::create(pool, kind, 256).unwrap());
    Server::start(engine, ("127.0.0.1", 0), cfg).unwrap()
}

fn start_io(kind: PolicyKind, io: IoMode, cfg: ServerConfig) -> Server {
    start(kind, ServerConfig { io, ..cfg })
}

fn connect(server: &Server) -> Client {
    Client::connect_retry(server.local_addr(), Duration::from_secs(5)).unwrap()
}

#[test]
fn full_roundtrip_under_every_policy() {
    for io in IO_MODES {
        for kind in PolicyKind::ALL {
            let server = start_io(kind, io, ServerConfig::default());
            let mut c = connect(&server);
            c.ping().unwrap();
            for i in 0..50u64 {
                c.put(&key(i), format!("value-{i}").as_bytes()).unwrap();
            }
            let mut out = Vec::new();
            assert!(c.get(&key(17), &mut out).unwrap());
            assert_eq!(out, b"value-17");
            out.clear();
            assert!(!c.get(&key(999), &mut out).unwrap());
            assert!(c.del(&key(17)).unwrap());
            assert!(!c.del(&key(17)).unwrap());
            out.clear();
            assert!(!c.get(&key(17), &mut out).unwrap());
            c.flush().unwrap();
            let stats = c.stats().unwrap();
            assert!(
                stats.contains(&format!("policy={}", kind.label())),
                "{stats}"
            );
            assert!(stats.contains("keys=49"), "{stats}");
            c.shutdown().unwrap();
            server.shutdown();
        }
    }
}

#[test]
fn values_cross_policy_engines_identically() {
    // The same byte-for-byte workload must be observable under all three
    // policies — the service layer adds no policy-dependent behaviour.
    let mut images: Vec<String> = Vec::new();
    for kind in PolicyKind::ALL {
        let server = start(kind, ServerConfig::default());
        let mut c = connect(&server);
        for i in 0..20u64 {
            c.put(&key(i), &i.to_le_bytes()).unwrap();
        }
        let mut dump: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        server
            .engine()
            .for_each(|k, v| {
                dump.push((k.to_vec(), v.to_vec()));
                Ok(())
            })
            .unwrap();
        dump.sort();
        images.push(format!("{dump:?}"));
        server.shutdown();
    }
    assert_eq!(images[0], images[1]);
    assert_eq!(images[1], images[2]);
}

#[test]
fn malformed_body_gets_err_and_stream_resyncs() {
    for io in IO_MODES {
        let server = start_io(PolicyKind::Spp, io, ServerConfig::default());
        let mut c = connect(&server);

        // Unknown opcode: ERR, connection stays usable.
        c.send_raw(&{
            let mut b = 3u32.to_le_bytes().to_vec();
            b.extend_from_slice(&[0x7F, 1, 2]);
            b
        })
        .unwrap();
        assert!(matches!(c.recv_response_kind().unwrap(), RespKind::Err(_)));
        c.ping().unwrap();

        // PUT whose declared key length overruns the payload: ERR, resync.
        c.send_raw(&{
            let mut b = 4u32.to_le_bytes().to_vec();
            b.extend_from_slice(&[0x01]);
            b.extend_from_slice(&500u16.to_le_bytes());
            b.push(b'k');
            b
        })
        .unwrap();
        assert!(matches!(c.recv_response_kind().unwrap(), RespKind::Err(_)));
        c.ping().unwrap();

        // Wrong key size is an engine error, not a panic; still usable after.
        match c.put(b"short", b"v") {
            Err(ClientError::Remote(msg)) => assert!(msg.contains("16 bytes"), "{msg}"),
            other => panic!("expected Remote error, got {other:?}"),
        }
        c.ping().unwrap();
        server.shutdown();
    }
}

#[test]
fn envelope_garbage_closes_connection_with_err() {
    for io in IO_MODES {
        let server = start_io(PolicyKind::Pmdk, io, ServerConfig::default());
        let mut c = connect(&server);
        // Length prefix far beyond MAX_FRAME: ERR, then the server hangs up.
        c.send_raw(&u32::MAX.to_le_bytes()).unwrap();
        match c.recv_response_kind().unwrap() {
            RespKind::Err(msg) => assert!(msg.contains("exceeds maximum"), "{msg}"),
            other => panic!("expected Err, got {other:?}"),
        }
        match c.recv_response_kind() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected closed connection, got {other:?}"),
        }
        // A fresh connection is unaffected.
        let mut c2 = connect(&server);
        c2.ping().unwrap();
        server.shutdown();
    }
}

#[test]
fn connection_limit_answers_busy() {
    for io in IO_MODES {
        let server = start_io(
            PolicyKind::Spp,
            io,
            ServerConfig {
                workers: 2,
                max_conns: 1,
                queue_depth: 8,
                ..ServerConfig::default()
            },
        );
        let mut first = connect(&server);
        first.ping().unwrap();
        // The slot is taken: the next connection is told BUSY and hung up on.
        let mut second = connect(&server);
        match second.recv_response_kind().unwrap() {
            RespKind::Busy => {}
            other => panic!("expected Busy ({io}), got {other:?}"),
        }
        // The admitted connection keeps full service.
        first.put(&key(1), b"v").unwrap();
        drop(second);
        server.shutdown();
    }
}

#[test]
fn wire_shutdown_quiesces_and_refuses_new_work() {
    for io in IO_MODES {
        let server = start_io(PolicyKind::SafePm, io, ServerConfig::default());
        let addr = server.local_addr();
        let mut c = connect(&server);
        c.put(&key(7), b"survives").unwrap();
        c.shutdown().unwrap();
        server.shutdown();
        // The listener is gone: connecting now fails (or is immediately reset).
        let refused = match Client::connect(addr) {
            Err(_) => true,
            Ok(mut c2) => c2.ping().is_err(),
        };
        assert!(
            refused,
            "server accepted work after graceful shutdown ({io})"
        );
    }
}

#[test]
fn multi_roundtrip_under_every_policy() {
    for io in IO_MODES {
        for kind in PolicyKind::ALL {
            let server = start_io(kind, io, ServerConfig::default());
            let mut c = connect(&server);
            // One atomic batch mixing writes and reads of its own writes.
            let (k1, k2, k3) = (key(1), key(2), key(3));
            let replies = c
                .multi(&[
                    Request::Put {
                        key: &k1,
                        value: b"alpha",
                    },
                    Request::Put {
                        key: &k2,
                        value: b"beta",
                    },
                    Request::Get { key: &k1 },
                    Request::Del { key: &k3 },
                    Request::Ping,
                ])
                .unwrap();
            assert_eq!(
                replies,
                vec![
                    Reply::Ok,
                    Reply::Ok,
                    Reply::Value(b"alpha".to_vec()),
                    Reply::NotFound,
                    Reply::Pong,
                ],
                "{} ({io})",
                kind.label()
            );
            // The batch's writes are visible to plain requests afterwards.
            let mut out = Vec::new();
            assert!(c.get(&k2, &mut out).unwrap());
            assert_eq!(out, b"beta");
            // An invalid key inside a batch errors that slot only.
            let replies = c
                .multi(&[
                    Request::Put {
                        key: b"short",
                        value: b"x",
                    },
                    Request::Put {
                        key: &k3,
                        value: b"gamma",
                    },
                ])
                .unwrap();
            assert!(matches!(replies[0], Reply::Err(_)), "{replies:?}");
            assert_eq!(replies[1], Reply::Ok);
            out.clear();
            assert!(c.get(&k3, &mut out).unwrap());
            assert_eq!(out, b"gamma");
            server.shutdown();
        }
    }
}

#[test]
fn pipelined_frames_are_answered_in_order() {
    for io in IO_MODES {
        let server = start_io(PolicyKind::Spp, io, ServerConfig::default());
        let mut c = connect(&server);
        // 40 back-to-back frames without waiting: interleaved PUTs, GETs of
        // keys written earlier in the same pipeline, and pings.
        let keys: Vec<[u8; 16]> = (0..16).map(key).collect();
        let values: Vec<Vec<u8>> = (0..16u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let mut reqs: Vec<Request<'_>> = Vec::new();
        for i in 0..16 {
            reqs.push(Request::Put {
                key: &keys[i],
                value: &values[i],
            });
            if i % 4 == 3 {
                // Reads a key PUT earlier in this same pipelined burst.
                reqs.push(Request::Get { key: &keys[i - 2] });
            }
            if i % 8 == 7 {
                reqs.push(Request::Ping);
            }
        }
        let replies = c.pipeline(&reqs).unwrap();
        assert_eq!(replies.len(), reqs.len());
        for (req, reply) in reqs.iter().zip(&replies) {
            match (req, reply) {
                (Request::Put { .. }, Reply::Ok) | (Request::Ping, Reply::Pong) => {}
                (Request::Get { key }, Reply::Value(v)) => {
                    let i = u64::from_be_bytes(key[..8].try_into().unwrap());
                    assert_eq!(v, &i.to_le_bytes(), "GET {i} out of order ({io})");
                }
                other => panic!("mismatched pipelined reply ({io}): {other:?}"),
            }
        }
        server.shutdown();
    }
}

#[test]
fn fragmented_byte_at_a_time_frames_are_served() {
    // Reactor-style ingestion must reassemble frames split at arbitrary
    // byte boundaries — including mid-length-prefix — without desync. The
    // client dribbles a 3-frame pipeline one byte per write.
    for io in IO_MODES {
        let server = start_io(PolicyKind::Spp, io, ServerConfig::default());
        let mut c = connect(&server);
        let k = key(42);
        let mut bytes = Vec::new();
        for req in [
            Request::Put {
                key: &k,
                value: b"dribbled",
            },
            Request::Ping,
            Request::Get { key: &k },
        ] {
            let mut one = Vec::new();
            spp_server::wire::encode_request(&mut one, &req);
            bytes.extend_from_slice(&one);
        }
        for b in &bytes {
            c.send_raw(std::slice::from_ref(b)).unwrap();
        }
        assert_eq!(c.recv_response_kind().unwrap(), RespKind::Ok);
        assert_eq!(c.recv_response_kind().unwrap(), RespKind::Pong);
        assert_eq!(c.recv_response_kind().unwrap(), RespKind::Value);
        server.shutdown();
    }
}

/// Saturate a 1-worker/depth-1 pool with sleeper jobs, retrying until both
/// the executing slot and the queued slot are held.
fn stall_pool(server: &Server, hold: Duration) {
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut accepted = 0;
    while accepted < 2 {
        accepted += server.debug_stall_workers(2 - accepted, hold);
        assert!(Instant::now() < deadline, "could not saturate worker pool");
        if accepted < 2 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

#[test]
fn stalled_pool_parks_runs_in_epoll_mode_never_busy() {
    // THE backpressure-semantics fix: with the worker pool saturated
    // mid-run, the epoll front end must pause reading and resume once
    // capacity frees up — the pipelined run completes with zero BUSY and
    // in order, nothing dropped.
    let server = start_io(
        PolicyKind::Spp,
        IoMode::Epoll,
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
    );
    let mut c = connect(&server);
    stall_pool(&server, Duration::from_millis(300));

    let keys: Vec<[u8; 16]> = (0..10).map(key).collect();
    let values: Vec<Vec<u8>> = (0..10u64).map(|i| i.to_le_bytes().to_vec()).collect();
    let mut reqs: Vec<Request<'_>> = Vec::new();
    for i in 0..10 {
        reqs.push(Request::Put {
            key: &keys[i],
            value: &values[i],
        });
        reqs.push(Request::Get { key: &keys[i] });
    }
    let replies = c.pipeline(&reqs).unwrap();
    assert_eq!(replies.len(), reqs.len());
    for (i, pair) in replies.chunks(2).enumerate() {
        assert_eq!(pair[0], Reply::Ok, "PUT {i} must not see BUSY");
        assert_eq!(
            pair[1],
            Reply::Value((i as u64).to_le_bytes().to_vec()),
            "GET {i} dropped or reordered"
        );
    }
    // Every acked write really is in the store.
    assert_eq!(server.engine().count().unwrap(), 10);
    server.shutdown();
}

#[test]
fn stalled_pool_answers_busy_in_threads_mode() {
    // The blocking front end keeps its PR-3 contract: a full queue fails
    // the run's engine work with explicit BUSY (documented contrast with
    // the epoll mode's park-and-resume).
    let server = start_io(
        PolicyKind::Spp,
        IoMode::Threads,
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
    );
    let mut c = connect(&server);
    stall_pool(&server, Duration::from_millis(400));

    let k = key(1);
    let replies = c
        .pipeline(&[
            Request::Put {
                key: &k,
                value: b"v",
            },
            Request::Ping,
        ])
        .unwrap();
    assert_eq!(replies[0], Reply::Busy, "threads mode rejects with BUSY");
    assert_eq!(replies[1], Reply::Pong, "inline answers still stand");
    server.shutdown();
}

#[test]
fn idle_timeout_closes_quiet_connections_but_not_active_ones() {
    let server = start_io(
        PolicyKind::Spp,
        IoMode::Epoll,
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..ServerConfig::default()
        },
    );
    let mut quiet = connect(&server);
    quiet.ping().unwrap();
    let mut active = connect(&server);
    active.ping().unwrap();

    // Keep one connection chatty across several timeout windows.
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(80));
        active.ping().unwrap();
    }
    // The quiet one must be gone by now.
    match quiet.ping() {
        Err(ClientError::Io(_)) => {}
        other => panic!("idle connection survived the timeout: {other:?}"),
    }
    // The active one is still fully served.
    active.put(&key(9), b"alive").unwrap();
    server.shutdown();
}

#[test]
fn concurrent_multi_writers_share_commit_boundaries() {
    for io in IO_MODES {
        // A hold window makes cross-connection coalescing deterministic
        // enough to observe: many single-connection batches must land in
        // fewer committer boundaries than submissions.
        let server = start_io(
            PolicyKind::Spp,
            io,
            ServerConfig {
                group: GroupConfig {
                    max_batch: 256,
                    max_hold: Duration::from_millis(3),
                },
                ..ServerConfig::default()
            },
        );
        let addr = server.local_addr();
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                    for b in 0..10u64 {
                        let keys: Vec<[u8; 16]> =
                            (0..4).map(|i| key(t * 1_000 + b * 4 + i)).collect();
                        let reqs: Vec<Request<'_>> = keys
                            .iter()
                            .map(|k| Request::Put {
                                key: k,
                                value: b"grouped",
                            })
                            .collect();
                        loop {
                            match c.multi(&reqs) {
                                Ok(replies) => {
                                    assert!(replies.iter().all(|r| *r == Reply::Ok));
                                    break;
                                }
                                Err(ClientError::Busy) => {
                                    std::thread::sleep(Duration::from_micros(100))
                                }
                                Err(e) => panic!("multi: {e}"),
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let (batches, ops) = server.group_stats();
        assert_eq!(ops, 160, "every batched PUT must go through the committer");
        assert!(
            batches < 40,
            "40 MULTI submissions never shared a boundary ({batches} batches, {io})"
        );
        assert_eq!(server.engine().count().unwrap(), 160);
        server.shutdown();
    }
}

#[test]
fn concurrent_clients_see_consistent_store() {
    for io in IO_MODES {
        let server = start_io(PolicyKind::Spp, io, ServerConfig::default());
        let addr = server.local_addr();
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                    for i in 0..100u64 {
                        let k = key(t * 1_000 + i);
                        loop {
                            match c.put(&k, &i.to_le_bytes()) {
                                Ok(()) => break,
                                Err(ClientError::Busy) => {
                                    std::thread::sleep(Duration::from_micros(100))
                                }
                                Err(e) => panic!("put: {e}"),
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut c = connect(&server);
        assert_eq!(server.engine().count().unwrap(), 400);
        let mut out = Vec::new();
        assert!(c.get(&key(2_042), &mut out).unwrap());
        assert_eq!(out, 42u64.to_le_bytes());
        server.shutdown();
    }
}

#[test]
fn epoll_serves_many_idle_connections_without_per_conn_threads() {
    // Small in-test version of the loadgen idle sweep: 60 open-but-idle
    // connections on a 2-reactor server must all stay serviceable, and
    // none of them may cost a thread (coarse check via /proc).
    let server = start_io(
        PolicyKind::Spp,
        IoMode::Epoll,
        ServerConfig {
            max_conns: 128,
            reactors: 2,
            ..ServerConfig::default()
        },
    );
    let mut conns: Vec<Client> = (0..60).map(|_| connect(&server)).collect();
    for c in conns.iter_mut() {
        c.ping().unwrap();
    }
    if let Some(threads) = proc_threads() {
        // Process-wide: test harness + 2 reactors + 4 workers + committer.
        // 60 idle conns must NOT have added 60 threads.
        assert!(
            threads < 40,
            "thread count {threads} scales with idle connections"
        );
    }
    // Every idle connection still answers.
    for c in conns.iter_mut() {
        c.ping().unwrap();
    }
    server.shutdown();
}

fn start_sharded(kind: PolicyKind, io: IoMode, nshards: usize, cfg: ServerConfig) -> Server {
    let engines = (0..nshards)
        .map(|_| {
            let pool = fresh_server_pool(16 << 20, 4, false).unwrap();
            Arc::new(KvEngine::create(pool, kind, 256).unwrap())
        })
        .collect();
    Server::start_multi(engines, ("127.0.0.1", 0), ServerConfig { io, ..cfg }).unwrap()
}

#[test]
fn sharded_server_routes_by_ring_and_serves_all_keys() {
    for io in IO_MODES {
        let server = start_sharded(PolicyKind::Spp, io, 3, ServerConfig::default());
        let mut c = connect(&server);
        for i in 0..90u64 {
            c.put(&key(i), &i.to_le_bytes()).unwrap();
        }
        // Every key reads back through the front door, whichever shard
        // owns it.
        let mut out = Vec::new();
        for i in 0..90u64 {
            out.clear();
            assert!(c.get(&key(i), &mut out).unwrap(), "key {i} lost ({io})");
            assert_eq!(out, i.to_le_bytes());
        }
        // Per-shard placement matches the public ring exactly.
        let ring = server.ring();
        let engines = server.engines();
        let mut expected = vec![0u64; engines.len()];
        for i in 0..90u64 {
            expected[ring.shard_of(&key(i)) as usize] += 1;
        }
        for (s, engine) in engines.iter().enumerate() {
            assert_eq!(
                engine.count().unwrap(),
                expected[s],
                "shard {s} holds keys the ring does not assign it ({io})"
            );
        }
        assert!(
            expected.iter().all(|&n| n > 0),
            "degenerate ring: {expected:?}"
        );
        // STATS reports the shard layout.
        let stats = c.stats().unwrap();
        assert!(stats.contains("shards=3"), "{stats}");
        // A MULTI spanning shards still answers every slot in order.
        let (k1, k2, k3) = (key(200), key(201), key(202));
        let replies = c
            .multi(&[
                Request::Put {
                    key: &k1,
                    value: b"a",
                },
                Request::Put {
                    key: &k2,
                    value: b"b",
                },
                Request::Get { key: &k1 },
                Request::Del { key: &k3 },
            ])
            .unwrap();
        assert_eq!(
            replies,
            vec![
                Reply::Ok,
                Reply::Ok,
                Reply::Value(b"a".to_vec()),
                Reply::NotFound
            ]
        );
        server.shutdown();
    }
}

#[test]
fn repl_batch_applies_on_backup_and_promote_fences_it() {
    // Drive the backup role directly over the wire: REPL_BATCH frames
    // apply through the shard committer, PROMOTE stops further ones.
    let server = start_sharded(PolicyKind::Spp, IoMode::Threads, 2, ServerConfig::default());
    let mut c = connect(&server);
    let (k1, k2) = (key(1), key(2));
    // A real primary ships each batch to the shard the ring owns the
    // keys to; front-door GETs route the same way, so the readback only
    // works if the batch landed on the ring-owned shard.
    let (s1, s2) = (server.ring().shard_of(&k1), server.ring().shard_of(&k2));
    let ops = [
        ReplOp::Put {
            key: &k1,
            value: b"replicated",
        },
        ReplOp::Put {
            key: &k2,
            value: b"doomed",
        },
        ReplOp::Del { key: &k2 },
    ];
    // Sequences are dense *per shard*, starting at 1: the second batch is
    // seq 2 only when it lands on the same shard as the first.
    let seq2 = if s2 == s1 { 2 } else { 1 };
    assert_eq!(
        c.repl_batch(
            s1,
            1,
            &[ReplOp::Put {
                key: &k1,
                value: b"replicated"
            }]
        )
        .unwrap(),
        (s1, 1)
    );
    assert_eq!(
        c.repl_batch(
            s2,
            seq2,
            &[
                ReplOp::Put {
                    key: &k2,
                    value: b"doomed"
                },
                ReplOp::Del { key: &k2 }
            ]
        )
        .unwrap(),
        (s2, seq2)
    );
    let mut out = Vec::new();
    assert!(c.get(&k1, &mut out).unwrap());
    assert_eq!(out, b"replicated");
    assert!(!c.get(&k2, &mut out).unwrap());
    // Out-of-range shard is refused without desyncing the stream.
    match c.repl_batch(7, 2, &ops) {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("shard"), "{msg}"),
        other => panic!("expected Remote error, got {other:?}"),
    }
    c.ping().unwrap();
    // PROMOTE: acked, and replication input is refused from then on.
    c.promote().unwrap();
    assert!(server.is_promoted());
    match c.repl_batch(0, 2, &ops) {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("promoted"), "{msg}"),
        other => panic!("expected Remote error after PROMOTE, got {other:?}"),
    }
    // Normal service continues on the promoted server.
    assert!(c.get(&k1, &mut out).unwrap());
    c.put(&key(3), b"post-promotion").unwrap();
    server.shutdown();
}

#[test]
fn repl_sequence_gaps_poison_the_shard_stream() {
    // The backup validates dense per-shard sequences: a gap is rejected
    // and poisons that shard's stream — even the "missing" seq is refused
    // afterwards — while other shards and the front door stay live.
    let server = start_sharded(PolicyKind::Spp, IoMode::Threads, 2, ServerConfig::default());
    let mut c = connect(&server);
    let k = key(1);
    let put = [ReplOp::Put {
        key: &k,
        value: b"v",
    }];
    assert_eq!(c.repl_batch(0, 1, &put).unwrap(), (0, 1));
    // Seq 3 after seq 1: a lost batch the protocol must not paper over.
    match c.repl_batch(0, 3, &put) {
        Err(ClientError::Remote(msg)) => {
            assert!(msg.contains("sequence"), "{msg}");
            assert!(msg.contains("expected 2"), "{msg}");
        }
        other => panic!("expected sequence error, got {other:?}"),
    }
    // Even the correct next seq is refused now: the stream is poisoned,
    // because a batch between them was lost for good.
    match c.repl_batch(0, 2, &put) {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("poisoned"), "{msg}"),
        other => panic!("expected poisoned-stream error, got {other:?}"),
    }
    // A duplicate on a *fresh* shard stream is caught too (seq must be 1).
    match c.repl_batch(1, 2, &put) {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("expected 1"), "{msg}"),
        other => panic!("expected sequence error, got {other:?}"),
    }
    // The front door still serves ordinary traffic.
    c.put(&key(9), b"front-door").unwrap();
    let mut out = Vec::new();
    assert!(c.get(&key(9), &mut out).unwrap());
    server.shutdown();
}

#[test]
fn repl_hello_verifies_shard_count() {
    let server = start_sharded(PolicyKind::Spp, IoMode::Threads, 2, ServerConfig::default());
    let mut c = connect(&server);
    c.repl_hello(2).unwrap();
    match c.repl_hello(3) {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("mismatch"), "{msg}"),
        other => panic!("expected mismatch error, got {other:?}"),
    }
    // A promoted server refuses the handshake outright — it is a primary.
    c.promote().unwrap();
    match c.repl_hello(2) {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("promoted"), "{msg}"),
        other => panic!("expected promoted error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn mismatched_shard_layouts_refuse_to_replicate() {
    // A 1-shard primary pointed at a 2-shard backup must fail at startup
    // (the REPL_HELLO handshake), not misplace batches silently.
    let backup = start_sharded(PolicyKind::Spp, IoMode::Threads, 2, ServerConfig::default());
    let pool = fresh_server_pool(16 << 20, 4, false).unwrap();
    let engine = Arc::new(KvEngine::create(pool, PolicyKind::Spp, 256).unwrap());
    let err = match Server::start_multi(
        vec![engine],
        ("127.0.0.1", 0),
        ServerConfig {
            repl: Some(ReplConfig {
                backup: backup.local_addr(),
                ack_mode: ReplAckMode::Sync,
                drop_batch: None,
            }),
            ..ServerConfig::default()
        },
    ) {
        Err(e) => e,
        Ok(_) => panic!("mismatched layouts must not start"),
    };
    assert!(err.to_string().contains("mismatch"), "{err}");
    backup.shutdown();
}

#[test]
fn sync_replication_mirrors_every_acked_write_onto_backup() {
    for io in IO_MODES {
        let backup = start_sharded(PolicyKind::Spp, io, 2, ServerConfig::default());
        let primary = start_sharded(
            PolicyKind::Spp,
            io,
            2,
            ServerConfig {
                repl: Some(ReplConfig {
                    backup: backup.local_addr(),
                    ack_mode: ReplAckMode::Sync,
                    drop_batch: None,
                }),
                ..ServerConfig::default()
            },
        );
        let mut c = connect(&primary);
        for i in 0..60u64 {
            c.put(&key(i), &i.to_le_bytes()).unwrap();
        }
        assert!(c.del(&key(0)).unwrap());
        // Sync mode: each ack above already waited for the backup's
        // REPL_ACK, so the backup must hold everything right now.
        let mut b = connect(&backup);
        let mut out = Vec::new();
        for i in 1..60u64 {
            out.clear();
            assert!(
                b.get(&key(i), &mut out).unwrap(),
                "backup lost key {i} ({io})"
            );
            assert_eq!(out, i.to_le_bytes());
        }
        assert!(
            !b.get(&key(0), &mut out).unwrap(),
            "deleted key resurrected"
        );
        let rs = primary.repl_stats().expect("primary has repl sinks");
        assert!(rs.shipped > 0, "{rs:?}");
        assert_eq!(rs.dropped, 0);
        assert_eq!(rs.failed, 0);
        primary.shutdown();
        backup.shutdown();
    }
}

#[test]
fn async_replication_catches_up_and_cut_stream_fails_sync_acks() {
    // Async mode: acks don't wait, but the backup converges.
    let backup = start_sharded(PolicyKind::Spp, IoMode::Threads, 2, ServerConfig::default());
    let primary = start_sharded(
        PolicyKind::Spp,
        IoMode::Threads,
        2,
        ServerConfig {
            repl: Some(ReplConfig {
                backup: backup.local_addr(),
                ack_mode: ReplAckMode::Async,
                drop_batch: None,
            }),
            ..ServerConfig::default()
        },
    );
    let mut c = connect(&primary);
    for i in 0..40u64 {
        c.put(&key(i), b"async").unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let total: u64 = backup.engines().iter().map(|e| e.count().unwrap()).sum();
        if total == 40 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backup never converged ({total}/40)"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    primary.shutdown();
    backup.shutdown();

    // Sync mode with the stream cut: the client must NOT get OK for a
    // write the backup never saw.
    let backup = start_sharded(PolicyKind::Spp, IoMode::Threads, 1, ServerConfig::default());
    let primary = start_sharded(
        PolicyKind::Spp,
        IoMode::Threads,
        1,
        ServerConfig {
            repl: Some(ReplConfig {
                backup: backup.local_addr(),
                ack_mode: ReplAckMode::Sync,
                drop_batch: None,
            }),
            ..ServerConfig::default()
        },
    );
    let mut c = connect(&primary);
    c.put(&key(1), b"before-cut").unwrap();
    primary.debug_cut_replication();
    match c.put(&key(2), b"after-cut") {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("not replicated"), "{msg}"),
        other => panic!("acked a write the backup cannot hold: {other:?}"),
    }
    primary.shutdown();
    backup.shutdown();
}

#[test]
fn parked_epoll_run_fails_cleanly_when_committer_closes() {
    // The BUSY-gap cousin: a run parked on a saturated queue whose shard
    // committer then shuts down must get explicit errors and a clean
    // close — not a parked-forever hang.
    let server = start_io(
        PolicyKind::Spp,
        IoMode::Epoll,
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    stall_pool(&server, Duration::from_millis(1500));

    let (tx, rx) = std::sync::mpsc::channel();
    let t = std::thread::spawn(move || {
        let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let k = key(1);
        // This run parks: both worker slots are held by sleepers.
        let result = c.pipeline(&[
            Request::Put {
                key: &k,
                value: b"v",
            },
            Request::Ping,
        ]);
        let _ = tx.send(result);
    });
    // Give the run time to reach the parked state, then shut the
    // committer down underneath it.
    std::thread::sleep(Duration::from_millis(300));
    server.debug_close_committers();
    match rx.recv_timeout(Duration::from_secs(10)) {
        Ok(Ok(replies)) => {
            assert!(
                matches!(&replies[0], Reply::Err(msg) if msg.contains("shutting down")),
                "parked PUT must fail explicitly, got {replies:?}"
            );
        }
        Ok(Err(e)) => panic!("pipeline errored instead of answering: {e}"),
        Err(_) => panic!("parked run hung after committer shutdown"),
    }
    t.join().unwrap();
    server.shutdown();
}

fn proc_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}
