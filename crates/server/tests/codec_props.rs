//! Codec hardening: property-based round-trips and malformed-frame fuzzing.
//!
//! The server feeds every byte a peer sends through this codec, so the
//! invariants here are load-bearing for the service: encode→decode is the
//! identity on any frame sequence, truncation is never an error (just
//! "need more bytes"), and arbitrary garbage produces a typed
//! [`WireError`] — never a panic, and never a silent desync past a known
//! frame boundary.

use proptest::prelude::*;
use spp_server::wire::{
    decode_frame, decode_request, decode_response, encode_multi_request, encode_repl_batch,
    encode_request, encode_response, parse_request, ReplOp, Request, Response, WireError,
    MAX_FRAME, PREFIX,
};

/// Owned mirror of [`Request`] so strategies can generate storage.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OReq {
    Put(Vec<u8>, Vec<u8>),
    Get(Vec<u8>),
    Del(Vec<u8>),
    Stats,
    Flush,
    Shutdown,
    Ping,
    ReplHello(u32),
}

impl OReq {
    fn as_wire(&self) -> Request<'_> {
        match self {
            OReq::Put(k, v) => Request::Put { key: k, value: v },
            OReq::Get(k) => Request::Get { key: k },
            OReq::Del(k) => Request::Del { key: k },
            OReq::Stats => Request::Stats,
            OReq::Flush => Request::Flush,
            OReq::Shutdown => Request::Shutdown,
            OReq::Ping => Request::Ping,
            OReq::ReplHello(n) => Request::ReplHello { shards: *n },
        }
    }
}

/// Owned mirror of [`Response`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum OResp {
    Ok,
    Value(Vec<u8>),
    NotFound,
    Err(String),
    Busy,
    Stats(String),
    Pong,
}

impl OResp {
    fn as_wire(&self) -> Response<'_> {
        match self {
            OResp::Ok => Response::Ok,
            OResp::Value(v) => Response::Value(v),
            OResp::NotFound => Response::NotFound,
            OResp::Err(m) => Response::Err(m),
            OResp::Busy => Response::Busy,
            OResp::Stats(s) => Response::Stats(s),
            OResp::Pong => Response::Pong,
        }
    }
}

fn bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..max)
}

fn req_strategy() -> impl Strategy<Value = OReq> {
    prop_oneof![
        (bytes(48), bytes(160)).prop_map(|(k, v)| OReq::Put(k, v)),
        bytes(48).prop_map(OReq::Get),
        bytes(48).prop_map(OReq::Del),
        Just(OReq::Stats),
        Just(OReq::Flush),
        Just(OReq::Shutdown),
        Just(OReq::Ping),
        any::<u32>().prop_map(OReq::ReplHello),
    ]
}

/// Requests legal inside a `MULTI` batch (no `Shutdown`, no nesting).
fn multi_item_strategy() -> impl Strategy<Value = OReq> {
    prop_oneof![
        (bytes(48), bytes(160)).prop_map(|(k, v)| OReq::Put(k, v)),
        bytes(48).prop_map(OReq::Get),
        bytes(48).prop_map(OReq::Del),
        Just(OReq::Stats),
        Just(OReq::Flush),
        Just(OReq::Ping),
    ]
}

/// One element of a fragmented stream: a plain frame or a `MULTI` batch
/// (whose nested frames give the decoder interior length prefixes to be
/// split across).
#[derive(Debug, Clone, PartialEq, Eq)]
enum OFrame {
    Single(OReq),
    Multi(Vec<OReq>),
}

fn frame_strategy() -> impl Strategy<Value = OFrame> {
    prop_oneof![
        req_strategy().prop_map(OFrame::Single),
        req_strategy().prop_map(OFrame::Single),
        req_strategy().prop_map(OFrame::Single),
        prop::collection::vec(multi_item_strategy(), 1..5).prop_map(OFrame::Multi),
    ]
}

fn encode_oframe(buf: &mut Vec<u8>, f: &OFrame) {
    match f {
        OFrame::Single(r) => encode_request(buf, &r.as_wire()),
        OFrame::Multi(items) => {
            let wire: Vec<Request<'_>> = items.iter().map(OReq::as_wire).collect();
            encode_multi_request(buf, &wire);
        }
    }
}

fn assert_oframe_eq(got: &Request<'_>, want: &OFrame) -> Result<(), TestCaseError> {
    match (got, want) {
        (got, OFrame::Single(r)) => prop_assert_eq!(got, &r.as_wire()),
        (Request::Multi(mb), OFrame::Multi(items)) => {
            let nested: Vec<Request<'_>> = mb.requests().collect();
            let wire: Vec<Request<'_>> = items.iter().map(OReq::as_wire).collect();
            prop_assert_eq!(nested, wire);
        }
        (other, OFrame::Multi(_)) => prop_assert!(false, "expected Multi, got {:?}", other),
    }
    Ok(())
}

/// Model the reactor's read loop: grow the buffer by the given chunks,
/// draining every complete frame after each arrival, and check the drained
/// sequence is exactly the encoded one — no frame early, late, duplicated,
/// reordered, or mangled, and no spurious decode error at any split point.
fn check_fragmented_delivery(
    frames: &[OFrame],
    chunks: impl Iterator<Item = usize>,
) -> Result<(), TestCaseError> {
    let mut bytes = Vec::new();
    for f in frames {
        encode_oframe(&mut bytes, f);
    }
    let mut rbuf: Vec<u8> = Vec::new();
    let mut off = 0;
    let mut next = 0;
    let mut fed = 0;
    for chunk in chunks {
        let take = chunk.clamp(1, bytes.len() - fed);
        rbuf.extend_from_slice(&bytes[fed..fed + take]);
        fed += take;
        while let Some((got, n)) = decode_request(&rbuf[off..]).unwrap() {
            prop_assert!(next < frames.len(), "decoded more frames than were sent");
            assert_oframe_eq(&got, &frames[next])?;
            next += 1;
            off += n;
        }
        if fed == bytes.len() {
            break;
        }
    }
    prop_assert_eq!(next, frames.len(), "stream ended with frames undelivered");
    prop_assert_eq!(off, bytes.len());
    Ok(())
}

/// Owned mirror of [`ReplOp`] so strategies can generate storage.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ORepl {
    Put(Vec<u8>, Vec<u8>),
    Del(Vec<u8>),
}

impl ORepl {
    fn as_wire(&self) -> ReplOp<'_> {
        match self {
            ORepl::Put(k, v) => ReplOp::Put { key: k, value: v },
            ORepl::Del(k) => ReplOp::Del { key: k },
        }
    }
}

fn repl_op_strategy() -> impl Strategy<Value = ORepl> {
    prop_oneof![
        (bytes(48), bytes(160)).prop_map(|(k, v)| ORepl::Put(k, v)),
        bytes(48).prop_map(ORepl::Del),
    ]
}

fn text(max: usize) -> impl Strategy<Value = String> {
    bytes(max).prop_map(|b| b.into_iter().map(|c| (c % 95 + 32) as char).collect())
}

fn resp_strategy() -> impl Strategy<Value = OResp> {
    prop_oneof![
        Just(OResp::Ok),
        bytes(160).prop_map(OResp::Value),
        Just(OResp::NotFound),
        text(60).prop_map(OResp::Err),
        Just(OResp::Busy),
        text(120).prop_map(OResp::Stats),
        Just(OResp::Pong),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode→decode is the identity on any request stream, consuming
    /// exactly the encoded bytes.
    #[test]
    fn request_stream_roundtrips(reqs in prop::collection::vec(req_strategy(), 1..12)) {
        let mut buf = Vec::new();
        for r in &reqs {
            encode_request(&mut buf, &r.as_wire());
        }
        let mut off = 0;
        for r in &reqs {
            let (got, n) = decode_request(&buf[off..]).unwrap().unwrap();
            prop_assert_eq!(got, r.as_wire());
            off += n;
        }
        prop_assert_eq!(off, buf.len());
        prop_assert_eq!(decode_request(&buf[off..]).unwrap(), None);
    }

    /// Same identity for responses.
    #[test]
    fn response_stream_roundtrips(resps in prop::collection::vec(resp_strategy(), 1..12)) {
        let mut buf = Vec::new();
        for r in &resps {
            encode_response(&mut buf, &r.as_wire());
        }
        let mut off = 0;
        for r in &resps {
            let (got, n) = decode_response(&buf[off..]).unwrap().unwrap();
            prop_assert_eq!(got, r.as_wire());
            off += n;
        }
        prop_assert_eq!(off, buf.len());
    }

    /// Any prefix of a valid frame is "need more bytes", never an error —
    /// the server keeps reading instead of dropping a slow client.
    #[test]
    fn truncation_is_never_an_error(req in req_strategy(), frac in 0u32..1000) {
        let mut buf = Vec::new();
        encode_request(&mut buf, &req.as_wire());
        let cut = (frac as usize * buf.len() / 1000).min(buf.len() - 1);
        prop_assert_eq!(decode_request(&buf[..cut]).unwrap(), None);
    }

    /// Arbitrary byte soup never panics the decoder, and every outcome is
    /// one of the three contracted shapes: need-more, a parseable frame, or
    /// a typed error.
    #[test]
    fn garbage_never_panics(soup in bytes(96)) {
        match decode_frame(&soup) {
            Ok(None) => {}
            Ok(Some(frame)) => {
                // Body parsing must also be total.
                let _ = parse_request(&frame);
                prop_assert!(frame.consumed <= soup.len());
                prop_assert!(frame.consumed > PREFIX);
            }
            Err(e) => prop_assert!(e.is_envelope()),
        }
    }

    /// encode→decode is the identity on `MULTI` batches: the count and
    /// every nested frame survive, byte-exactly, in order.
    #[test]
    fn multi_request_roundtrips(items in prop::collection::vec(multi_item_strategy(), 1..10)) {
        let mut buf = Vec::new();
        let wire: Vec<Request<'_>> = items.iter().map(OReq::as_wire).collect();
        encode_multi_request(&mut buf, &wire);
        let (got, n) = decode_request(&buf).unwrap().unwrap();
        prop_assert_eq!(n, buf.len());
        match got {
            Request::Multi(mb) => {
                prop_assert_eq!(usize::from(mb.count()), items.len());
                let nested: Vec<Request<'_>> = mb.requests().collect();
                prop_assert_eq!(nested, wire);
            }
            other => prop_assert!(false, "expected Multi, got {:?}", other),
        }
    }

    /// Fuzzed `MULTI` bodies — arbitrary declared counts over junk nested
    /// length prefixes — never panic and never desync: any rejection is a
    /// body error at a known frame boundary, and the following valid frame
    /// still decodes.
    #[test]
    fn malformed_multi_never_panics_or_desyncs(
        count in 0u16..32,
        junk in bytes(64),
        follow in req_strategy(),
    ) {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((1 + 2 + junk.len()) as u32).to_le_bytes());
        buf.push(0x08); // OP_MULTI
        buf.extend_from_slice(&count.to_le_bytes());
        buf.extend_from_slice(&junk);
        encode_request(&mut buf, &follow.as_wire());

        let frame = decode_frame(&buf).unwrap().unwrap();
        match parse_request(&frame) {
            // Junk that happens to be a valid batch must iterate cleanly.
            Ok(Request::Multi(mb)) => {
                prop_assert_eq!(mb.requests().count(), usize::from(mb.count()));
            }
            Ok(other) => prop_assert!(false, "MULTI opcode parsed as {:?}", other),
            Err(e) => prop_assert!(!e.is_envelope()),
        }
        let (got, n) = decode_request(&buf[frame.consumed..]).unwrap().unwrap();
        prop_assert_eq!(got, follow.as_wire());
        prop_assert_eq!(frame.consumed + n, buf.len());
    }

    /// A frame with a bad opcode or bad payload does not desync the
    /// stream: the next (valid) frame still decodes.
    #[test]
    fn body_errors_resync_at_frame_boundary(
        bad_op in 0x0Cu8..0x80,
        junk in bytes(32),
        follow in req_strategy(),
    ) {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((1 + junk.len()) as u32).to_le_bytes());
        buf.push(bad_op);
        buf.extend_from_slice(&junk);
        encode_request(&mut buf, &follow.as_wire());

        let frame = decode_frame(&buf).unwrap().unwrap();
        let err = parse_request(&frame).unwrap_err();
        prop_assert!(!err.is_envelope());
        let (got, n) = decode_request(&buf[frame.consumed..]).unwrap().unwrap();
        prop_assert_eq!(got, follow.as_wire());
        prop_assert_eq!(frame.consumed + n, buf.len());
    }

    /// Oversized length prefixes are rejected immediately from the prefix
    /// alone — the server never buffers toward an absurd length.
    #[test]
    fn oversized_prefix_rejected_before_buffering(extra in 1u64..u64::from(u32::MAX >> 1)) {
        let len = (MAX_FRAME as u64 + extra).min(u64::from(u32::MAX)) as u32;
        let buf = len.to_le_bytes();
        match decode_frame(&buf) {
            Err(WireError::FrameTooLarge { len: l }) => prop_assert_eq!(l, len as usize),
            other => prop_assert!(false, "expected FrameTooLarge, got {:?}", other),
        }
    }

    /// Byte-at-a-time delivery — the harshest fragmentation the kernel can
    /// produce — splits every frame at every interior boundary, including
    /// mid-length-prefix and mid-nested-`MULTI`; the decoded stream must
    /// still be exactly the sent one.
    #[test]
    fn every_byte_fragmentation_preserves_stream(
        frames in prop::collection::vec(frame_strategy(), 1..8),
    ) {
        check_fragmented_delivery(&frames, std::iter::repeat(1))?;
    }

    /// Arbitrary fragment sizes (1..=9 bytes, cycled) land splits at
    /// unaligned offsets relative to every prefix and opcode; same
    /// identity must hold.
    #[test]
    fn random_fragmentation_preserves_stream(
        frames in prop::collection::vec(frame_strategy(), 1..8),
        sizes in prop::collection::vec(1usize..10, 1..32),
    ) {
        check_fragmented_delivery(&frames, sizes.into_iter().cycle())?;
    }

    /// Truncated PUT key-length prefixes (the classic length-confusion
    /// spot) are body errors with the boundary intact.
    #[test]
    fn put_klen_overflow_is_contained(klen in 1u16..u16::MAX, have in 0usize..8) {
        prop_assume!((klen as usize) > have);
        let mut buf = Vec::new();
        buf.extend_from_slice(&((1 + 2 + have) as u32).to_le_bytes());
        buf.push(0x01); // OP_PUT
        buf.extend_from_slice(&klen.to_le_bytes());
        buf.extend(std::iter::repeat_n(0xABu8, have));
        let frame = decode_frame(&buf).unwrap().unwrap();
        prop_assert_eq!(frame.consumed, buf.len());
        match parse_request(&frame) {
            Err(WireError::BadPayload { .. }) => {}
            other => prop_assert!(false, "expected BadPayload, got {:?}", other),
        }
    }

    /// encode→decode is the identity on `REPL_BATCH` frames — shard, seq,
    /// and every op survive byte-exactly, and re-encoding the parsed body
    /// reproduces the original frame bit for bit (the backup can relay a
    /// batch without ever owning it).
    #[test]
    fn repl_batch_roundtrips_byte_exact(
        shard in any::<u32>(),
        seq in any::<u64>(),
        ops in prop::collection::vec(repl_op_strategy(), 1..12),
    ) {
        let mut buf = Vec::new();
        let wire: Vec<ReplOp<'_>> = ops.iter().map(ORepl::as_wire).collect();
        encode_repl_batch(&mut buf, shard, seq, &wire);
        let (got, n) = decode_request(&buf).unwrap().unwrap();
        prop_assert_eq!(n, buf.len());
        prop_assert!(matches!(got, Request::ReplBatch(_)), "expected ReplBatch, got {:?}", got);
        let Request::ReplBatch(body) = got else {
            unreachable!()
        };
        prop_assert_eq!(body.shard, shard);
        prop_assert_eq!(body.seq, seq);
        prop_assert_eq!(usize::from(body.count()), ops.len());
        let decoded: Vec<ReplOp<'_>> = body.ops().collect();
        prop_assert_eq!(&decoded, &wire);
        // Re-encoding the borrowed body is byte-identical.
        let mut again = Vec::new();
        encode_request(&mut again, &Request::ReplBatch(body));
        prop_assert_eq!(&again, &buf);
    }

    /// Fuzzed `REPL_BATCH` bodies — arbitrary declared counts over junk
    /// entry bytes — never panic and never desync: any rejection is a body
    /// error at a known frame boundary, and the following valid frame
    /// still decodes. A backup fed garbage by a confused primary stays up.
    #[test]
    fn malformed_repl_batch_never_panics_or_desyncs(
        header in bytes(20),
        junk in bytes(64),
        follow in req_strategy(),
    ) {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((1 + header.len() + junk.len()) as u32).to_le_bytes());
        buf.push(0x09); // OP_REPL_BATCH
        buf.extend_from_slice(&header);
        buf.extend_from_slice(&junk);
        encode_request(&mut buf, &follow.as_wire());

        let frame = decode_frame(&buf).unwrap().unwrap();
        match parse_request(&frame) {
            // Junk that happens to be a valid batch must iterate cleanly.
            Ok(Request::ReplBatch(body)) => {
                prop_assert_eq!(body.ops().count(), usize::from(body.count()));
            }
            Ok(other) => prop_assert!(false, "REPL_BATCH opcode parsed as {:?}", other),
            Err(e) => prop_assert!(!e.is_envelope()),
        }
        let (got, n) = decode_request(&buf[frame.consumed..]).unwrap().unwrap();
        prop_assert_eq!(got, follow.as_wire());
        prop_assert_eq!(frame.consumed + n, buf.len());
    }

    /// A truncated `REPL_ACK` (anything but exactly 12 payload bytes) is a
    /// typed body error, never a panic, and the stream resyncs.
    #[test]
    fn short_repl_ack_is_contained(junk in bytes(11)) {
        prop_assume!(junk.len() != 12);
        let mut buf = Vec::new();
        buf.extend_from_slice(&((1 + junk.len()) as u32).to_le_bytes());
        buf.push(0x88); // OP_REPL_ACK
        buf.extend_from_slice(&junk);
        let frame = decode_frame(&buf).unwrap().unwrap();
        prop_assert_eq!(frame.consumed, buf.len());
        match spp_server::wire::parse_response(&frame) {
            Err(WireError::BadPayload { .. }) => {}
            other => prop_assert!(false, "expected BadPayload, got {:?}", other),
        }
    }
}
