//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! Thin wrappers over `std::sync` with parking_lot's ergonomics: no lock
//! poisoning (a panic while holding a guard simply unlocks), `lock()`
//! returning the guard directly, and `try_lock()` returning an `Option`.
//! The workspace uses only `Mutex`, `MutexGuard` and `RwLock`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Take the lock if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Take shared read access if no writer holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Take exclusive write access if the lock is free.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn rwlock_try_paths() {
        let l = RwLock::new(3);
        let r = l.try_read().unwrap();
        assert_eq!(*r, 3);
        // A reader blocks writers but not further readers.
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(r);
        let mut w = l.try_write().unwrap();
        *w = 4;
        assert!(l.try_read().is_none());
        drop(w);
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
