//! Pointer-origin tracking (§IV-E / §V-C).
//!
//! Each register is classified by the way its value is produced:
//! `pmemobj_direct`-derived (here: [`crate::ir::Inst::AllocPm`]) pointers
//! are persistent; `malloc`-derived and arithmetic values are volatile;
//! values loaded from memory or returned by externals are unknown. GEPs
//! propagate their base's class. The join over multiple redefinitions is
//! the usual lattice: equal classes stay, differing ones become `Unknown`.

use std::collections::HashMap;

use crate::ir::{Function, Inst, Reg, Stmt};

/// The three classes of §IV-E.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Origin {
    /// Provably not a PM pointer: no instrumentation needed.
    Volatile,
    /// Provably a tagged PM pointer: `_direct` hooks apply.
    Persistent,
    /// Could be either: instrument with the runtime PM-bit test.
    #[default]
    Unknown,
}

impl Origin {
    fn join(self, other: Origin) -> Origin {
        if self == other {
            self
        } else {
            Origin::Unknown
        }
    }
}

/// Per-register classification for one function.
#[derive(Debug, Default, Clone)]
pub struct Classification {
    origins: HashMap<Reg, Origin>,
}

impl Classification {
    /// The class of `r` (`Unknown` when never seen).
    pub fn of(&self, r: Reg) -> Origin {
        self.origins.get(&r).copied().unwrap_or(Origin::Unknown)
    }

    fn set(&mut self, r: Reg, o: Origin) {
        let cur = self.origins.get(&r).copied();
        let merged = match cur {
            Some(prev) => prev.join(o),
            None => o,
        };
        self.origins.insert(r, merged);
    }
}

/// Run the dataflow over a function. Iterates to a fixed point so that
/// loop-carried redefinitions are joined conservatively.
pub fn classify(f: &Function) -> Classification {
    classify_with_params(f, &[])
}

/// As [`classify`], but seed registers `Reg(0)..Reg(params.len())` with
/// known origins — the LTO pass's interprocedural parameter information.
pub fn classify_with_params(f: &Function, params: &[Origin]) -> Classification {
    let mut cls = Classification::default();
    for (i, &o) in params.iter().enumerate() {
        cls.origins.insert(Reg(i as u32), o);
    }
    // Two passes reach the fixed point for this join-only lattice over a
    // structured body (a value can only move down the lattice once).
    for _ in 0..2 {
        walk(&f.body, &mut cls);
    }
    cls
}

fn walk(stmts: &[Stmt], cls: &mut Classification) {
    for s in stmts {
        match s {
            Stmt::Inst(i) => visit(i, cls),
            Stmt::Loop { counter, body, .. } => {
                cls.set(*counter, Origin::Volatile);
                walk(body, cls);
            }
        }
    }
}

fn visit(i: &Inst, cls: &mut Classification) {
    match i {
        Inst::Const { dst, .. } | Inst::Add { dst, .. } | Inst::Mul { dst, .. } => {
            cls.set(*dst, Origin::Volatile);
        }
        Inst::Copy { dst, src } => {
            let o = cls.of(*src);
            cls.set(*dst, o);
        }
        Inst::AllocPm { dst, .. } => cls.set(*dst, Origin::Persistent),
        Inst::AllocVol { dst, .. } => cls.set(*dst, Origin::Volatile),
        Inst::Gep { dst, base, .. } => {
            let o = cls.of(*base);
            cls.set(*dst, o);
        }
        // A value loaded from memory could be anything (§V-A: "the rest
        // are classified as unknown").
        Inst::Load { dst, .. } => cls.set(*dst, Origin::Unknown),
        Inst::PtrToInt { dst, .. } => cls.set(*dst, Origin::Volatile),
        Inst::Store { .. }
        | Inst::CallExt { .. }
        | Inst::CallInt { .. }
        | Inst::DummyLoad { .. } => {}
        Inst::UpdateTag { .. } => {}
        Inst::CheckBound { dst, .. } => cls.set(*dst, Origin::Volatile), // masked address
        Inst::CleanTag { dst, .. } | Inst::CleanTagExternal { dst, .. } => {
            cls.set(*dst, Origin::Volatile)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Operand;

    #[test]
    fn basic_origins() {
        let mut f = Function::new();
        let pm = f.reg();
        let vol = f.reg();
        let derived = f.reg();
        let loaded = f.reg();
        f.push(Inst::AllocPm {
            dst: pm,
            size: Operand::Const(64),
        });
        f.push(Inst::AllocVol {
            dst: vol,
            size: Operand::Const(64),
        });
        f.push(Inst::Gep {
            dst: derived,
            base: pm,
            offset: Operand::Const(8),
        });
        f.push(Inst::Load {
            dst: loaded,
            ptr: derived,
            size: 8,
        });
        let cls = classify(&f);
        assert_eq!(cls.of(pm), Origin::Persistent);
        assert_eq!(cls.of(vol), Origin::Volatile);
        assert_eq!(cls.of(derived), Origin::Persistent);
        assert_eq!(cls.of(loaded), Origin::Unknown);
    }

    #[test]
    fn redefinition_joins_to_unknown() {
        let mut f = Function::new();
        let p = f.reg();
        f.push(Inst::AllocPm {
            dst: p,
            size: Operand::Const(64),
        });
        f.push(Inst::AllocVol {
            dst: p,
            size: Operand::Const(64),
        });
        let cls = classify(&f);
        assert_eq!(cls.of(p), Origin::Unknown);
    }

    #[test]
    fn gep_in_loop_keeps_class() {
        let mut f = Function::new();
        let p = f.reg();
        let i = f.reg();
        f.push(Inst::AllocPm {
            dst: p,
            size: Operand::Const(1024),
        });
        f.body.push(Stmt::Loop {
            counter: i,
            count: Operand::Const(4),
            body: vec![Stmt::Inst(Inst::Gep {
                dst: p,
                base: p,
                offset: Operand::Const(8),
            })],
        });
        let cls = classify(&f);
        assert_eq!(cls.of(p), Origin::Persistent);
        assert_eq!(cls.of(i), Origin::Volatile);
    }
}
