//! # spp-instrument — the compiler half of SPP, on a miniature IR
//!
//! The paper implements SPP as an LLVM transformation pass plus an LTO
//! pass (§IV-C, §V-A). A Rust reproduction cannot ship an LLVM pass, so
//! this crate rebuilds the *decisions* those passes make on a miniature
//! pointer-language IR and executes the result on a VM wired to the real
//! simulated PM stack:
//!
//! * [`ir`] — registers, pointer/arithmetic/memory instructions, structured
//!   loops, and the SPP hook instructions the pass injects;
//! * [`classify`] — pointer-origin tracking: every register is `Volatile`,
//!   `Persistent` or `Unknown` depending on how it was produced (§IV-E
//!   "pointer tracking");
//! * [`transform`] — the transformation pass: tag updates after pointer
//!   arithmetic, implicit bound checks before dereferences, tag cleaning
//!   before pointer-to-integer casts; volatile pointers are skipped
//!   entirely and proven-persistent ones use the `_direct` hooks;
//! * [`transform::mask_external_calls`] — the LTO pass's compatibility
//!   masking for uninstrumented callees;
//! * [`optimize`] — bound-check preemption: coalescing constant-stride
//!   access runs and hoisting checks out of monotonic loops (§IV-E);
//! * [`vm`] — an interpreter over [`spp_pmdk::ObjPool`] +
//!   [`spp_core::SppRuntime`]: hook instructions call the real runtime
//!   library (with its invocation counters — the ablation metrics), and
//!   dereferences hit the simulated PM with real fault semantics.

pub mod classify;
pub mod ir;
pub mod module;
pub mod optimize;
pub mod transform;
pub mod vm;

pub use classify::Origin;
pub use ir::{Function, Inst, Operand, Reg, Stmt};
pub use module::{lto_classify, spp_transform_module, LtoInfo, Module};
pub use optimize::{hoist_loop_checks, preempt_straightline_checks};
pub use transform::{mask_external_calls, spp_transform, spp_transform_with_params};
pub use vm::{Trap, Vm, VmMode};
