//! The miniature IR.
//!
//! Registers hold 64-bit values and may be redefined (this is a pointer
//! language, not strict SSA — `pm_ptr += 21` redefines `pm_ptr`, exactly as
//! the paper's listings do). A function body is a sequence of statements;
//! loops are structured so the hoisting optimization can reason about them
//! the way LLVM's scalar evolution does.

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Immediate.
    Const(u64),
    /// Register value.
    Reg(Reg),
}

/// Instructions. The first group is what front-ends emit; the hook group
/// (`UpdateTag` … `DummyLoad`) exists only in *transformed* code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = value`.
    Const { dst: Reg, value: u64 },
    /// `dst = a + b` (wrapping).
    Add { dst: Reg, a: Operand, b: Operand },
    /// `dst = a * b` (wrapping).
    Mul { dst: Reg, a: Operand, b: Operand },
    /// `dst = src`.
    Copy { dst: Reg, src: Reg },
    /// Allocate a zeroed PM object; `dst` receives `pmemobj_direct(oid)` —
    /// tagged under the SPP runtime.
    AllocPm { dst: Reg, size: Operand },
    /// Allocate volatile memory (`malloc`); never tagged.
    AllocVol { dst: Reg, size: Operand },
    /// Pointer arithmetic: `dst = base + offset` (a GEP). `dst` may equal
    /// `base`.
    Gep {
        dst: Reg,
        base: Reg,
        offset: Operand,
    },
    /// `dst = *ptr` (`size` bytes, ≤ 8, zero-extended).
    Load { dst: Reg, ptr: Reg, size: u8 },
    /// `*ptr = value` (`size` bytes).
    Store { ptr: Reg, value: Operand, size: u8 },
    /// `dst = (uint64_t)ptr`.
    PtrToInt { dst: Reg, src: Reg },
    /// Call into an uninstrumented external library, passing pointers.
    /// The VM models the callee as reading one byte through each pointer.
    CallExt {
        name: &'static str,
        ptr_args: Vec<Reg>,
    },
    /// Call an *internal* (instrumented) function of the same module: the
    /// callee receives `args[i]` in its register `Reg(i)`. Tagged pointers
    /// flow through unmasked — internal calls keep their tags (§IV-C).
    CallInt { func: usize, args: Vec<Reg> },

    // ---- hook instructions (inserted by the passes) ----
    /// `ptr = __spp_updatetag(ptr, offset)`; `direct` skips the PM-bit test.
    UpdateTag {
        ptr: Reg,
        offset: Operand,
        direct: bool,
    },
    /// `dst = __spp_checkbound(ptr, deref_size)` — the masked address to
    /// dereference.
    CheckBound {
        dst: Reg,
        ptr: Reg,
        deref_size: u8,
        direct: bool,
    },
    /// `dst = __spp_cleantag(src)`.
    CleanTag { dst: Reg, src: Reg },
    /// `dst = __spp_cleantag_external(src)` (before external calls).
    CleanTagExternal { dst: Reg, src: Reg },
    /// The preemption pass's volatile dummy load: faults iff the coalesced
    /// bound check failed.
    DummyLoad { ptr: Reg },
}

/// A statement: straight-line instruction or a counted loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// One instruction.
    Inst(Inst),
    /// `for counter in 0..count { body }` — `counter` is visible to the
    /// body and increments by 1.
    Loop {
        counter: Reg,
        count: Operand,
        body: Vec<Stmt>,
    },
}

/// A function: a register budget and a body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Function {
    /// Number of registers used (register `Reg(n)` for `n < regs`).
    pub regs: u32,
    /// The body.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Create an empty function.
    pub fn new() -> Self {
        Function::default()
    }

    /// Allocate a fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.regs);
        self.regs += 1;
        r
    }

    /// Append an instruction.
    pub fn push(&mut self, inst: Inst) {
        self.body.push(Stmt::Inst(inst));
    }

    /// Count instructions of a kind across the whole body (test/metric
    /// support).
    pub fn count_insts(&self, pred: impl Fn(&Inst) -> bool + Copy) -> usize {
        fn walk(stmts: &[Stmt], pred: impl Fn(&Inst) -> bool + Copy) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Inst(i) => usize::from(pred(i)),
                    Stmt::Loop { body, .. } => walk(body, pred),
                })
                .sum()
        }
        walk(&self.body, pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_distinct_regs() {
        let mut f = Function::new();
        let a = f.reg();
        let b = f.reg();
        assert_ne!(a, b);
        f.push(Inst::Const { dst: a, value: 1 });
        f.body.push(Stmt::Loop {
            counter: b,
            count: Operand::Const(3),
            body: vec![Stmt::Inst(Inst::Add {
                dst: a,
                a: Operand::Reg(a),
                b: Operand::Const(1),
            })],
        });
        assert_eq!(f.count_insts(|i| matches!(i, Inst::Add { .. })), 1);
        assert_eq!(f.count_insts(|i| matches!(i, Inst::Const { .. })), 1);
    }
}
