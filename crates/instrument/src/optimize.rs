//! Bound-check preemption (§IV-E, §V-C): coalesce constant-stride access
//! runs into a single tag update plus a dummy bound-checking load, and
//! hoist checks out of monotonic loops.

use crate::ir::{Function, Inst, Operand, Reg, Stmt};

/// Statistics of an optimization run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OptStats {
    /// Loops whose checks were hoisted to the preheader.
    pub loops_hoisted: usize,
    /// Straight-line runs coalesced.
    pub runs_coalesced: usize,
    /// Hook instructions removed.
    pub hooks_removed: usize,
}

fn fresh(regs: &mut u32) -> Reg {
    let r = Reg(*regs);
    *regs += 1;
    r
}

/// Whether `stmts` reads or writes register `r` anywhere.
fn uses_reg(stmts: &[Stmt], r: Reg) -> bool {
    fn op_uses(op: &Operand, r: Reg) -> bool {
        matches!(op, Operand::Reg(x) if *x == r)
    }
    stmts.iter().any(|s| match s {
        Stmt::Loop {
            counter,
            count,
            body,
        } => *counter == r || op_uses(count, r) || uses_reg(body, r),
        Stmt::Inst(i) => match i {
            Inst::Const { dst, .. } => *dst == r,
            Inst::Add { dst, a, b } | Inst::Mul { dst, a, b } => {
                *dst == r || op_uses(a, r) || op_uses(b, r)
            }
            Inst::Copy { dst, src } => *dst == r || *src == r,
            Inst::AllocPm { dst, size } | Inst::AllocVol { dst, size } => {
                *dst == r || op_uses(size, r)
            }
            Inst::Gep { dst, base, offset } => *dst == r || *base == r || op_uses(offset, r),
            Inst::Load { dst, ptr, .. } => *dst == r || *ptr == r,
            Inst::Store { ptr, value, .. } => *ptr == r || op_uses(value, r),
            Inst::PtrToInt { dst, src } => *dst == r || *src == r,
            Inst::CallExt { ptr_args, .. } => ptr_args.contains(&r),
            Inst::CallInt { args, .. } => args.contains(&r),
            Inst::UpdateTag { ptr, offset, .. } => *ptr == r || op_uses(offset, r),
            Inst::CheckBound { dst, ptr, .. } => *dst == r || *ptr == r,
            Inst::CleanTag { dst, src } | Inst::CleanTagExternal { dst, src } => {
                *dst == r || *src == r
            }
            Inst::DummyLoad { ptr } => *ptr == r,
        },
    })
}

/// The 4-instruction body shape the transformation pass produces for a
/// constant-stride pointer walk.
struct WalkBody {
    ptr: Reg,
    stride: u64,
    deref_size: u8,
    direct: bool,
    access: Inst, // the Load/Store, with its masked reg
    masked: Reg,
}

fn match_walk_body(body: &[Stmt]) -> Option<WalkBody> {
    if body.len() != 4 {
        return None;
    }
    let insts: Vec<&Inst> = body
        .iter()
        .map(|s| match s {
            Stmt::Inst(i) => Some(i),
            Stmt::Loop { .. } => None,
        })
        .collect::<Option<_>>()?;
    let (p, stride) = match insts[0] {
        Inst::Gep {
            dst,
            base,
            offset: Operand::Const(c),
        } if dst == base => (*dst, *c),
        _ => return None,
    };
    let direct = match insts[1] {
        Inst::UpdateTag {
            ptr,
            offset: Operand::Const(c),
            direct,
        } if *ptr == p && *c == stride => *direct,
        _ => return None,
    };
    let (masked, deref_size) = match insts[2] {
        Inst::CheckBound {
            dst,
            ptr,
            deref_size,
            ..
        } if *ptr == p => (*dst, *deref_size),
        _ => return None,
    };
    match insts[3] {
        Inst::Load { ptr, size, .. } | Inst::Store { ptr, size, .. }
            if *ptr == masked && *size == deref_size =>
        {
            Some(WalkBody {
                ptr: p,
                stride,
                deref_size,
                direct,
                access: insts[3].clone(),
                masked,
            })
        }
        _ => None,
    }
}

/// Hoist bound checks out of monotonic constant-stride loops: one
/// preheader tag update + dummy load validates the whole walk; the body
/// then strides a *masked* pointer with zero per-iteration hooks.
///
/// Returns statistics. Loops whose pointer is live-out are left alone.
pub fn hoist_loop_checks(f: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    let mut regs = f.regs;
    let body = std::mem::take(&mut f.body);
    f.body = hoist_walk(body, &mut regs, &mut stats);
    f.regs = regs;
    stats
}

fn hoist_walk(stmts: Vec<Stmt>, regs: &mut u32, stats: &mut OptStats) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    let n = stmts.len();
    let mut iter = stmts.into_iter().enumerate().peekable();
    let mut rest_cache: Vec<Stmt> = Vec::new(); // only used for liveness peeks
    let _ = n;
    while let Some((_, s)) = iter.next() {
        match s {
            Stmt::Loop {
                counter,
                count,
                body,
            } => {
                // Liveness of the walked pointer after this loop: collect
                // remaining statements once.
                rest_cache.clear();
                rest_cache.extend(iter.clone().map(|(_, s)| s));
                if let Some(walk) = match_walk_body(&body) {
                    if !uses_reg(&rest_cache, walk.ptr) {
                        emit_hoisted(&mut out, regs, counter, count, &walk);
                        stats.loops_hoisted += 1;
                        stats.hooks_removed += 2; // per-iteration UpdateTag + CheckBound
                        continue;
                    }
                }
                let body = hoist_walk(body, regs, stats);
                out.push(Stmt::Loop {
                    counter,
                    count,
                    body,
                });
            }
            other => out.push(other),
        }
    }
    out
}

fn emit_hoisted(
    out: &mut Vec<Stmt>,
    regs: &mut u32,
    counter: Reg,
    count: Operand,
    walk: &WalkBody,
) {
    // max byte touched (relative to the incoming pointer):
    //   stride * count + deref_size - 1
    let max_off = fresh(regs);
    match count {
        Operand::Const(n) => out.push(Stmt::Inst(Inst::Const {
            dst: max_off,
            value: walk.stride * n + u64::from(walk.deref_size) - 1,
        })),
        Operand::Reg(_) => {
            out.push(Stmt::Inst(Inst::Mul {
                dst: max_off,
                a: count,
                b: Operand::Const(walk.stride),
            }));
            out.push(Stmt::Inst(Inst::Add {
                dst: max_off,
                a: Operand::Reg(max_off),
                b: Operand::Const(u64::from(walk.deref_size) - 1),
            }));
        }
    }
    // Preheader: single tag update on a copy + dummy bound-checking load.
    let chk = fresh(regs);
    out.push(Stmt::Inst(Inst::Copy {
        dst: chk,
        src: walk.ptr,
    }));
    out.push(Stmt::Inst(Inst::UpdateTag {
        ptr: chk,
        offset: Operand::Reg(max_off),
        direct: walk.direct,
    }));
    let chk_masked = fresh(regs);
    out.push(Stmt::Inst(Inst::CleanTag {
        dst: chk_masked,
        src: chk,
    }));
    out.push(Stmt::Inst(Inst::DummyLoad { ptr: chk_masked }));
    // Body: stride the *masked* pointer — no PM bit, no hooks.
    let m = walk.masked;
    out.push(Stmt::Inst(Inst::CleanTag {
        dst: m,
        src: walk.ptr,
    }));
    out.push(Stmt::Loop {
        counter,
        count,
        body: vec![
            Stmt::Inst(Inst::Gep {
                dst: m,
                base: m,
                offset: Operand::Const(walk.stride),
            }),
            Stmt::Inst(walk.access.clone()),
        ],
    });
}

/// Coalesce straight-line runs of the transformed constant-offset
/// access pattern on one pointer: one preheader check replaces the
/// per-access hooks (the paper's basic-block preemption example).
pub fn preempt_straightline_checks(f: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    let mut regs = f.regs;
    let body = std::mem::take(&mut f.body);
    f.body = preempt_block(body, &mut regs, &mut stats);
    f.regs = regs;
    stats
}

fn preempt_block(stmts: Vec<Stmt>, regs: &mut u32, stats: &mut OptStats) -> Vec<Stmt> {
    // First recurse into loops.
    let stmts: Vec<Stmt> = stmts
        .into_iter()
        .map(|s| match s {
            Stmt::Loop {
                counter,
                count,
                body,
            } => Stmt::Loop {
                counter,
                count,
                body: preempt_block(body, regs, stats),
            },
            other => other,
        })
        .collect();

    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    let mut i = 0;
    while i < stmts.len() {
        // A "group" is [Gep(p, +c); UpdateTag(p, c); CheckBound(m, p, s); Access(m)].
        let (groups, consumed, ptr) = collect_groups(&stmts[i..]);
        if groups.len() >= 2 {
            let p = ptr.expect("groups imply a pointer");
            emit_coalesced(&mut out, regs, p, &groups);
            stats.runs_coalesced += 1;
            stats.hooks_removed += groups.len() * 2 - 1;
            i += consumed;
            continue;
        }
        out.push(stmts[i].clone());
        i += 1;
    }
    out
}

struct Group {
    cum_off: u64,
    access: Inst,
    direct: bool,
}

/// Collect a maximal run of walk groups on a single pointer starting at
/// `stmts[0]`. Returns groups, statements consumed, and the pointer.
fn collect_groups(stmts: &[Stmt]) -> (Vec<Group>, usize, Option<Reg>) {
    let mut groups = Vec::new();
    let mut cum = 0u64;
    let mut idx = 0;
    let mut ptr: Option<Reg> = None;
    while idx + 4 <= stmts.len() {
        let window = &stmts[idx..idx + 4];
        match match_walk_body(window) {
            // Only forward constant strides participate (the paper's
            // "constant pointer increments"); a negative step ends the run.
            Some(w) if (w.stride as i64) > 0 && (ptr.is_none() || ptr == Some(w.ptr)) => {
                ptr = Some(w.ptr);
                cum += w.stride;
                groups.push(Group {
                    cum_off: cum,
                    access: w.access,
                    direct: w.direct,
                });
                idx += 4;
            }
            _ => break,
        }
    }
    (groups, idx, ptr)
}

fn emit_coalesced(out: &mut Vec<Stmt>, regs: &mut u32, p: Reg, groups: &[Group]) {
    let max_needed = groups
        .iter()
        .map(|g| {
            g.cum_off
                + match &g.access {
                    Inst::Load { size, .. } | Inst::Store { size, .. } => u64::from(*size),
                    _ => 1,
                }
                - 1
        })
        .max()
        .expect("nonempty run");
    let total: u64 = groups.last().expect("nonempty").cum_off;
    let direct = groups.iter().all(|g| g.direct);
    // Single check for the whole run.
    let chk = fresh(regs);
    out.push(Stmt::Inst(Inst::Copy { dst: chk, src: p }));
    out.push(Stmt::Inst(Inst::UpdateTag {
        ptr: chk,
        offset: Operand::Const(max_needed),
        direct,
    }));
    let chk_masked = fresh(regs);
    out.push(Stmt::Inst(Inst::CleanTag {
        dst: chk_masked,
        src: chk,
    }));
    out.push(Stmt::Inst(Inst::DummyLoad { ptr: chk_masked }));
    // Masked base; accesses at absolute offsets, hook-free.
    let base = fresh(regs);
    out.push(Stmt::Inst(Inst::CleanTag { dst: base, src: p }));
    for g in groups {
        let addr = fresh(regs);
        out.push(Stmt::Inst(Inst::Gep {
            dst: addr,
            base,
            offset: Operand::Const(g.cum_off),
        }));
        let access = match &g.access {
            Inst::Load { dst, size, .. } => Inst::Load {
                dst: *dst,
                ptr: addr,
                size: *size,
            },
            Inst::Store { value, size, .. } => Inst::Store {
                ptr: addr,
                value: *value,
                size: *size,
            },
            other => other.clone(),
        };
        out.push(Stmt::Inst(access));
    }
    // Keep `p` advanced for any later uses (tag included, one hook).
    out.push(Stmt::Inst(Inst::Gep {
        dst: p,
        base: p,
        offset: Operand::Const(total),
    }));
    out.push(Stmt::Inst(Inst::UpdateTag {
        ptr: p,
        offset: Operand::Const(total),
        direct,
    }));
}
