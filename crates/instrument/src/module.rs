//! Whole-program (module) support: internal calls and the LTO pass's
//! interprocedural pointer tracking (§IV-E, §V-A).
//!
//! "SPP's LTO pass proceeds one step further and analyzes the function
//! pointer arguments. It scans the calling sites of each function and
//! records the type of the pointer arguments passed by the caller. With
//! this method, SPP can determine the category of a function pointer
//! argument, provided that all the callers use pointers falling into a
//! single category."

use crate::classify::{classify_with_params, Classification, Origin};
use crate::ir::{Function, Inst, Stmt};
use crate::transform::{spp_transform_with_params, TransformStats};

/// A whole program: `functions[0]` is the entry point; `CallInt { func }`
/// indexes into this list. Callee parameters are its registers
/// `Reg(0)..Reg(n_args)`.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// The functions; index 0 is the entry point.
    pub functions: Vec<Function>,
}

/// Per-function parameter classifications derived by the LTO analysis.
#[derive(Debug, Clone)]
pub struct LtoInfo {
    /// `params[f][i]` = joined origin of argument `i` across every call
    /// site of function `f` (`Unknown` for the entry function / uncalled
    /// parameters).
    pub params: Vec<Vec<Origin>>,
}

fn call_sites(f: &Function, out: &mut Vec<(usize, Vec<crate::ir::Reg>)>) {
    fn walk(stmts: &[Stmt], out: &mut Vec<(usize, Vec<crate::ir::Reg>)>) {
        for s in stmts {
            match s {
                Stmt::Inst(Inst::CallInt { func, args }) => out.push((*func, args.clone())),
                Stmt::Loop { body, .. } => walk(body, out),
                _ => {}
            }
        }
    }
    walk(&f.body, out);
}

/// Maximum argument count considered (arguments land in `Reg(0..N)`).
fn param_count(m: &Module, f: usize) -> usize {
    let mut n = 0;
    for g in &m.functions {
        let mut sites = Vec::new();
        call_sites(g, &mut sites);
        for (callee, args) in sites {
            if callee == f {
                n = n.max(args.len());
            }
        }
    }
    n
}

/// Run the interprocedural analysis to a fixed point: each function's
/// parameter origins are the join of the argument origins at every call
/// site, where caller classifications themselves depend on *their* callers.
pub fn lto_classify(m: &Module) -> LtoInfo {
    let n = m.functions.len();
    let mut params: Vec<Vec<Origin>> = (0..n)
        .map(|f| vec![Origin::Unknown; param_count(m, f)])
        .collect();
    // Seed optimistically so the first join isn't poisoned by the
    // initial Unknown (join-only lattice ⇒ iterate from "no information").
    let mut seen_any: Vec<Vec<Option<Origin>>> =
        (0..n).map(|f| vec![None; params[f].len()]).collect();
    for _round in 0..n + 1 {
        let mut next: Vec<Vec<Option<Origin>>> =
            (0..n).map(|f| vec![None; params[f].len()]).collect();
        for (caller_idx, caller) in m.functions.iter().enumerate() {
            let seed: Vec<Origin> = seen_any[caller_idx]
                .iter()
                .map(|o| o.unwrap_or(Origin::Unknown))
                .collect();
            let cls = classify_with_params(caller, &seed);
            let mut sites = Vec::new();
            call_sites(caller, &mut sites);
            for (callee, args) in sites {
                for (i, arg) in args.iter().enumerate() {
                    let o = cls.of(*arg);
                    next[callee][i] = Some(match next[callee][i] {
                        None => o,
                        Some(prev) if prev == o => prev,
                        Some(_) => Origin::Unknown,
                    });
                }
            }
        }
        if next == seen_any {
            break;
        }
        seen_any = next;
    }
    for f in 0..n {
        for (i, o) in seen_any[f].iter().enumerate() {
            params[f][i] = o.unwrap_or(Origin::Unknown);
        }
    }
    LtoInfo { params }
}

/// Transform every function of the module, seeding each with the LTO
/// parameter classifications when `lto` is enabled (otherwise parameters
/// are `Unknown`, the intra-procedural baseline).
pub fn spp_transform_module(
    m: &Module,
    pointer_tracking: bool,
    lto: bool,
) -> (Module, Vec<TransformStats>) {
    let info = if lto {
        lto_classify(m)
    } else {
        LtoInfo {
            params: m
                .functions
                .iter()
                .enumerate()
                .map(|(f, _)| vec![Origin::Unknown; param_count(m, f)])
                .collect(),
        }
    };
    let mut out = Module::default();
    let mut stats = Vec::new();
    for (i, f) in m.functions.iter().enumerate() {
        let (t, s) = spp_transform_with_params(f, pointer_tracking, &info.params[i]);
        out.functions.push(t);
        stats.push(s);
    }
    (out, stats)
}

/// Classification of one function given seeded parameter origins —
/// re-exported for tests and tooling.
pub fn classify_function(f: &Function, params: &[Origin]) -> Classification {
    classify_with_params(f, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Inst, Operand, Reg};
    use crate::vm::{Vm, VmMode};
    use spp_core::TagConfig;
    use spp_pm::{PmPool, PoolConfig};
    use spp_pmdk::{ObjPool, PoolOpts};
    use std::sync::Arc;

    /// A callee that dereferences its first argument:
    /// `fn deref(p) { x = *p }`.
    fn deref_callee() -> Function {
        let mut f = Function::new();
        let p = f.reg(); // parameter 0
        let x = f.reg();
        f.push(Inst::Load {
            dst: x,
            ptr: p,
            size: 8,
        });
        f
    }

    fn entry_calling_with(pm_arg: bool, vol_arg: bool) -> Function {
        let mut main = Function::new();
        let pm = main.reg();
        let vol = main.reg();
        main.push(Inst::AllocPm {
            dst: pm,
            size: Operand::Const(64),
        });
        main.push(Inst::AllocVol {
            dst: vol,
            size: Operand::Const(64),
        });
        if pm_arg {
            main.push(Inst::CallInt {
                func: 1,
                args: vec![pm],
            });
        }
        if vol_arg {
            main.push(Inst::CallInt {
                func: 1,
                args: vec![vol],
            });
        }
        main
    }

    #[test]
    fn single_category_callers_classify_the_parameter() {
        let m = Module {
            functions: vec![entry_calling_with(true, false), deref_callee()],
        };
        let info = lto_classify(&m);
        assert_eq!(info.params[1], vec![Origin::Persistent]);

        let m = Module {
            functions: vec![entry_calling_with(false, true), deref_callee()],
        };
        assert_eq!(lto_classify(&m).params[1], vec![Origin::Volatile]);
    }

    #[test]
    fn mixed_callers_fall_back_to_unknown() {
        let m = Module {
            functions: vec![entry_calling_with(true, true), deref_callee()],
        };
        assert_eq!(lto_classify(&m).params[1], vec![Origin::Unknown]);
    }

    #[test]
    fn transitive_classification_through_wrappers() {
        // main -> wrapper(pm) -> deref(arg): both levels classify.
        let mut wrapper = Function::new();
        let p = wrapper.reg();
        wrapper.push(Inst::CallInt {
            func: 2,
            args: vec![p],
        });
        let m = Module {
            functions: vec![entry_calling_with(true, false), wrapper, deref_callee()],
        };
        let info = lto_classify(&m);
        assert_eq!(info.params[1], vec![Origin::Persistent]);
        assert_eq!(info.params[2], vec![Origin::Persistent]);
    }

    #[test]
    fn lto_removes_runtime_type_checks_in_callee() {
        let m = Module {
            functions: vec![entry_calling_with(true, false), deref_callee()],
        };
        // Without LTO the callee's parameter is unknown: checked hooks.
        let (_t, stats) = spp_transform_module(&m, true, false);
        assert_eq!(stats[1].direct_hooks, 0);
        assert_eq!(stats[1].check_bounds, 1);
        // With LTO the parameter is proven persistent: _direct hooks.
        let (_t, stats) = spp_transform_module(&m, true, true);
        assert_eq!(stats[1].direct_hooks, 1);
        // Volatile-only callers prune the callee's instrumentation
        // entirely ("prune injected calls when they have a volatile
        // pointer as argument", §V-A).
        let m = Module {
            functions: vec![entry_calling_with(false, true), deref_callee()],
        };
        let (_t, stats) = spp_transform_module(&m, true, true);
        assert_eq!(stats[1].check_bounds, 0);
        assert_eq!(stats[1].skipped_volatile, 1);
    }

    #[test]
    fn transformed_module_executes_with_tags_flowing_through_calls() {
        let m = Module {
            functions: vec![entry_calling_with(true, false), deref_callee()],
        };
        let (t, _) = spp_transform_module(&m, true, true);
        let pm = Arc::new(PmPool::new(PoolConfig::new(1 << 20)));
        let pool = Arc::new(ObjPool::create(pm, PoolOpts::small()).unwrap());
        let mut vm = Vm::new(pool, TagConfig::default(), VmMode::Spp);
        vm.run_module(&t).unwrap();
        // The callee used a _direct hook: no runtime PM-bit tests anywhere.
        assert_eq!(vm.runtime().stats().pm_bit_tests(), 0);
    }

    #[test]
    fn oob_through_internal_call_still_trapped() {
        // Callee walks one past the object it was handed.
        let mut callee = Function::new();
        let p = callee.reg();
        let x = callee.reg();
        callee.push(Inst::Gep {
            dst: p,
            base: p,
            offset: Operand::Const(64),
        });
        callee.push(Inst::Load {
            dst: x,
            ptr: p,
            size: 8,
        });
        let mut main = Function::new();
        let pm = main.reg();
        main.push(Inst::AllocPm {
            dst: pm,
            size: Operand::Const(64),
        });
        main.push(Inst::CallInt {
            func: 1,
            args: vec![pm],
        });
        let m = Module {
            functions: vec![main, callee],
        };
        let (t, _) = spp_transform_module(&m, true, true);
        let pmp = Arc::new(PmPool::new(PoolConfig::new(1 << 20)));
        let pool = Arc::new(ObjPool::create(pmp, PoolOpts::small()).unwrap());
        let mut vm = Vm::new(pool, TagConfig::default(), VmMode::Spp);
        let err = vm.run_module(&t).unwrap_err();
        assert!(matches!(err, crate::vm::Trap::Overflow { .. }), "got {err}");
        let _ = Reg(0);
    }
}
