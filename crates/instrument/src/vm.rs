//! The executing VM: hook instructions call the real SPP runtime library;
//! memory instructions hit the simulated PM pool (or a volatile arena)
//! with real fault semantics.

use std::sync::Arc;

use spp_core::{SppRuntime, TagConfig, OVERFLOW_BIT};
use spp_pmdk::ObjPool;

use crate::ir::{Function, Inst, Operand, Reg, Stmt};

/// Whether the VM models an uninstrumented (native) or SPP build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmMode {
    /// `pmemobj_direct` returns raw addresses; hook instructions would be
    /// absent from a native build (executing them anyway is a no-op on
    /// untagged pointers).
    Native,
    /// `pmemobj_direct` returns tagged pointers; the program must have been
    /// through [`crate::spp_transform`] or dereferences of tagged pointers
    /// fault.
    Spp,
    /// The §VII generalisation: volatile allocations are tagged too, so the
    /// same overflow-bit mechanism protects both memories (at the cost of
    /// instrumenting every pointer — run the transform with pointer
    /// tracking disabled so volatile pointers keep their hooks).
    SppAll,
}

/// A runtime trap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Access to an unmapped address whose overflow bit was set: an SPP
    /// detection.
    Overflow {
        /// Faulting address.
        va: u64,
    },
    /// Wild access to an unmapped address.
    Fault {
        /// Faulting address.
        va: u64,
    },
    /// PM allocation failed.
    OutOfMemory,
    /// Malformed program (e.g. register out of range).
    BadProgram(String),
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::Overflow { va } => write!(f, "pm buffer overflow trapped at {va:#x}"),
            Trap::Fault { va } => write!(f, "segmentation fault at {va:#x}"),
            Trap::OutOfMemory => write!(f, "pm allocation failed"),
            Trap::BadProgram(m) => write!(f, "bad program: {m}"),
        }
    }
}

impl std::error::Error for Trap {}

// Kept inside the default encoding's 29 addressable bits (SPP+T spends 7
// on the generation field) and above the pool region at 128 MiB, so tagged
// volatile pointers (VmMode::SppAll) resolve after masking.
const ARENA_BASE: u64 = 0x1000_0000;

/// The interpreter.
pub struct Vm {
    pool: Arc<ObjPool>,
    runtime: SppRuntime,
    mode: VmMode,
    arena: Vec<u8>,
    arena_used: usize,
    regs: Vec<u64>,
}

impl Vm {
    /// Create a VM over `pool` with the given encoding and build mode.
    pub fn new(pool: Arc<ObjPool>, cfg: TagConfig, mode: VmMode) -> Self {
        Vm {
            pool,
            runtime: SppRuntime::new(cfg),
            mode,
            arena: vec![0u8; 1 << 20],
            arena_used: 0,
            regs: Vec::new(),
        }
    }

    /// The runtime library (hook invocation counters for ablations).
    pub fn runtime(&self) -> &SppRuntime {
        &self.runtime
    }

    /// Value of a register after [`Vm::run`].
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs.get(r.0 as usize).copied().unwrap_or(0)
    }

    /// Execute a function.
    ///
    /// # Errors
    ///
    /// A [`Trap`] — including [`Trap::Overflow`] for SPP detections.
    pub fn run(&mut self, f: &Function) -> Result<(), Trap> {
        self.regs = vec![0; f.regs as usize];
        let module = crate::module::Module {
            functions: vec![f.clone()],
        };
        self.exec_block(&f.body, &module)
    }

    /// Execute a whole module from its entry function (index 0), following
    /// internal calls.
    ///
    /// # Errors
    ///
    /// A [`Trap`], or [`Trap::BadProgram`] for out-of-range call targets.
    pub fn run_module(&mut self, m: &crate::module::Module) -> Result<(), Trap> {
        let entry = m
            .functions
            .first()
            .ok_or_else(|| Trap::BadProgram("empty module".into()))?;
        self.regs = vec![0; entry.regs as usize];
        self.exec_block(&entry.body, m)
    }

    fn exec_block(&mut self, stmts: &[Stmt], m: &crate::module::Module) -> Result<(), Trap> {
        for s in stmts {
            match s {
                Stmt::Inst(Inst::CallInt { func, args }) => {
                    let callee = m
                        .functions
                        .get(*func)
                        .ok_or_else(|| Trap::BadProgram(format!("no function {func}")))?;
                    let mut frame = vec![0u64; callee.regs as usize];
                    for (i, &arg) in args.iter().enumerate() {
                        if i < frame.len() {
                            frame[i] = self.eval(Operand::Reg(arg));
                        }
                    }
                    let saved = std::mem::replace(&mut self.regs, frame);
                    let result = self.exec_block(&callee.body, m);
                    self.regs = saved;
                    result?;
                }
                Stmt::Inst(i) => self.exec_inst(i)?,
                Stmt::Loop {
                    counter,
                    count,
                    body,
                } => {
                    let n = self.eval(*count);
                    for i in 0..n {
                        self.set(*counter, i)?;
                        self.exec_block(body, m)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn eval(&self, op: Operand) -> u64 {
        match op {
            Operand::Const(c) => c,
            Operand::Reg(r) => self.regs.get(r.0 as usize).copied().unwrap_or(0),
        }
    }

    fn set(&mut self, r: Reg, v: u64) -> Result<(), Trap> {
        match self.regs.get_mut(r.0 as usize) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(Trap::BadProgram(format!("register {r:?} out of range"))),
        }
    }

    fn classify_unmapped(va: u64) -> Trap {
        if va & OVERFLOW_BIT != 0 {
            Trap::Overflow { va }
        } else {
            Trap::Fault { va }
        }
    }

    fn read_mem(&self, va: u64, len: usize) -> Result<u64, Trap> {
        let mut buf = [0u8; 8];
        if let Ok(off) = self.pool.pm().resolve(va, len) {
            self.pool
                .read(off, &mut buf[..len])
                .map_err(|_| Trap::Fault { va })?;
            return Ok(u64::from_le_bytes(buf));
        }
        let a = va.wrapping_sub(ARENA_BASE) as usize;
        if va >= ARENA_BASE && a + len <= self.arena.len() {
            buf[..len].copy_from_slice(&self.arena[a..a + len]);
            return Ok(u64::from_le_bytes(buf));
        }
        Err(Self::classify_unmapped(va))
    }

    fn write_mem(&mut self, va: u64, value: u64, len: usize) -> Result<(), Trap> {
        let bytes = value.to_le_bytes();
        if let Ok(off) = self.pool.pm().resolve(va, len) {
            self.pool
                .write(off, &bytes[..len])
                .map_err(|_| Trap::Fault { va })?;
            return Ok(());
        }
        let a = va.wrapping_sub(ARENA_BASE) as usize;
        if va >= ARENA_BASE && a + len <= self.arena.len() {
            self.arena[a..a + len].copy_from_slice(&bytes[..len]);
            return Ok(());
        }
        Err(Self::classify_unmapped(va))
    }

    fn exec_inst(&mut self, i: &Inst) -> Result<(), Trap> {
        match i {
            Inst::Const { dst, value } => self.set(*dst, *value),
            Inst::Add { dst, a, b } => {
                let v = self.eval(*a).wrapping_add(self.eval(*b));
                self.set(*dst, v)
            }
            Inst::Mul { dst, a, b } => {
                let v = self.eval(*a).wrapping_mul(self.eval(*b));
                self.set(*dst, v)
            }
            Inst::Copy { dst, src } => {
                let v = self.eval(Operand::Reg(*src));
                self.set(*dst, v)
            }
            Inst::AllocPm { dst, size } => {
                let size = self.eval(*size).max(1);
                let oid = self.pool.zalloc(size).map_err(|_| Trap::OutOfMemory)?;
                let va = self.pool.pm().base() + oid.off;
                let ptr = match self.mode {
                    VmMode::Native => va,
                    VmMode::Spp | VmMode::SppAll => self.runtime.config().make_tagged(va, size),
                };
                self.set(*dst, ptr)
            }
            Inst::AllocVol { dst, size } => {
                let size = self.eval(*size).max(1) as usize;
                let aligned = size.next_multiple_of(16);
                if self.arena_used + aligned > self.arena.len() {
                    return Err(Trap::OutOfMemory);
                }
                let va = ARENA_BASE + self.arena_used as u64;
                self.arena_used += aligned;
                let ptr = match self.mode {
                    // The §VII extension tags volatile pointers identically.
                    VmMode::SppAll => self.runtime.config().make_tagged(va, size as u64),
                    VmMode::Native | VmMode::Spp => va,
                };
                self.set(*dst, ptr)
            }
            Inst::Gep { dst, base, offset } => {
                // A *plain* GEP: address arithmetic only. The tag moves via
                // the injected UpdateTag (or doesn't, in a native build —
                // which is fine: native pointers carry no tag).
                let v = self
                    .eval(Operand::Reg(*base))
                    .wrapping_add(self.eval(*offset));
                self.set(*dst, v)
            }
            Inst::Load { dst, ptr, size } => {
                let va = self.eval(Operand::Reg(*ptr));
                let v = self.read_mem(va, *size as usize)?;
                self.set(*dst, v)
            }
            Inst::Store { ptr, value, size } => {
                let va = self.eval(Operand::Reg(*ptr));
                let v = self.eval(*value);
                self.write_mem(va, v, *size as usize)
            }
            Inst::PtrToInt { dst, src } => {
                let v = self.eval(Operand::Reg(*src));
                self.set(*dst, v)
            }
            Inst::CallInt { .. } => {
                unreachable!("CallInt handled in exec_block")
            }
            Inst::CallExt { ptr_args, .. } => {
                // The uninstrumented callee dereferences each pointer.
                for &arg in ptr_args {
                    let va = self.eval(Operand::Reg(arg));
                    self.read_mem(va, 1)?;
                }
                Ok(())
            }
            Inst::UpdateTag {
                ptr,
                offset,
                direct,
            } => {
                let va = self.eval(Operand::Reg(*ptr));
                let off = self.eval(*offset) as i64;
                let v = if *direct {
                    self.runtime.updatetag_direct(va, off)
                } else {
                    self.runtime.updatetag(va, off)
                };
                self.set(*ptr, v)
            }
            Inst::CheckBound {
                dst,
                ptr,
                deref_size,
                direct,
            } => {
                let va = self.eval(Operand::Reg(*ptr));
                let v = if *direct {
                    self.runtime.checkbound_direct(va, u64::from(*deref_size))
                } else {
                    self.runtime.checkbound(va, u64::from(*deref_size))
                };
                self.set(*dst, v)
            }
            Inst::CleanTag { dst, src } => {
                let va = self.eval(Operand::Reg(*src));
                let v = self.runtime.cleantag(va);
                self.set(*dst, v)
            }
            Inst::CleanTagExternal { dst, src } => {
                let va = self.eval(Operand::Reg(*src));
                let v = self.runtime.cleantag_external(va);
                self.set(*dst, v)
            }
            Inst::DummyLoad { ptr } => {
                let va = self.eval(Operand::Reg(*ptr));
                self.read_mem(va, 1)?;
                Ok(())
            }
        }
    }
}

/// An SPP pointer dereferenced without instrumentation carries the PM bit
/// and resolves nowhere — exactly how real tagged pointers behave. Tests
/// live in `tests/pipeline.rs`.
#[cfg(test)]
mod tests {
    use super::*;
    use spp_pm::{PmPool, PoolConfig};
    use spp_pmdk::PoolOpts;

    use spp_core::is_pm_ptr;

    fn vm(mode: VmMode) -> Vm {
        let pm = Arc::new(PmPool::new(PoolConfig::new(1 << 20)));
        let pool = Arc::new(ObjPool::create(pm, PoolOpts::small()).unwrap());
        Vm::new(pool, TagConfig::default(), mode)
    }

    #[test]
    fn native_alloc_and_access() {
        let mut f = Function::new();
        let p = f.reg();
        let x = f.reg();
        f.push(Inst::AllocPm {
            dst: p,
            size: Operand::Const(64),
        });
        f.push(Inst::Store {
            ptr: p,
            value: Operand::Const(0xAB),
            size: 8,
        });
        f.push(Inst::Load {
            dst: x,
            ptr: p,
            size: 8,
        });
        let mut vm = vm(VmMode::Native);
        vm.run(&f).unwrap();
        assert_eq!(vm.reg(x), 0xAB);
    }

    #[test]
    fn tagged_pointer_without_hooks_faults() {
        // An SPP build whose code was NOT transformed: the tagged pointer
        // reaches the load raw and resolves nowhere.
        let mut f = Function::new();
        let p = f.reg();
        f.push(Inst::AllocPm {
            dst: p,
            size: Operand::Const(64),
        });
        f.push(Inst::Store {
            ptr: p,
            value: Operand::Const(1),
            size: 8,
        });
        let mut vm = vm(VmMode::Spp);
        let err = vm.run(&f).unwrap_err();
        assert!(matches!(err, Trap::Fault { .. } | Trap::Overflow { .. }));
    }

    #[test]
    fn volatile_arena_roundtrip() {
        let mut f = Function::new();
        let p = f.reg();
        let x = f.reg();
        f.push(Inst::AllocVol {
            dst: p,
            size: Operand::Const(32),
        });
        f.push(Inst::Store {
            ptr: p,
            value: Operand::Const(7),
            size: 4,
        });
        f.push(Inst::Load {
            dst: x,
            ptr: p,
            size: 4,
        });
        let mut vm = vm(VmMode::Spp);
        vm.run(&f).unwrap();
        assert_eq!(vm.reg(x), 7);
        assert!(!is_pm_ptr(vm.reg(p)));
    }
}
