//! The SPP transformation pass and the LTO external-call masking (§IV-C).

use crate::classify::{classify, Origin};
use crate::ir::{Function, Inst, Reg, Stmt};

/// Statistics of one transformation run — the numbers the ablation study
/// reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransformStats {
    /// `__spp_updatetag` call sites inserted.
    pub update_tags: usize,
    /// `__spp_checkbound` call sites inserted.
    pub check_bounds: usize,
    /// `__spp_cleantag` call sites inserted (ptr-to-int).
    pub clean_tags: usize,
    /// Hook insertions *skipped* because pointer tracking proved the
    /// operand volatile.
    pub skipped_volatile: usize,
    /// Hooks emitted as `_direct` variants (proven persistent).
    pub direct_hooks: usize,
}

/// Run the transformation pass: inject tag updates after GEPs, bound
/// checks before dereferences, and tag cleaning before pointer-to-int
/// conversions. With `pointer_tracking` enabled (the default in the
/// paper), volatile pointers are skipped and persistent ones use the
/// `_direct` hooks; without it, every pointer is treated as unknown (the
/// ablation baseline).
pub fn spp_transform(f: &Function, pointer_tracking: bool) -> (Function, TransformStats) {
    spp_transform_with_params(f, pointer_tracking, &[])
}

/// As [`spp_transform`], with seeded parameter origins from the LTO pass
/// (see [`crate::module::lto_classify`]).
pub fn spp_transform_with_params(
    f: &Function,
    pointer_tracking: bool,
    params: &[crate::classify::Origin],
) -> (Function, TransformStats) {
    let cls = crate::classify::classify_with_params(f, params);
    let mut out = Function {
        regs: f.regs,
        body: Vec::new(),
    };
    let mut stats = TransformStats::default();
    let origin_of = |r: Reg| {
        if pointer_tracking {
            cls.of(r)
        } else {
            Origin::Unknown
        }
    };
    out.body = walk(&f.body, &mut out.regs, &origin_of, &mut stats);
    (out, stats)
}

fn walk(
    stmts: &[Stmt],
    regs: &mut u32,
    origin_of: &impl Fn(Reg) -> Origin,
    stats: &mut TransformStats,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len() * 2);
    for s in stmts {
        match s {
            Stmt::Loop {
                counter,
                count,
                body,
            } => {
                let body = walk(body, regs, origin_of, stats);
                out.push(Stmt::Loop {
                    counter: *counter,
                    count: *count,
                    body,
                });
            }
            Stmt::Inst(i) => transform_inst(i, regs, origin_of, stats, &mut out),
        }
    }
    out
}

fn fresh(regs: &mut u32) -> Reg {
    let r = Reg(*regs);
    *regs += 1;
    r
}

fn transform_inst(
    i: &Inst,
    regs: &mut u32,
    origin_of: &impl Fn(Reg) -> Origin,
    stats: &mut TransformStats,
    out: &mut Vec<Stmt>,
) {
    match i {
        Inst::Gep { dst, base, offset } => {
            let origin = origin_of(*base);
            out.push(Stmt::Inst(i.clone()));
            match origin {
                Origin::Volatile => stats.skipped_volatile += 1,
                Origin::Persistent | Origin::Unknown => {
                    let direct = origin == Origin::Persistent;
                    if direct {
                        stats.direct_hooks += 1;
                    }
                    stats.update_tags += 1;
                    out.push(Stmt::Inst(Inst::UpdateTag {
                        ptr: *dst,
                        offset: *offset,
                        direct,
                    }));
                }
            }
        }
        Inst::Load { dst, ptr, size } => match origin_of(*ptr) {
            Origin::Volatile => {
                stats.skipped_volatile += 1;
                out.push(Stmt::Inst(i.clone()));
            }
            origin => {
                let direct = origin == Origin::Persistent;
                if direct {
                    stats.direct_hooks += 1;
                }
                stats.check_bounds += 1;
                let masked = fresh(regs);
                out.push(Stmt::Inst(Inst::CheckBound {
                    dst: masked,
                    ptr: *ptr,
                    deref_size: *size,
                    direct,
                }));
                out.push(Stmt::Inst(Inst::Load {
                    dst: *dst,
                    ptr: masked,
                    size: *size,
                }));
            }
        },
        Inst::Store { ptr, value, size } => match origin_of(*ptr) {
            Origin::Volatile => {
                stats.skipped_volatile += 1;
                out.push(Stmt::Inst(i.clone()));
            }
            origin => {
                let direct = origin == Origin::Persistent;
                if direct {
                    stats.direct_hooks += 1;
                }
                stats.check_bounds += 1;
                let masked = fresh(regs);
                out.push(Stmt::Inst(Inst::CheckBound {
                    dst: masked,
                    ptr: *ptr,
                    deref_size: *size,
                    direct,
                }));
                out.push(Stmt::Inst(Inst::Store {
                    ptr: masked,
                    value: *value,
                    size: *size,
                }));
            }
        },
        Inst::PtrToInt { dst, src } => match origin_of(*src) {
            Origin::Volatile => {
                stats.skipped_volatile += 1;
                out.push(Stmt::Inst(i.clone()));
            }
            _ => {
                stats.clean_tags += 1;
                let cleaned = fresh(regs);
                out.push(Stmt::Inst(Inst::CleanTag {
                    dst: cleaned,
                    src: *src,
                }));
                out.push(Stmt::Inst(Inst::PtrToInt {
                    dst: *dst,
                    src: cleaned,
                }));
            }
        },
        other => out.push(Stmt::Inst(other.clone())),
    }
}

/// The LTO pass's compatibility step (§IV-C): mask the tag off every
/// pointer argument right before an external (uninstrumented) call.
/// Returns the number of arguments masked.
pub fn mask_external_calls(f: &mut Function) -> usize {
    let cls = classify(f);
    let mut regs = f.regs;
    let mut masked_count = 0;
    let body = std::mem::take(&mut f.body);
    f.body = mask_walk(body, &cls, &mut regs, &mut masked_count);
    f.regs = regs;
    masked_count
}

fn mask_walk(
    stmts: Vec<Stmt>,
    cls: &crate::classify::Classification,
    regs: &mut u32,
    masked_count: &mut usize,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Loop {
                counter,
                count,
                body,
            } => {
                let body = mask_walk(body, cls, regs, masked_count);
                out.push(Stmt::Loop {
                    counter,
                    count,
                    body,
                });
            }
            Stmt::Inst(Inst::CallExt { name, ptr_args }) => {
                let mut new_args = Vec::with_capacity(ptr_args.len());
                for arg in ptr_args {
                    if cls.of(arg) == Origin::Volatile {
                        new_args.push(arg);
                        continue;
                    }
                    let cleaned = fresh(regs);
                    out.push(Stmt::Inst(Inst::CleanTagExternal {
                        dst: cleaned,
                        src: arg,
                    }));
                    new_args.push(cleaned);
                    *masked_count += 1;
                }
                out.push(Stmt::Inst(Inst::CallExt {
                    name,
                    ptr_args: new_args,
                }));
            }
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Operand;

    fn sample() -> Function {
        let mut f = Function::new();
        let pm = f.reg();
        let vol = f.reg();
        let x = f.reg();
        f.push(Inst::AllocPm {
            dst: pm,
            size: Operand::Const(64),
        });
        f.push(Inst::AllocVol {
            dst: vol,
            size: Operand::Const(64),
        });
        f.push(Inst::Gep {
            dst: pm,
            base: pm,
            offset: Operand::Const(8),
        });
        f.push(Inst::Gep {
            dst: vol,
            base: vol,
            offset: Operand::Const(8),
        });
        f.push(Inst::Load {
            dst: x,
            ptr: pm,
            size: 8,
        });
        f.push(Inst::Store {
            ptr: vol,
            value: Operand::Reg(x),
            size: 8,
        });
        f
    }

    #[test]
    fn tracking_skips_volatile_and_directs_persistent() {
        let (t, stats) = spp_transform(&sample(), true);
        assert_eq!(stats.update_tags, 1); // only the PM gep
        assert_eq!(stats.check_bounds, 1); // only the PM load
        assert_eq!(stats.skipped_volatile, 2); // vol gep + vol store
        assert_eq!(stats.direct_hooks, 2); // both PM hooks proven persistent
        assert_eq!(
            t.count_insts(|i| matches!(i, Inst::UpdateTag { direct: true, .. })),
            1
        );
    }

    #[test]
    fn without_tracking_everything_instrumented() {
        let (t, stats) = spp_transform(&sample(), false);
        assert_eq!(stats.update_tags, 2);
        assert_eq!(stats.check_bounds, 2);
        assert_eq!(stats.skipped_volatile, 0);
        assert_eq!(stats.direct_hooks, 0);
        assert_eq!(t.count_insts(|i| matches!(i, Inst::CheckBound { .. })), 2);
    }

    #[test]
    fn ptrtoint_gets_cleaned() {
        let mut f = Function::new();
        let pm = f.reg();
        let n = f.reg();
        f.push(Inst::AllocPm {
            dst: pm,
            size: Operand::Const(8),
        });
        f.push(Inst::PtrToInt { dst: n, src: pm });
        let (t, stats) = spp_transform(&f, true);
        assert_eq!(stats.clean_tags, 1);
        assert_eq!(t.count_insts(|i| matches!(i, Inst::CleanTag { .. })), 1);
    }

    #[test]
    fn external_calls_masked_only_for_pm_args() {
        let mut f = Function::new();
        let pm = f.reg();
        let vol = f.reg();
        f.push(Inst::AllocPm {
            dst: pm,
            size: Operand::Const(8),
        });
        f.push(Inst::AllocVol {
            dst: vol,
            size: Operand::Const(8),
        });
        f.push(Inst::CallExt {
            name: "write",
            ptr_args: vec![pm, vol],
        });
        let masked = mask_external_calls(&mut f);
        assert_eq!(masked, 1);
        assert_eq!(
            f.count_insts(|i| matches!(i, Inst::CleanTagExternal { .. })),
            1
        );
    }
}
