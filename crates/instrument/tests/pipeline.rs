//! End-to-end compiler-pipeline tests: build program → classify →
//! transform → optimize → execute on the VM, checking both semantics and
//! hook-count ablations.

use std::sync::Arc;

use spp_core::TagConfig;
use spp_instrument::{
    hoist_loop_checks, mask_external_calls, preempt_straightline_checks, spp_transform, Function,
    Inst, Operand, Stmt, Trap, Vm, VmMode,
};
use spp_pm::{PmPool, PoolConfig};
use spp_pmdk::{ObjPool, PoolOpts};

fn vm(mode: VmMode) -> Vm {
    let pm = Arc::new(PmPool::new(PoolConfig::new(1 << 20)));
    let pool = Arc::new(ObjPool::create(pm, PoolOpts::small()).unwrap());
    Vm::new(pool, TagConfig::default(), mode)
}

/// `p = alloc_pm((slots+1)*8); for i in 0..iters { p += 8; x = *p }`.
fn walk_program(slots: u64, iters: u64) -> (Function, spp_instrument::Reg) {
    let mut f = Function::new();
    let p = f.reg();
    let x = f.reg();
    let i = f.reg();
    f.push(Inst::AllocPm {
        dst: p,
        size: Operand::Const((slots + 1) * 8),
    });
    f.body.push(Stmt::Loop {
        counter: i,
        count: Operand::Const(iters),
        body: vec![
            Stmt::Inst(Inst::Gep {
                dst: p,
                base: p,
                offset: Operand::Const(8),
            }),
            Stmt::Inst(Inst::Load {
                dst: x,
                ptr: p,
                size: 8,
            }),
        ],
    });
    (f, x)
}

#[test]
fn transformed_walk_runs_in_bounds() {
    let (f, _) = walk_program(16, 16);
    let (t, stats) = spp_transform(&f, true);
    assert_eq!(stats.update_tags, 1);
    assert_eq!(stats.check_bounds, 1);
    let mut vm = vm(VmMode::Spp);
    vm.run(&t).unwrap();
    // Hooks ran once per iteration.
    assert_eq!(vm.runtime().stats().update_tag(), 16);
    assert_eq!(vm.runtime().stats().check_bound(), 16);
    // Pointer tracking proved the pointer persistent: zero runtime PM-bit
    // tests.
    assert_eq!(vm.runtime().stats().pm_bit_tests(), 0);
}

#[test]
fn transformed_walk_traps_out_of_bounds() {
    let (f, _) = walk_program(16, 17); // one step too far
    let (t, _) = spp_transform(&f, true);
    let mut vm = vm(VmMode::Spp);
    let err = vm.run(&t).unwrap_err();
    assert!(matches!(err, Trap::Overflow { .. }), "got {err}");
}

#[test]
fn native_build_misses_the_same_overflow() {
    let (f, _) = walk_program(16, 17);
    let mut vm = vm(VmMode::Native);
    // Uninstrumented, untagged: the over-read lands in the adjacent heap
    // block and is silent.
    vm.run(&f).unwrap();
}

#[test]
fn without_pointer_tracking_pm_bit_tests_appear() {
    let (f, _) = walk_program(8, 8);
    let (t, _) = spp_transform(&f, false);
    let mut vm = vm(VmMode::Spp);
    vm.run(&t).unwrap();
    assert_eq!(vm.runtime().stats().pm_bit_tests(), 16); // 8 updates + 8 checks
}

#[test]
fn hoisting_removes_per_iteration_hooks() {
    let (f, _) = walk_program(64, 64);
    let (mut t, _) = spp_transform(&f, true);
    let stats = hoist_loop_checks(&mut t);
    assert_eq!(stats.loops_hoisted, 1);
    let mut m = vm(VmMode::Spp);
    m.run(&t).unwrap();
    // One preheader update instead of 64; zero per-iteration checks.
    assert_eq!(m.runtime().stats().update_tag(), 1);
    assert_eq!(m.runtime().stats().check_bound(), 0);
}

#[test]
fn hoisted_walk_still_traps_out_of_bounds() {
    let (f, _) = walk_program(64, 65);
    let (mut t, _) = spp_transform(&f, true);
    assert_eq!(hoist_loop_checks(&mut t).loops_hoisted, 1);
    let mut m = vm(VmMode::Spp);
    let err = m.run(&t).unwrap_err();
    assert!(matches!(err, Trap::Overflow { .. }), "got {err}");
}

#[test]
fn hoisting_skips_loops_whose_pointer_is_live_out() {
    let (mut f, _) = walk_program(8, 8);
    // Use the pointer after the loop: hoisting must not fire.
    let y = f.reg();
    let p = spp_instrument::Reg(0);
    f.push(Inst::Load {
        dst: y,
        ptr: p,
        size: 8,
    });
    let (mut t, _) = spp_transform(&f, true);
    assert_eq!(hoist_loop_checks(&mut t).loops_hoisted, 0);
    let mut m = vm(VmMode::Spp);
    m.run(&t).unwrap();
}

/// The paper's §IV-E straight-line example: consecutive constant
/// increments and dereferences of one pointer.
fn straightline_program(accesses: u64, object_slots: u64) -> Function {
    let mut f = Function::new();
    let p = f.reg();
    let x = f.reg();
    f.push(Inst::AllocPm {
        dst: p,
        size: Operand::Const((object_slots + 1) * 8),
    });
    for _ in 0..accesses {
        f.push(Inst::Gep {
            dst: p,
            base: p,
            offset: Operand::Const(8),
        });
        f.push(Inst::Load {
            dst: x,
            ptr: p,
            size: 8,
        });
    }
    f
}

#[test]
fn preemption_coalesces_the_run() {
    let f = straightline_program(4, 8);
    let (mut t, _) = spp_transform(&f, true);
    let stats = preempt_straightline_checks(&mut t);
    assert_eq!(stats.runs_coalesced, 1);
    let mut m = vm(VmMode::Spp);
    m.run(&t).unwrap();
    // One preheader update + one trailing pointer-advance update; zero
    // per-access checks.
    assert_eq!(m.runtime().stats().check_bound(), 0);
    assert_eq!(m.runtime().stats().update_tag(), 2);
}

#[test]
fn preempted_run_still_traps() {
    let f = straightline_program(4, 2); // 4 accesses into a 3-slot object
    let (mut t, _) = spp_transform(&f, true);
    assert_eq!(preempt_straightline_checks(&mut t).runs_coalesced, 1);
    let mut m = vm(VmMode::Spp);
    let err = m.run(&t).unwrap_err();
    assert!(matches!(err, Trap::Overflow { .. }), "got {err}");
}

#[test]
fn preemption_preserves_values() {
    // Store then reload through the coalesced path; values must match the
    // unoptimized run.
    let mut f = Function::new();
    let p = f.reg();
    let x = f.reg();
    f.push(Inst::AllocPm {
        dst: p,
        size: Operand::Const(64),
    });
    for k in 0..3u64 {
        f.push(Inst::Gep {
            dst: p,
            base: p,
            offset: Operand::Const(8),
        });
        f.push(Inst::Store {
            ptr: p,
            value: Operand::Const(100 + k),
            size: 8,
        });
    }
    // Walk back and read the first stored slot.
    f.push(Inst::Gep {
        dst: p,
        base: p,
        offset: Operand::Const(-16i64 as u64),
    });
    f.push(Inst::Load {
        dst: x,
        ptr: p,
        size: 8,
    });

    let (t_plain, _) = spp_transform(&f, true);
    let mut m1 = vm(VmMode::Spp);
    m1.run(&t_plain).unwrap();

    let (mut t_opt, _) = spp_transform(&f, true);
    preempt_straightline_checks(&mut t_opt);
    let mut m2 = vm(VmMode::Spp);
    m2.run(&t_opt).unwrap();

    assert_eq!(m1.reg(x), 100);
    assert_eq!(m2.reg(x), m1.reg(x));
}

#[test]
fn external_call_needs_lto_masking() {
    let mut f = Function::new();
    let p = f.reg();
    f.push(Inst::AllocPm {
        dst: p,
        size: Operand::Const(32),
    });
    f.push(Inst::CallExt {
        name: "read",
        ptr_args: vec![p],
    });
    let (t, _) = spp_transform(&f, true);
    // Without the LTO pass: the uninstrumented callee dereferences the
    // tagged pointer and faults (the incompatibility §IV-C solves).
    let mut m = vm(VmMode::Spp);
    assert!(m.run(&t).is_err());
    // With it: masked argument, call succeeds.
    let (mut t2, _) = spp_transform(&f, true);
    assert!(mask_external_calls(&mut t2) >= 1);
    let mut m2 = vm(VmMode::Spp);
    m2.run(&t2).unwrap();
}

#[test]
fn ptrtoint_value_is_the_plain_address() {
    let mut f = Function::new();
    let p = f.reg();
    let n = f.reg();
    f.push(Inst::AllocPm {
        dst: p,
        size: Operand::Const(32),
    });
    f.push(Inst::PtrToInt { dst: n, src: p });
    let (t, _) = spp_transform(&f, true);
    let mut m = vm(VmMode::Spp);
    m.run(&t).unwrap();
    // The integer must look like an ordinary address (tag and PM bit
    // cleaned) so application arithmetic behaves (§IV-G).
    assert!(!spp_core::is_pm_ptr(m.reg(n)));
    assert!(m.reg(n) >= spp_pm::DEFAULT_POOL_BASE); // the pool's base region
}

mod volatile_generalisation {
    //! §VII: "at the cost of additional performance overhead, SPP could be
    //! generalised and include instrumentation and checks for volatile
    //! memory pointers" — the VM's `SppAll` mode does exactly that.
    use super::*;

    fn vol_overflow_program() -> Function {
        let mut f = Function::new();
        let p = f.reg();
        f.push(Inst::AllocVol {
            dst: p,
            size: Operand::Const(32),
        });
        f.push(Inst::Gep {
            dst: p,
            base: p,
            offset: Operand::Const(32),
        });
        f.push(Inst::Store {
            ptr: p,
            value: Operand::Const(1),
            size: 8,
        });
        f
    }

    #[test]
    fn plain_spp_misses_volatile_overflows() {
        // Volatile pointers are untagged and untracked: the overflow lands
        // in adjacent arena memory silently (design goal #3 leaves volatile
        // memory to other tools).
        let (t, _) = spp_transform(&vol_overflow_program(), true);
        let mut m = vm(VmMode::Spp);
        m.run(&t).unwrap();
    }

    #[test]
    fn spp_all_catches_volatile_overflows() {
        // Generalised mode: the volatile allocation is tagged, and the
        // transform must keep hooks on it (tracking disabled).
        let (t, _) = spp_transform(&vol_overflow_program(), false);
        let mut m = vm(VmMode::SppAll);
        let err = m.run(&t).unwrap_err();
        assert!(matches!(err, Trap::Overflow { .. }), "got {err}");
    }

    #[test]
    fn spp_all_in_bounds_still_works() {
        let mut f = Function::new();
        let p = f.reg();
        let x = f.reg();
        f.push(Inst::AllocVol {
            dst: p,
            size: Operand::Const(32),
        });
        f.push(Inst::Store {
            ptr: p,
            value: Operand::Const(0xAB),
            size: 8,
        });
        f.push(Inst::Load {
            dst: x,
            ptr: p,
            size: 8,
        });
        let (t, _) = spp_transform(&f, false);
        let mut m = vm(VmMode::SppAll);
        m.run(&t).unwrap();
        assert_eq!(m.reg(x), 0xAB);
    }
}
