//! The torture workloads.
//!
//! Each workload drives a deterministic, seeded op sequence against a
//! tracked pool while the [`Explorer`] samples crash states at every
//! durability boundary. A shared *expected-state* model is updated around
//! every operation: before the op it records the op as in-flight (both the
//! pre- and post-states are then acceptable — crash recovery must land on
//! exactly one of them, never between); after the op completes it commits
//! the post-state. The oracle closures read that model through an
//! `Arc<Mutex<..>>`, so a crash image taken mid-operation is checked
//! against precisely the two legal outcomes.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use spp_containers::PList;
use spp_core::{SppPolicy, TagConfig};
use spp_kvstore::{KvStore, KEY_SIZE};
use spp_pm::{Mode, PmPool, PoolConfig};
use spp_pmdk::{ObjPool, OidDest, OidKind, PmdkError, PmemOid, PoolOpts};

use crate::oracle::{allocated_block_at, allocated_count, check_event_log, make_oracle, Recovered};
use crate::{Explorer, TortureConfig};

/// Simulated device size for every workload pool — small, so the
/// per-crash-state image clone stays cheap.
const POOL_SIZE: u64 = 1 << 18;

/// One registered workload.
pub struct Workload {
    /// CLI name.
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// Driver: sets up a pool, attaches the explorer, runs the op
    /// sequence, detaches, cross-checks the event log.
    pub run: fn(&TortureConfig, &Explorer) -> Result<(), String>,
}

/// All workloads, in default run order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "alloc",
            about: "raw alloc/free of pmdk-oid slots; leak + dangling-oid oracles",
            run: run_alloc,
        },
        Workload {
            name: "publish",
            about: "spp-oid alloc/realloc/free; size-field (§IV-F) oracle",
            run: run_publish,
        },
        Workload {
            name: "tx",
            about: "tx commit/abort/tx_alloc/tx_free; atomicity + no-poison oracles",
            run: run_tx,
        },
        Workload {
            name: "kvstore",
            about: "kvstore puts/removes under the SPP policy; lookup oracle",
            run: run_kvstore,
        },
        Workload {
            name: "list",
            about: "persistent list push/pop under the SPP policy; sequence oracle",
            run: run_list,
        },
        Workload {
            name: "generation",
            about: "SPP+T free/realloc churn; gen-bump atomicity + no-resurrection oracles",
            run: run_generation,
        },
    ]
}

/// The workload names, for CLI help and validation.
pub fn workload_names() -> Vec<&'static str> {
    all_workloads().iter().map(|w| w.name).collect()
}

fn estr(e: PmdkError) -> String {
    format!("driver error: {e:?}")
}

fn tracked_pool() -> Arc<PmPool> {
    Arc::new(PmPool::new(PoolConfig::new(POOL_SIZE).mode(Mode::Tracked)))
}

/// Salt the master seed per workload so op sequences differ.
fn wseed(cfg: &TortureConfig, name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    cfg.seed ^ h
}

// ---------------------------------------------------------------------------
// Workload 1: raw alloc/free into pmdk-oid slots.
// ---------------------------------------------------------------------------

const ALLOC_SLOTS: usize = 8;

/// Expected slot contents: committed payload sizes plus at most one
/// in-flight transition `(slot, post_size)`.
#[derive(Debug, Default)]
struct SlotExpected {
    committed: Vec<Option<u64>>,
    in_flight: Option<(usize, Option<u64>)>,
}

impl SlotExpected {
    fn new(slots: usize) -> Self {
        SlotExpected {
            committed: vec![None; slots],
            in_flight: None,
        }
    }

    /// The acceptable values for `slot` (pre- and, if in flight, post-).
    fn acceptable(&self, slot: usize) -> Vec<Option<u64>> {
        let mut ok = vec![self.committed[slot]];
        if let Some((s, post)) = self.in_flight {
            if s == slot && !ok.contains(&post) {
                ok.push(post);
            }
        }
        ok
    }
}

/// Where an oid-slot array lives and how strictly to check it.
/// `structural` is the number of allocated heap blocks that are *not*
/// slot payloads (the root block, container metadata, ...).
#[derive(Debug, Clone, Copy)]
struct SlotLayout {
    root_off: u64,
    slot_stride: u64,
    kind: OidKind,
    structural: u64,
    exact_size: bool,
}

/// Check one oid-slot array against the expected model.
fn check_slots(
    rp: &Recovered,
    blocks: &[spp_pmdk::BlockInfo],
    lay: SlotLayout,
    exp: &SlotExpected,
) -> Result<(), String> {
    let SlotLayout {
        root_off,
        slot_stride,
        kind,
        structural,
        exact_size,
    } = lay;
    let mut live = 0u64;
    let mut seen_offs = Vec::new();
    for (i, _) in exp.committed.iter().enumerate() {
        let off = root_off + i as u64 * slot_stride;
        let oid = rp
            .pool
            .oid_read(off, kind)
            .map_err(|e| format!("slot {i}: oid read failed: {e:?}"))?;
        let acceptable = exp.acceptable(i);
        if oid.is_null() {
            if !acceptable.contains(&None) {
                return Err(format!(
                    "slot {i}: lost allocation — oid is null but expected {acceptable:?}"
                ));
            }
            continue;
        }
        live += 1;
        if seen_offs.contains(&oid.off) {
            return Err(format!("slot {i}: duplicate oid offset {:#x}", oid.off));
        }
        seen_offs.push(oid.off);
        let block = allocated_block_at(blocks, oid.off)
            .ok_or_else(|| format!("slot {i}: dangling oid {:#x} (no allocated block)", oid.off))?;
        let sizes: Vec<u64> = acceptable.iter().filter_map(|a| *a).collect();
        if sizes.is_empty() {
            return Err(format!(
                "slot {i}: unexpected live oid {:#x}, expected null",
                oid.off
            ));
        }
        if exact_size {
            // SPP oids carry their size on media: it must match one of the
            // acceptable states exactly and fit the backing block.
            if !sizes.contains(&oid.size) {
                return Err(format!(
                    "slot {i}: oid size field {} disagrees with expected sizes {sizes:?}",
                    oid.size
                ));
            }
            if block.payload_size() < oid.size {
                return Err(format!(
                    "slot {i}: oid size {} exceeds backing block payload {}",
                    oid.size,
                    block.payload_size()
                ));
            }
        } else if !sizes.iter().any(|&sz| block.payload_size() >= sz) {
            return Err(format!(
                "slot {i}: block payload {} too small for any expected size {sizes:?}",
                block.payload_size()
            ));
        }
    }
    let total = allocated_count(blocks);
    if total != live + structural {
        return Err(format!(
            "heap leak or loss: {total} allocated blocks, expected {live} live slots + {structural} structural"
        ));
    }
    Ok(())
}

fn run_alloc(cfg: &TortureConfig, ex: &Explorer) -> Result<(), String> {
    let pm = tracked_pool();
    let pool = Arc::new(ObjPool::create(Arc::clone(&pm), PoolOpts::small()).map_err(estr)?);
    let root = pool.root(ALLOC_SLOTS as u64 * 16).map_err(estr)?;
    pm.reset_tracking();

    let expected = Arc::new(Mutex::new(SlotExpected::new(ALLOC_SLOTS)));
    let oracle = make_oracle(cfg.faults, cfg.idempotence_stride, {
        let expected = Arc::clone(&expected);
        let root_off = root.off;
        move |rp: &Recovered, blocks: &[spp_pmdk::BlockInfo]| {
            let exp = expected.lock();
            check_slots(
                rp,
                blocks,
                SlotLayout {
                    root_off,
                    slot_stride: 16,
                    kind: OidKind::Pmdk,
                    structural: 1,
                    exact_size: false,
                },
                &exp,
            )
        }
    });
    ex.attach(&pm, oracle);

    let mut rng = StdRng::seed_from_u64(wseed(cfg, "alloc"));
    let mut oids: Vec<Option<PmemOid>> = vec![None; ALLOC_SLOTS];
    for _ in 0..cfg.steps {
        if ex.hit_failure_cap() {
            break;
        }
        let slot = rng.random_range(0..ALLOC_SLOTS as u64) as usize;
        let dest = OidDest::pmdk(root.off + slot as u64 * 16);
        match oids[slot] {
            Some(oid) => {
                expected.lock().in_flight = Some((slot, None));
                pool.free_from(dest, oid).map_err(estr)?;
                let mut exp = expected.lock();
                exp.committed[slot] = None;
                exp.in_flight = None;
                oids[slot] = None;
            }
            None => {
                let size = 16 + rng.random_range(0..240);
                expected.lock().in_flight = Some((slot, Some(size)));
                let oid = pool.alloc_into(dest, size).map_err(estr)?;
                let mut exp = expected.lock();
                exp.committed[slot] = Some(size);
                exp.in_flight = None;
                oids[slot] = Some(oid);
            }
        }
    }
    ex.detach(&pm);
    if let Err(msg) = check_event_log(&pm) {
        ex.record_external(msg);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Workload 2: spp-oid publication with realloc — the §IV-F size oracle.
// ---------------------------------------------------------------------------

const PUBLISH_SLOTS: usize = 4;

fn run_publish(cfg: &TortureConfig, ex: &Explorer) -> Result<(), String> {
    let pm = tracked_pool();
    let pool = Arc::new(ObjPool::create(Arc::clone(&pm), PoolOpts::small()).map_err(estr)?);
    let root = pool.root(PUBLISH_SLOTS as u64 * 24).map_err(estr)?;
    pm.reset_tracking();

    let expected = Arc::new(Mutex::new(SlotExpected::new(PUBLISH_SLOTS)));
    let oracle = make_oracle(cfg.faults, cfg.idempotence_stride, {
        let expected = Arc::clone(&expected);
        let root_off = root.off;
        move |rp: &Recovered, blocks: &[spp_pmdk::BlockInfo]| {
            let exp = expected.lock();
            check_slots(
                rp,
                blocks,
                SlotLayout {
                    root_off,
                    slot_stride: 24,
                    kind: OidKind::Spp,
                    structural: 1,
                    exact_size: true,
                },
                &exp,
            )
        }
    });
    ex.attach(&pm, oracle);

    let mut rng = StdRng::seed_from_u64(wseed(cfg, "publish"));
    let mut oids: Vec<Option<PmemOid>> = vec![None; PUBLISH_SLOTS];
    for _ in 0..cfg.steps {
        if ex.hit_failure_cap() {
            break;
        }
        let slot = rng.random_range(0..PUBLISH_SLOTS as u64) as usize;
        let dest = OidDest::spp(root.off + slot as u64 * 24);
        match oids[slot] {
            Some(oid) if rng.random_range(0..2) == 0 => {
                let size = 16 + rng.random_range(0..500);
                expected.lock().in_flight = Some((slot, Some(size)));
                let new = pool.realloc_into(dest, oid, size).map_err(estr)?;
                let mut exp = expected.lock();
                exp.committed[slot] = Some(size);
                exp.in_flight = None;
                oids[slot] = Some(new);
            }
            Some(oid) => {
                expected.lock().in_flight = Some((slot, None));
                pool.free_from(dest, oid).map_err(estr)?;
                let mut exp = expected.lock();
                exp.committed[slot] = None;
                exp.in_flight = None;
                oids[slot] = None;
            }
            None => {
                let size = 16 + rng.random_range(0..500);
                expected.lock().in_flight = Some((slot, Some(size)));
                let oid = pool.zalloc_into(dest, size).map_err(estr)?;
                let mut exp = expected.lock();
                exp.committed[slot] = Some(size);
                exp.in_flight = None;
                oids[slot] = Some(oid);
            }
        }
    }
    ex.detach(&pm);
    if let Err(msg) = check_event_log(&pm) {
        ex.record_external(msg);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Workload 3: transactions — paired counters, aborts, tx_alloc/tx_free.
// ---------------------------------------------------------------------------

const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;
const TX_SLOTS: usize = 2;

#[derive(Debug, Default)]
struct TxExpected {
    /// Committed value of the paired counters.
    value: u64,
    /// In-flight counter target (commit path) — `None` when the step is an
    /// abort or a slot op (counter must then read exactly `value`).
    value_post: Option<u64>,
    slots: SlotExpected,
}

fn run_tx(cfg: &TortureConfig, ex: &Explorer) -> Result<(), String> {
    let pm = tracked_pool();
    let pool = Arc::new(ObjPool::create(Arc::clone(&pm), PoolOpts::small()).map_err(estr)?);
    // Layout: counters a/b at +0/+8, then two pmdk oid slots.
    let root = pool.root(16 + TX_SLOTS as u64 * 16).map_err(estr)?;
    pm.reset_tracking();

    let expected = Arc::new(Mutex::new(TxExpected {
        slots: SlotExpected::new(TX_SLOTS),
        ..TxExpected::default()
    }));
    let oracle = make_oracle(cfg.faults, cfg.idempotence_stride, {
        let expected = Arc::clone(&expected);
        let root_off = root.off;
        move |rp: &Recovered, blocks: &[spp_pmdk::BlockInfo]| {
            let exp = expected.lock();
            let a = rp
                .pool
                .read_u64(root_off)
                .map_err(|e| format!("counter read failed: {e:?}"))?;
            let b = rp
                .pool
                .read_u64(root_off + 8)
                .map_err(|e| format!("counter read failed: {e:?}"))?;
            if a == POISON || b == POISON {
                return Err("aborted transaction's poison value survived recovery".into());
            }
            if a != b {
                return Err(format!(
                    "torn transaction: paired counters diverge ({a} != {b})"
                ));
            }
            let ok = a == exp.value || exp.value_post == Some(a);
            if !ok {
                return Err(format!(
                    "counter {} is neither committed {} nor in-flight {:?}",
                    a, exp.value, exp.value_post
                ));
            }
            check_slots(
                rp,
                blocks,
                SlotLayout {
                    root_off: root_off + 16,
                    slot_stride: 16,
                    kind: OidKind::Pmdk,
                    structural: 1,
                    exact_size: false,
                },
                &exp.slots,
            )
        }
    });
    ex.attach(&pm, oracle);

    let mut rng = StdRng::seed_from_u64(wseed(cfg, "tx"));
    let mut oids: Vec<Option<PmemOid>> = vec![None; TX_SLOTS];
    for _ in 0..cfg.steps {
        if ex.hit_failure_cap() {
            break;
        }
        match rng.random_range(0..4) {
            0 | 1 => {
                let commit = rng.random_range(0..3) < 2;
                let v = expected.lock().value;
                if commit {
                    expected.lock().value_post = Some(v + 1);
                    pool.tx(|tx| -> Result<(), PmdkError> {
                        tx.write_u64(root.off, v + 1)?;
                        tx.write_u64(root.off + 8, v + 1)?;
                        Ok(())
                    })
                    .map_err(estr)?;
                    let mut exp = expected.lock();
                    exp.value = v + 1;
                    exp.value_post = None;
                } else {
                    // Abort: poison both counters inside the tx; the live
                    // rollback (or crash recovery) must erase the poison.
                    let r = pool.tx(|tx| -> Result<(), PmdkError> {
                        tx.write_u64(root.off, POISON)?;
                        tx.write_u64(root.off + 8, POISON)?;
                        Err(tx.abort("torture: deliberate abort"))
                    });
                    if !matches!(r, Err(PmdkError::TxAborted(_))) {
                        return Err(format!("abort step: unexpected result {r:?}"));
                    }
                }
            }
            _ => {
                let slot = rng.random_range(0..TX_SLOTS as u64) as usize;
                let slot_off = root.off + 16 + slot as u64 * 16;
                match oids[slot] {
                    Some(oid) => {
                        expected.lock().slots.in_flight = Some((slot, None));
                        pool.tx(|tx| -> Result<(), PmdkError> {
                            tx.free(oid)?;
                            tx.write(slot_off, &PmemOid::NULL.encode(OidKind::Pmdk))?;
                            Ok(())
                        })
                        .map_err(estr)?;
                        let mut exp = expected.lock();
                        exp.slots.committed[slot] = None;
                        exp.slots.in_flight = None;
                        oids[slot] = None;
                    }
                    None => {
                        let size = 16 + rng.random_range(0..100);
                        expected.lock().slots.in_flight = Some((slot, Some(size)));
                        let oid = pool
                            .tx(|tx| -> Result<PmemOid, PmdkError> {
                                let oid = tx.zalloc(size)?;
                                tx.write(slot_off, &oid.encode(OidKind::Pmdk))?;
                                Ok(oid)
                            })
                            .map_err(estr)?;
                        let mut exp = expected.lock();
                        exp.slots.committed[slot] = Some(size);
                        exp.slots.in_flight = None;
                        oids[slot] = Some(oid);
                    }
                }
            }
        }
    }
    ex.detach(&pm);
    if let Err(msg) = check_event_log(&pm) {
        ex.record_external(msg);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Workload 4: the kvstore under the SPP policy.
// ---------------------------------------------------------------------------

type KvFlight = Option<(Vec<u8>, Option<Vec<u8>>, Option<Vec<u8>>)>;

#[derive(Debug, Default)]
struct KvExpected {
    committed: BTreeMap<Vec<u8>, Vec<u8>>,
    /// `(key, pre, post)` of the in-flight put/remove.
    in_flight: KvFlight,
}

fn kv_key(i: u64) -> Vec<u8> {
    let mut k = format!("torture-key-{i:02}").into_bytes();
    k.resize(KEY_SIZE, b'.');
    k
}

fn kv_value(key_idx: u64, version: u64) -> Vec<u8> {
    let len = 24 + (version % 3) as usize * 8;
    (0..len)
        .map(|i| (key_idx as u8) ^ (version as u8).wrapping_add(i as u8))
        .collect()
}

fn run_kvstore(cfg: &TortureConfig, ex: &Explorer) -> Result<(), String> {
    let pm = tracked_pool();
    let pool = Arc::new(ObjPool::create(Arc::clone(&pm), PoolOpts::small()).map_err(estr)?);
    let root = pool.root(24).map_err(estr)?;
    let policy = Arc::new(
        SppPolicy::new(Arc::clone(&pool), TagConfig::default())
            .map_err(|e| format!("policy setup failed: {e:?}"))?,
    );
    let kv =
        KvStore::create(Arc::clone(&policy), 16).map_err(|e| format!("kv create failed: {e:?}"))?;
    pool.publish_oid(OidDest::spp(root.off), kv.meta())
        .map_err(estr)?;
    pm.reset_tracking();

    let expected: Arc<Mutex<KvExpected>> = Arc::default();
    let universe: Vec<Vec<u8>> = (0..8).map(kv_key).collect();
    let oracle = make_oracle(cfg.faults, cfg.idempotence_stride, {
        let expected = Arc::clone(&expected);
        let universe = universe.clone();
        let root_off = root.off;
        move |rp: &Recovered, _blocks: &[spp_pmdk::BlockInfo]| {
            let exp = expected.lock();
            let meta = rp
                .pool
                .oid_read(root_off, OidKind::Spp)
                .map_err(|e| format!("meta oid read failed: {e:?}"))?;
            if meta.is_null() {
                return Err("kv meta oid lost from the root".into());
            }
            let policy = Arc::new(
                SppPolicy::new(Arc::clone(&rp.pool), TagConfig::default())
                    .map_err(|e| format!("policy reopen failed: {e:?}"))?,
            );
            let kv = KvStore::open(policy, meta).map_err(|e| format!("kv open failed: {e:?}"))?;
            let mut out = Vec::new();
            for key in &universe {
                out.clear();
                let found = kv
                    .get(key, &mut out)
                    .map_err(|e| format!("kv get failed after recovery: {e:?}"))?;
                let got = found.then(|| out.clone());
                let mut acceptable = vec![exp.committed.get(key).cloned()];
                if let Some((k, pre, post)) = &exp.in_flight {
                    if k == key {
                        acceptable = vec![pre.clone(), post.clone()];
                    }
                }
                if !acceptable.contains(&got) {
                    return Err(format!(
                        "key {:?}: got {:?}, expected one of {} state(s)",
                        String::from_utf8_lossy(key),
                        got.map(|v| v.len()),
                        acceptable.len()
                    ));
                }
            }
            Ok(())
        }
    });
    ex.attach(&pm, oracle);

    let mut rng = StdRng::seed_from_u64(wseed(cfg, "kvstore"));
    let mut versions = vec![0u64; universe.len()];
    for _ in 0..cfg.steps {
        if ex.hit_failure_cap() {
            break;
        }
        let ki = rng.random_range(0..universe.len() as u64);
        let key = universe[ki as usize].clone();
        let pre = expected.lock().committed.get(&key).cloned();
        if pre.is_some() && rng.random_range(0..10) < 3 {
            expected.lock().in_flight = Some((key.clone(), pre, None));
            kv.remove(&key)
                .map_err(|e| format!("kv remove failed: {e:?}"))?;
            let mut exp = expected.lock();
            exp.committed.remove(&key);
            exp.in_flight = None;
        } else {
            versions[ki as usize] += 1;
            let value = kv_value(ki, versions[ki as usize]);
            expected.lock().in_flight = Some((key.clone(), pre, Some(value.clone())));
            kv.put(&key, &value)
                .map_err(|e| format!("kv put failed: {e:?}"))?;
            let mut exp = expected.lock();
            exp.committed.insert(key, value);
            exp.in_flight = None;
        }
    }
    ex.detach(&pm);
    if let Err(msg) = check_event_log(&pm) {
        ex.record_external(msg);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Workload 6: SPP+T generation survival under crash-at-every-boundary.
//
// Free/realloc churn over a few same-class slots (so LIFO reuse keeps
// handing dead blocks to new lifetimes) with two temporal oracles on
// every sampled crash state:
//
// * **gen bump + republish atomicity** — a recovered slot is exactly the
//   pre- or post-state of the in-flight op: oid and durable block
//   generation flip together, never one without the other (a torn free
//   would leave a live oid aimed at a free block, or a bumped block
//   still published — both are resurrection vectors);
// * **no resurrection** — the durable generation of every block the
//   workload ever touched is monotone across crash recovery: a recovered
//   generation below the committed floor would let a stale pointer's key
//   match a reborn allocation.
// ---------------------------------------------------------------------------

const GEN_SLOTS: usize = 4;
/// Slot sizes all round to the 64-byte class, so reallocs stay in place
/// (generation bump only) and free→alloc pairs reuse the same block.
const GEN_SIZES: [u64; 3] = [33, 40, 48];

/// One committed slot, as the driver observed it durably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GenSlot {
    /// Payload offset of the slot's block.
    off: u64,
    /// Durable live generation.
    gen: u8,
    /// Requested payload size.
    size: u64,
}

/// One acceptable recovered state of a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GenState {
    /// Slot oid is null.
    Empty,
    /// Slot holds exactly this block/generation/size.
    Exact(GenSlot),
    /// A tracked allocation of this size whose block and generation the
    /// driver has not observed yet (an alloc — or a moving realloc at
    /// generation saturation — is in flight).
    Fresh(u64),
}

#[derive(Debug, Default)]
struct GenExpected {
    committed: Vec<Option<GenSlot>>,
    /// `(slot, pre, post)` of the op in flight: recovery must land on
    /// exactly one of the two, never between.
    in_flight: Option<(usize, GenState, GenState)>,
    /// Monotone floor of the durable generation per payload offset.
    floor: BTreeMap<u64, u8>,
}

impl GenExpected {
    fn acceptable(&self, slot: usize) -> Vec<GenState> {
        let committed = match self.committed[slot] {
            Some(s) => GenState::Exact(s),
            None => GenState::Empty,
        };
        match self.in_flight {
            Some((s, pre, post)) if s == slot => {
                let mut ok = vec![pre];
                if post != pre {
                    ok.push(post);
                }
                ok
            }
            _ => vec![committed],
        }
    }
}

/// Check one recovered crash state against the generation model.
fn check_generations(
    rp: &Recovered,
    blocks: &[spp_pmdk::BlockInfo],
    root_off: u64,
    exp: &GenExpected,
) -> Result<(), String> {
    use spp_pmdk::{BlockState, GEN_MAX};

    let mut live = 0u64;
    for i in 0..exp.committed.len() {
        let oid = rp
            .pool
            .oid_read(root_off + i as u64 * 24, OidKind::Spp)
            .map_err(|e| format!("slot {i}: oid read failed: {e:?}"))?;
        let acceptable = exp.acceptable(i);
        if oid.is_null() {
            if !acceptable.contains(&GenState::Empty) {
                return Err(format!("slot {i}: oid is null but expected {acceptable:?}"));
            }
            continue;
        }
        live += 1;
        let block = allocated_block_at(blocks, oid.off).ok_or_else(|| {
            format!(
                "slot {i}: torn free — published oid {:#x} aims at a non-allocated block",
                oid.off
            )
        })?;
        let matched = acceptable.iter().any(|st| match *st {
            GenState::Empty => false,
            GenState::Exact(s) => {
                oid.off == s.off && block.gen == s.gen && block.requested == s.size
            }
            GenState::Fresh(size) => block.requested == size && block.gen >= 1,
        });
        if !matched {
            return Err(format!(
                "slot {i}: recovered (off {:#x}, gen {}, req {}) matches none of {acceptable:?}",
                oid.off, block.gen, block.requested
            ));
        }
    }

    // Gen bump and oid republish travel in one redo record, so the
    // allocated-block count always equals the published slots plus the
    // root — a mismatch is a torn free/alloc (or a leak).
    let total = allocated_count(blocks);
    if total != live + 1 {
        return Err(format!(
            "torn op or leak: {total} allocated blocks, expected {live} live slots + 1 root"
        ));
    }

    // No resurrection: every block the workload ever drove must never
    // recover *below* its committed generation floor, and the saturated
    // sentinel must never back a live allocation.
    for b in blocks {
        if b.state == BlockState::Allocated && b.gen == GEN_MAX {
            return Err(format!(
                "block {:#x} allocated at the quarantine sentinel generation",
                b.off
            ));
        }
        if let Some(&f) = exp.floor.get(&b.payload_off()) {
            if b.gen != 0 && b.gen < f {
                return Err(format!(
                    "generation ran backwards at block {:#x}: recovered {} < committed floor {f}",
                    b.off, b.gen
                ));
            }
        }
    }
    Ok(())
}

fn run_generation(cfg: &TortureConfig, ex: &Explorer) -> Result<(), String> {
    use spp_pmdk::GEN_MAX;

    let pm = tracked_pool();
    let pool = Arc::new(ObjPool::create(Arc::clone(&pm), PoolOpts::small()).map_err(estr)?);
    let root = pool.root(GEN_SLOTS as u64 * 24).map_err(estr)?;
    pm.reset_tracking();

    let expected = Arc::new(Mutex::new(GenExpected {
        committed: vec![None; GEN_SLOTS],
        ..GenExpected::default()
    }));
    let oracle = make_oracle(cfg.faults, cfg.idempotence_stride, {
        let expected = Arc::clone(&expected);
        let root_off = root.off;
        move |rp: &Recovered, blocks: &[spp_pmdk::BlockInfo]| {
            let exp = expected.lock();
            check_generations(rp, blocks, root_off, &exp)
        }
    });
    ex.attach(&pm, oracle);

    let bump_floor = |exp: &mut GenExpected, off: u64, gen: u8| {
        let f = exp.floor.entry(off).or_insert(0);
        *f = (*f).max(gen);
    };

    let mut rng = StdRng::seed_from_u64(wseed(cfg, "generation"));
    let mut oids: Vec<Option<PmemOid>> = vec![None; GEN_SLOTS];
    for _ in 0..cfg.steps {
        if ex.hit_failure_cap() {
            break;
        }
        let slot = rng.random_range(0..GEN_SLOTS as u64) as usize;
        let dest = OidDest::spp(root.off + slot as u64 * 24);
        let committed = expected.lock().committed[slot];
        match (oids[slot], committed) {
            (Some(oid), Some(s)) if rng.random_range(0..2) == 0 => {
                // Free: the durable bump to gen+1 and the oid null-out
                // must land together.
                expected.lock().in_flight = Some((slot, GenState::Exact(s), GenState::Empty));
                pool.free_from(dest, oid).map_err(estr)?;
                let mut exp = expected.lock();
                exp.committed[slot] = None;
                exp.in_flight = None;
                bump_floor(&mut exp, s.off, s.gen.saturating_add(1));
                oids[slot] = None;
            }
            (Some(oid), Some(s)) => {
                // Same-class realloc: in place with a generation bump —
                // unless the bump would saturate, in which case the
                // allocator quarantines the block and moves.
                let new_size = GEN_SIZES[rng.random_range(0..GEN_SIZES.len() as u64) as usize];
                let post = if s.gen + 1 < GEN_MAX {
                    GenState::Exact(GenSlot {
                        off: s.off,
                        gen: s.gen + 1,
                        size: new_size,
                    })
                } else {
                    GenState::Fresh(new_size)
                };
                expected.lock().in_flight = Some((slot, GenState::Exact(s), post));
                let new = pool.realloc_into(dest, oid, new_size).map_err(estr)?;
                let gen = pool.gen_at_bound(new.off + new_size);
                let mut exp = expected.lock();
                exp.committed[slot] = Some(GenSlot {
                    off: new.off,
                    gen,
                    size: new_size,
                });
                exp.in_flight = None;
                // The old key died either way (bumped in place or block
                // quarantined/freed).
                bump_floor(&mut exp, s.off, s.gen.saturating_add(1));
                bump_floor(&mut exp, new.off, gen);
                oids[slot] = Some(new);
            }
            _ => {
                // Alloc: block and generation are unknown until the op
                // returns (LIFO reuse vs fresh wilderness block).
                let size = GEN_SIZES[rng.random_range(0..GEN_SIZES.len() as u64) as usize];
                expected.lock().in_flight = Some((slot, GenState::Empty, GenState::Fresh(size)));
                let oid = pool.zalloc_into(dest, size).map_err(estr)?;
                let gen = pool.gen_at_bound(oid.off + size);
                let mut exp = expected.lock();
                exp.committed[slot] = Some(GenSlot {
                    off: oid.off,
                    gen,
                    size,
                });
                exp.in_flight = None;
                bump_floor(&mut exp, oid.off, gen);
                oids[slot] = Some(oid);
            }
        }
    }
    ex.detach(&pm);
    if let Err(msg) = check_event_log(&pm) {
        ex.record_external(msg);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Workload 5: the persistent list under the SPP policy.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct ListExpected {
    committed: Vec<u64>,
    /// In-flight alternative (the post-state of the running push/pop).
    post: Option<Vec<u64>>,
}

fn run_list(cfg: &TortureConfig, ex: &Explorer) -> Result<(), String> {
    let pm = tracked_pool();
    let pool = Arc::new(ObjPool::create(Arc::clone(&pm), PoolOpts::small()).map_err(estr)?);
    let root = pool.root(24).map_err(estr)?;
    let policy = Arc::new(
        SppPolicy::new(Arc::clone(&pool), TagConfig::default())
            .map_err(|e| format!("policy setup failed: {e:?}"))?,
    );
    let list =
        PList::create(Arc::clone(&policy)).map_err(|e| format!("list create failed: {e:?}"))?;
    pool.publish_oid(OidDest::spp(root.off), list.meta())
        .map_err(estr)?;
    pm.reset_tracking();

    let expected: Arc<Mutex<ListExpected>> = Arc::default();
    let oracle = make_oracle(cfg.faults, cfg.idempotence_stride, {
        let expected = Arc::clone(&expected);
        let root_off = root.off;
        move |rp: &Recovered, blocks: &[spp_pmdk::BlockInfo]| {
            let exp = expected.lock();
            let meta = rp
                .pool
                .oid_read(root_off, OidKind::Spp)
                .map_err(|e| format!("meta oid read failed: {e:?}"))?;
            if meta.is_null() {
                return Err("list meta oid lost from the root".into());
            }
            let policy = Arc::new(
                SppPolicy::new(Arc::clone(&rp.pool), TagConfig::default())
                    .map_err(|e| format!("policy reopen failed: {e:?}"))?,
            );
            let list = PList::open(policy, meta).map_err(|e| format!("list open failed: {e:?}"))?;
            let got = list
                .to_vec()
                .map_err(|e| format!("list walk failed after recovery: {e:?}"))?;
            let len = list
                .len()
                .map_err(|e| format!("list len failed after recovery: {e:?}"))?;
            if len != got.len() as u64 {
                return Err(format!(
                    "list count field {len} disagrees with chain length {}",
                    got.len()
                ));
            }
            if got != exp.committed && Some(&got) != exp.post.as_ref() {
                return Err(format!(
                    "list is neither pre {:?} nor post {:?}: {got:?}",
                    exp.committed, exp.post
                ));
            }
            // Leak check: root + list meta + one node per element.
            let matched_len = got.len() as u64;
            let total = allocated_count(blocks);
            if total != matched_len + 2 {
                return Err(format!(
                    "heap leak or loss: {total} allocated blocks for {matched_len} list nodes + 2 structural"
                ));
            }
            Ok(())
        }
    });
    ex.attach(&pm, oracle);

    let mut rng = StdRng::seed_from_u64(wseed(cfg, "list"));
    let mut next = 1u64;
    for _ in 0..cfg.steps {
        if ex.hit_failure_cap() {
            break;
        }
        let len = expected.lock().committed.len();
        if len < 12 && (len == 0 || rng.random_range(0..3) < 2) {
            let v = next;
            next += 1;
            {
                let mut exp = expected.lock();
                let mut post = exp.committed.clone();
                post.push(v);
                exp.post = Some(post);
            }
            list.push_back(v)
                .map_err(|e| format!("list push failed: {e:?}"))?;
            let mut exp = expected.lock();
            exp.committed.push(v);
            exp.post = None;
        } else {
            {
                let mut exp = expected.lock();
                let mut post = exp.committed.clone();
                post.remove(0);
                exp.post = Some(post);
            }
            let popped = list
                .pop_front()
                .map_err(|e| format!("list pop failed: {e:?}"))?;
            let mut exp = expected.lock();
            let want = exp.committed.remove(0);
            exp.post = None;
            if popped != Some(want) {
                return Err(format!("list pop returned {popped:?}, expected {want}"));
            }
        }
    }
    ex.detach(&pm);
    if let Err(msg) = check_event_log(&pm) {
        ex.record_external(msg);
    }
    Ok(())
}
