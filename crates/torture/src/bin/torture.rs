//! `torture` — crash-consistency exploration CLI.
//!
//! Drives the workloads in `spp-torture` with a fixed seed, prints a
//! per-workload summary, writes `summary.json`, and exits nonzero if any
//! crash state violated an oracle (failing states are shrunk and dumped
//! under the output directory).

use std::path::PathBuf;
use std::process::ExitCode;

use spp_torture::{all_workloads, run, workload_names, write_summary_json, TortureConfig};

const USAGE: &str = "usage: torture [options]

options:
  --seed N            master seed (default 12648430)
  --steps N           workload operations to drive (default 28; smoke 14)
  --per-boundary N    max crash states sampled per durability boundary (default 6)
  --budget N          total crash-state budget per workload (default 3000; smoke 600)
  --stride N          check recovery idempotence every N-th state, 0=off (default 8)
  --workloads a,b,c   comma-separated workload subset (default: all)
  --out DIR           failure-dump / summary directory (default results/torture)
  --smoke             CI-sized run (smaller budget, same coverage shape)
  --fault NAME        inject a recovery fault: skip-redo-apply | skip-tx-rollback
                      (the run is then EXPECTED to fail — validates the oracles)
  --list              list workloads and exit
  --help              this text";

fn parse_args() -> Result<(TortureConfig, Vec<String>, bool), String> {
    let mut cfg = TortureConfig::default();
    let mut smoke = false;
    let mut explicit: Vec<(String, String)> = Vec::new();
    let mut names: Option<Vec<String>> = None;
    let mut list = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--list" => list = true,
            "--smoke" => smoke = true,
            "--seed" | "--steps" | "--per-boundary" | "--budget" | "--stride" => {
                let v = take(&arg)?;
                explicit.push((arg, v));
            }
            "--workloads" => {
                names = Some(
                    take("--workloads")?
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--out" => cfg.out_dir = PathBuf::from(take("--out")?),
            "--fault" => match take("--fault")?.as_str() {
                "skip-redo-apply" => cfg.faults.skip_redo_apply = true,
                "skip-tx-rollback" => cfg.faults.skip_tx_rollback = true,
                other => return Err(format!("unknown fault `{other}`\n\n{USAGE}")),
            },
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    if smoke {
        let out = std::mem::take(&mut cfg.out_dir);
        let faults = cfg.faults;
        cfg = TortureConfig::smoke();
        cfg.out_dir = out;
        cfg.faults = faults;
    }
    // Explicit numeric flags override the smoke defaults regardless of
    // argument order.
    for (flag, v) in explicit {
        let n: u64 = v
            .parse()
            .map_err(|_| format!("{flag}: not a number: {v}"))?;
        match flag.as_str() {
            "--seed" => cfg.seed = n,
            "--steps" => cfg.steps = n,
            "--per-boundary" => cfg.per_boundary = n.max(1),
            "--budget" => cfg.max_states = n.max(1),
            "--stride" => cfg.idempotence_stride = n,
            _ => unreachable!(),
        }
    }
    let names = names.unwrap_or_else(|| workload_names().iter().map(|s| s.to_string()).collect());
    Ok((cfg, names, list))
}

fn main() -> ExitCode {
    let (cfg, names, list) = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if list {
        for w in all_workloads() {
            println!("{:<10} {}", w.name, w.about);
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "torture: seed {}, steps {}, per-boundary {}, budget {}/workload{}",
        cfg.seed,
        cfg.steps,
        cfg.per_boundary,
        cfg.max_states,
        if cfg.faults.any() {
            " [RECOVERY FAULTS INJECTED]"
        } else {
            ""
        }
    );
    let summary = match run(&cfg, &names) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("torture: {msg}");
            return ExitCode::FAILURE;
        }
    };
    for r in &summary.results {
        println!(
            "  {:<10} boundaries {:>5}  states {:>6}  failures {}",
            r.name,
            r.boundaries,
            r.states,
            r.failures.len()
        );
        for f in &r.failures {
            println!(
                "    FAIL at boundary {} state {} (seed {})",
                f.boundary, f.state, f.seed
            );
            println!("      {}", f.message);
            println!("      minimal dropped stores: {:?}", f.dropped);
            if !f.dump_dir.is_empty() {
                println!("      dumped to {}", f.dump_dir);
            }
        }
    }
    if let Err(e) = write_summary_json(&cfg, &summary) {
        eprintln!("torture: failed to write summary.json: {e}");
    }
    println!(
        "torture: explored {} crash states across {} workloads, {} violation(s)",
        summary.total_states(),
        summary.results.len(),
        summary.total_failures()
    );
    if summary.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
