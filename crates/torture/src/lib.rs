//! # spp-torture — deterministic crash-consistency exploration
//!
//! The rig drives small deterministic workloads (raw allocation,
//! redo-validated oid publication, transactions, the kvstore, persistent
//! containers) against a [`spp_pm::PmPool`] in tracked mode. At **every
//! durability boundary** — each flush and each fence — a
//! [`spp_pm::PmPool::set_boundary_tap`] hook enumerates or samples
//! (seeded, reproducible) crash states via
//! [`spp_pm::CrashStateIter::sampled`]: every persisted store survives,
//! every unpersisted store independently may or may not.
//!
//! Each crash image is reopened through full `spp-pmdk` recovery
//! ([`spp_pmdk::ObjPool::open`]) and checked against a stack of oracles:
//!
//! * recovery itself must succeed and leave every lane quiescent
//!   (no valid redo log, no live transaction);
//! * the durable heap must scan cleanly and carry no leaked or
//!   doubly-referenced blocks;
//! * recovery must be **idempotent** — recovering the recovered image again
//!   changes nothing;
//! * workload-specific invariants hold: committed effects are present,
//!   aborted/in-flight effects are absent or complete (never partial), and
//!   every oid's durable `size` field agrees with the allocator's view of
//!   its block (the paper's §IV-F invariant).
//!
//! On top of the per-state oracles, each workload's full event log is
//! replayed through `spp-pmemcheck` as a cross-check.
//!
//! A failing state is **shrunk** to a minimal set of dropped stores and
//! dumped (crash image + event log + report) under `results/torture/` for
//! offline debugging; the report carries the seed and boundary needed to
//! reproduce it exactly.

mod explore;
mod oracle;
mod report;
mod workloads;

pub use explore::{Explorer, Failure};
pub use oracle::{make_oracle, recover, Oracle, Recovered};
pub use report::write_summary_json;
pub use workloads::{all_workloads, workload_names, Workload};

use std::path::PathBuf;

use spp_pmdk::RecoveryFaults;

/// Tuning knobs for one torture run. Everything that influences the
/// explored state space is here, so `(config, workload)` fully determines
/// the run — the reproducibility contract.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Master seed; per-boundary sampling seeds derive from it.
    pub seed: u64,
    /// Workload steps (operations) to drive.
    pub steps: u64,
    /// Maximum crash states sampled at a single boundary.
    pub per_boundary: u64,
    /// Total crash-state budget per workload.
    pub max_states: u64,
    /// Check recovery idempotence on every N-th state (0 disables).
    pub idempotence_stride: u64,
    /// Stop exploring a workload after this many failures.
    pub max_failures: u64,
    /// Where failing states are dumped.
    pub out_dir: PathBuf,
    /// Deliberate recovery breakage (fault injection) — the rig must
    /// *catch* these, which is how the oracles themselves are validated.
    pub faults: RecoveryFaults,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            seed: 0x00C0_FFEE,
            steps: 28,
            per_boundary: 6,
            max_states: 3000,
            idempotence_stride: 8,
            max_failures: 1,
            out_dir: PathBuf::from("results/torture"),
            faults: RecoveryFaults::default(),
        }
    }
}

impl TortureConfig {
    /// A configuration sized for CI: same coverage shape, smaller budget.
    pub fn smoke() -> Self {
        TortureConfig {
            steps: 14,
            max_states: 600,
            ..TortureConfig::default()
        }
    }
}

/// Outcome of torturing one workload.
#[derive(Debug)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: String,
    /// Durability boundaries crossed while the tap was attached.
    pub boundaries: u64,
    /// Crash states explored.
    pub states: u64,
    /// Oracle violations, shrunk and dumped.
    pub failures: Vec<Failure>,
}

/// Outcome of a whole run.
#[derive(Debug, Default)]
pub struct Summary {
    /// Per-workload results, in run order.
    pub results: Vec<WorkloadResult>,
}

impl Summary {
    /// Total crash states explored.
    pub fn total_states(&self) -> u64 {
        self.results.iter().map(|r| r.states).sum()
    }

    /// Total oracle violations.
    pub fn total_failures(&self) -> usize {
        self.results.iter().map(|r| r.failures.len()).sum()
    }

    /// Whether every explored state passed every oracle.
    pub fn is_clean(&self) -> bool {
        self.total_failures() == 0
    }
}

/// Run the named workloads under `cfg`.
///
/// # Errors
///
/// An unknown workload name, or a *driver* error (the live workload itself
/// failing, as opposed to an oracle violation — those are reported in the
/// summary, not as `Err`).
pub fn run(cfg: &TortureConfig, names: &[String]) -> Result<Summary, String> {
    let catalog = all_workloads();
    let mut summary = Summary::default();
    for name in names {
        let w = catalog
            .iter()
            .find(|w| w.name == name.as_str())
            .ok_or_else(|| {
                format!(
                    "unknown workload `{name}` (have: {})",
                    workload_names().join(", ")
                )
            })?;
        let ex = Explorer::new(cfg.clone(), w.name);
        (w.run)(cfg, &ex)?;
        let (boundaries, states, failures) = ex.finish();
        summary.results.push(WorkloadResult {
            name: w.name.to_string(),
            boundaries,
            states,
            failures,
        });
    }
    Ok(summary)
}
